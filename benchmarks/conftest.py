"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one figure of the paper: it runs the pipeline
that produces the figure's data, asserts the *shape* the paper reports
(who wins, by roughly what factor, where structure appears), and prints
the reproduced rows so ``pytest benchmarks/ --benchmark-only -s`` shows
the tables next to the timing numbers.

Heavy pipelines run once per benchmark via ``benchmark.pedantic`` —
the timing numbers measure the compiler/simulator themselves.
"""

from __future__ import annotations

import pytest

from repro.machine import ProcessorSpec
from repro.sim import SimulationOptions, simulate
from repro.transform import CompileOptions, compile_application

#: The per-element target every figure bench compiles for.
BENCH_PROC = ProcessorSpec(clock_hz=20e6, memory_words=512)


def compile_and_simulate(app, *, proc=BENCH_PROC, frames=4, mapping="greedy",
                         **opts):
    compiled = compile_application(
        app, proc, CompileOptions(mapping=mapping, **opts)
    )
    result = simulate(compiled, SimulationOptions(frames=frames))
    return compiled, result


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_proc():
    return BENCH_PROC
