"""Ablation benches for the compiler's design choices.

Three knobs the design commits to, each ablated on the running example:

* **Utilization target** — the planner sizes parallelism to a fraction of
  each element's capacity; planning to 100% leaves no slack for the
  scheduling quantization the simulator models.
* **Pipeline fusion** — equal-width join/split pairs are fused into
  direct instance-to-instance wiring (Section IV-B's parallel pipelines);
  disabling it keeps the redundant routers.
* **Pad vs trim** — the Section III-C alignment policy is semantic
  (it changes the histogram): both must compile, run, and differ exactly
  at the border.
"""

import numpy as np

from conftest import compile_and_simulate

from repro.apps import build_image_pipeline
from repro.machine import ProcessorSpec
from repro.sim import run_functional
from repro.transform import CompileOptions, compile_application

PROC = ProcessorSpec(clock_hz=20e6, memory_words=256)
RATE = 1000.0


def sweep_targets():
    rows = {}
    for target in (0.5, 0.7, 0.9):
        compiled, result = compile_and_simulate(
            build_image_pipeline(24, 16, RATE), proc=PROC,
            utilization_target=target,
        )
        verdict = result.verdict("result", rate_hz=RATE, chunks_per_frame=1)
        rows[target] = (compiled, verdict)
    return rows


def test_ablation_utilization_target(benchmark):
    rows = benchmark.pedantic(sweep_targets, rounds=1, iterations=1)

    for target, (compiled, verdict) in rows.items():
        assert verdict.meets, f"target {target}: {verdict.describe()}"
    # Lower targets buy headroom with more hardware.
    pes = {t: c.processor_count for t, (c, _) in rows.items()}
    assert pes[0.5] >= pes[0.9]
    degrees = {
        t: sum(d for d in c.parallelization.degrees.values())
        for t, (c, _) in rows.items()
    }
    assert degrees[0.5] >= degrees[0.9]

    print()
    print("ABLATION utilization target (planned headroom vs hardware):")
    for target, (compiled, verdict) in rows.items():
        print(f"  target {target:.0%}: {compiled.processor_count} PEs, "
              f"{compiled.kernel_count()} kernels -> "
              f"{'meets' if verdict.meets else 'MISSES'}")


PIPE_RATE = 500.0
PIPE_PROC = ProcessorSpec(clock_hz=1e6, memory_words=512)


def pipeline_app():
    """Two dependency-tied stages: the Section IV-B parallel-pipeline case.

    Stage work is deliberately heavy relative to routing (12 cycles per
    element vs the split's 3) so the stages need degree 2 while the
    serial split keeps up — the regime where parallel pipelines exist.
    """
    from repro.graph import ApplicationGraph
    from repro.kernels import ApplicationOutput, ScaleKernel, ThresholdKernel

    class HeavyScale(ScaleKernel):
        cycles = 12

    class HeavyThreshold(ThresholdKernel):
        cycles = 12

    app = ApplicationGraph("dep_pipeline")
    app.add_input("Input", 16, 12, PIPE_RATE)
    app.add_kernel(HeavyScale("stage1", gain=2.0))
    app.add_kernel(HeavyThreshold("stage2", level=100.0))
    app.add_kernel(ApplicationOutput("Out", 1, 1))
    app.connect("Input", "out", "stage1", "in")
    app.connect("stage1", "out", "stage2", "in")
    app.connect("stage2", "out", "Out", "in")
    app.add_dependency("stage1", "stage2")
    return app


def run_fusion_pair():
    on_c, on_r = compile_and_simulate(
        pipeline_app(), proc=PIPE_PROC, fuse_pipelines=True, frames=3
    )
    off_c, off_r = compile_and_simulate(
        pipeline_app(), proc=PIPE_PROC, fuse_pipelines=False, frames=3
    )
    return on_c, on_r, off_c, off_r


def test_ablation_pipeline_fusion(benchmark):
    on_c, on_r, off_c, off_r = benchmark.pedantic(run_fusion_pair, rounds=1,
                                                  iterations=1)
    for label, res in (("fused", on_r), ("unfused", off_r)):
        v = res.verdict("Out", rate_hz=PIPE_RATE, chunks_per_frame=16 * 12)
        assert v.meets, f"{label}: {v.describe()}"
    # Both stages replicated to the same (dependency-tied) degree; fusion
    # removed the join/split pair between them.
    assert on_c.parallelization.degrees["stage1"] > 1
    assert (on_c.parallelization.degrees["stage2"]
            == on_c.parallelization.degrees["stage1"])
    assert on_c.parallelization.fused_pairs
    assert not off_c.parallelization.fused_pairs
    assert on_c.kernel_count() == off_c.kernel_count() - 2
    # Identical results either way.
    np.testing.assert_array_equal(
        np.array(on_r.outputs["Out"]), np.array(off_r.outputs["Out"])
    )

    print()
    print("ABLATION pipeline fusion (dependency-tied two-stage pipeline):")
    print(f"  fused:   {on_c.kernel_count()} kernels on "
          f"{on_c.processor_count} PEs "
          f"({len(on_c.parallelization.fused_pairs)} pairs removed)")
    print(f"  unfused: {off_c.kernel_count()} kernels on "
          f"{off_c.processor_count} PEs")


def run_policies():
    trim = compile_application(
        build_image_pipeline(16, 12, 100.0, hist_lo=-512, hist_hi=512),
        PROC, CompileOptions(alignment_policy="trim"),
    )
    pad = compile_application(
        build_image_pipeline(16, 12, 100.0, hist_lo=-512, hist_hi=512),
        PROC, CompileOptions(alignment_policy="pad"),
    )
    return (trim, run_functional(trim.graph, frames=1),
            pad, run_functional(pad.graph, frames=1))


def test_ablation_pad_vs_trim(benchmark):
    trim_c, trim_r, pad_c, pad_r = benchmark.pedantic(run_policies, rounds=1,
                                                      iterations=1)
    t_hist = trim_r.output("result")[0]
    p_hist = pad_r.output("result")[0]
    # Trim processes the 12x8 intersection; pad the 14x10 union.
    assert t_hist.sum() == 12 * 8
    assert p_hist.sum() == 14 * 10
    # The results genuinely differ — the paper leaves this choice to the
    # programmer precisely because it is not semantics-preserving.
    assert not np.array_equal(t_hist, p_hist)

    print()
    print("ABLATION pad vs trim (16x12 input):")
    print(f"  trim: histogram over {int(t_hist.sum())} pixels "
          f"({trim_c.kernel_count()} kernels)")
    print(f"  pad:  histogram over {int(p_hist.sum())} pixels "
          f"({pad_c.kernel_count()} kernels)")
