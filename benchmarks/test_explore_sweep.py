"""EXT — the Figure 11 grid as a parallel, cached design-space sweep.

Runs the Figure 11 size/rate grid (both mappings) through the
``repro.explore`` engine in worker processes, then re-runs it against the
cache.  Asserts the engine-level guarantees at figure scale: every point
gets exactly one terminal record, the re-run is answered entirely from
cache, and the aggregate report reproduces Figure 11's shape (the
greedy-mapped grid meets real time everywhere, faster rates need more
processors).
"""

from conftest import once

from repro.explore import ResultCache, SweepSpec, run_sweep, SweepOptions

SPEC = {
    "name": "fig11_sweep",
    "app": "image_pipeline",
    "axes": {
        "width": [24, 48],
        "rate_hz": [100.0, 400.0],
        "mapping": ["greedy", "1:1"],
    },
    "fixed": {"height": 16, "clock_mhz": 20, "memory_words": 512},
    "frames": 3,
    "timeout_s": 120,
}


def test_explore_sweep_engine(benchmark, tmp_path):
    jobs = SweepSpec.from_dict(SPEC).jobs()
    cache = ResultCache(tmp_path / "cache")
    options = SweepOptions(workers=2, retries=1)

    first = once(benchmark, lambda: run_sweep(
        jobs, cache=cache, options=options,
    ))
    assert len(first.records) == len(jobs) == 8
    assert first.failed == 0 and first.cache_hits == 0

    # Greedy-mapped points all meet real time (Figure 11); faster rates
    # never need fewer processors at equal size.
    by_label = {r["label"]: r["stats"] for r in first.records}
    for label, stats in by_label.items():
        if "mapping=greedy" in label:
            assert stats["meets"], label
    for width in (24, 48):
        slow = by_label["image_pipeline(height=16, rate_hz=100.0, "
                        f"width={width}, clock_mhz=20, memory_words=512, "
                        "mapping=greedy)"]
        fast = by_label["image_pipeline(height=16, rate_hz=400.0, "
                        f"width={width}, clock_mhz=20, memory_words=512, "
                        "mapping=greedy)"]
        assert fast["processor_count"] >= slow["processor_count"]

    second = run_sweep(jobs, cache=cache, options=options)
    assert second.cache_hits == len(jobs)
    assert second.succeeded == len(jobs)

    report = second.report()
    frontier = report.frontier()
    assert frontier, "no design point met real time"
    print()
    print(f"EXPLORE sweep: {len(jobs)} points, re-run "
          f"{second.cache_hits}/{len(jobs)} cached "
          f"in {second.elapsed_s:.2f}s")
    print(report.describe())
