"""EXT-DYN — variable work and runtime budget exceptions (Section VII).

The paper's future work, implemented: a block-match kernel whose cost
varies with the data declares a static bound; the simulator charges the
actual cost and records a runtime exception whenever a firing exceeds the
bound.  The bench shows the whole story:

* smooth input: every search terminates early, no exceptions, real time
  met with margin;
* busy input under a correctly sized bound: costlier but still bounded,
  no exceptions, real time met (the bound is what the compiler planned
  parallelism with);
* busy input under an undersized bound: exceptions fire and the
  throughput verdict shows the plan was wrong.
"""

import numpy as np

from repro.graph import ApplicationGraph
from repro.kernels import ApplicationOutput, BlockMatchKernel
from repro.machine import ProcessorSpec
from repro.sim import SimulationOptions, simulate
from repro.transform import compile_application

PROC = ProcessorSpec(clock_hz=20e6, memory_words=512)
RATE = 200.0
W, H = 16, 12
CHUNKS = (W - 4) * (H - 4)


def build(kernel, frame):
    app = ApplicationGraph("motion")
    src = app.add_input("Input", W, H, RATE)
    src._pattern = frame
    app.add_kernel(kernel)
    app.add_kernel(ApplicationOutput("Out", 1, 1))
    app.connect("Input", "out", kernel.name, "in")
    app.connect(kernel.name, "out", "Out", "in")
    return app


def run():
    smooth = np.ones((H, W))
    busy = np.random.default_rng(5).uniform(0, 255, (H, W))
    rows = {}
    cases = {
        "smooth/full bound": (smooth, None),
        "busy/full bound": (busy, None),
        "busy/undersized bound": (busy, 1),
    }
    for label, (frame, bound) in cases.items():
        kernel = BlockMatchKernel("bm", 5, 5, threshold=4.0,
                                  bound_candidates=bound)
        compiled = compile_application(build(kernel, frame), PROC)
        res = simulate(compiled, SimulationOptions(frames=3))
        verdict = res.verdict("Out", rate_hz=RATE, chunks_per_frame=CHUNKS)
        rows[label] = (res, verdict)
    return rows


def test_ext_dynamic_work(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    assert not rows["smooth/full bound"][0].budget_overruns
    assert rows["smooth/full bound"][1].meets
    assert not rows["busy/full bound"][0].budget_overruns
    assert rows["busy/full bound"][1].meets
    assert rows["busy/undersized bound"][0].budget_overruns

    # Data dependence is real: busy frames cost more than smooth ones.
    smooth_busy_s = rows["smooth/full bound"][0].utilization.total_busy_s
    busy_busy_s = rows["busy/full bound"][0].utilization.total_busy_s
    assert busy_busy_s > smooth_busy_s

    print()
    print("EXT-DYN reproduced (Section VII variable-work extension):")
    for label, (res, verdict) in rows.items():
        n = len(res.budget_overruns)
        worst = max((o.factor for o in res.budget_overruns), default=1.0)
        print(f"  {label:>22}: {n:4d} runtime exceptions "
              f"(worst {worst:.1f}x bound), "
              f"{'meets' if verdict.meets else 'MISSES'} real time, "
              f"busy {res.utilization.total_busy_s * 1e3:.2f} ms")
