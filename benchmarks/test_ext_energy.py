"""EXT-EN — energy of mapping and placement decisions (Sections IV-D, V).

The paper motivates greedy multiplexing with efficiency and placement
with energy; this bench quantifies both on the Figure 4 configuration:

* the greedy mapping powers fewer elements (less leakage) and keeps more
  traffic on-element (less network energy) than 1:1;
* annealed placement cuts the network component again relative to naive
  row-major placement, leaving compute/access/leakage untouched.
"""

from repro.machine import (
    EnergySpec,
    ManyCoreChip,
    ProcessorSpec,
    anneal_placement,
    estimate_energy,
)
from repro.apps import build_image_pipeline
from repro.sim import SimulationOptions, simulate
from repro.transform import CompileOptions, compile_application

PROC = ProcessorSpec(clock_hz=20e6, memory_words=256)
#: Network-heavy coefficients make the placement effect visible.
SPEC = EnergySpec(pj_per_cycle=1.0, pj_per_element_access=1.0,
                  pj_per_element_hop=4.0, leakage_mw_per_processor=0.25)


def run():
    rows = {}
    chip = ManyCoreChip(cols=8, rows=8, processor=PROC)
    for mapping in ("1:1", "greedy"):
        compiled = compile_application(
            build_image_pipeline(24, 16, 1000.0), PROC,
            CompileOptions(mapping=mapping),
        )
        result = simulate(compiled, SimulationOptions(frames=3))
        placement = anneal_placement(compiled.mapping, compiled.dataflow,
                                     chip, seed=0, iterations=10_000)
        rows[mapping] = {
            "bus": estimate_energy(result, compiled.mapping,
                                   compiled.dataflow, processor=PROC,
                                   spec=SPEC),
            "rowmajor_energy": placement.initial_energy,
            "annealed_energy": placement.energy,
            "placed": estimate_energy(result, compiled.mapping,
                                      compiled.dataflow, processor=PROC,
                                      spec=SPEC, placement=placement),
            "processors": compiled.processor_count,
        }
    return rows


def test_ext_energy(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    one, gm = rows["1:1"], rows["greedy"]
    # Multiplexing: fewer powered elements, less leakage, lower total.
    assert gm["processors"] < one["processors"]
    assert gm["bus"].leakage_j < one["bus"].leakage_j
    assert gm["bus"].total_j < one["bus"].total_j
    # Placement: annealing reduced the traffic-distance product, and the
    # placed network energy never exceeds the naive row-major layout's.
    for row in rows.values():
        assert row["annealed_energy"] <= row["rowmajor_energy"]
        assert row["placed"].compute_j == row["bus"].compute_j

    print()
    print("EXT-EN reproduced:")
    for mapping, row in rows.items():
        e = row["placed"]
        print(f"  {mapping:>6}: {row['processors']:2d} PEs, total "
              f"{e.total_j * 1e6:8.2f} uJ (compute {e.compute_j * 1e6:.2f}, "
              f"access {e.access_j * 1e6:.2f}, network {e.network_j * 1e6:.2f}, "
              f"leakage {e.leakage_j * 1e6:.2f})")
    print("  greedy/1:1 total energy: "
          f"{gm['placed'].total_j / one['placed'].total_j:.2f}x")
