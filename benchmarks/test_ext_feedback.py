"""EXT-FB — feedback loops (Section III-D; paper extension).

The paper sketches feedback support: break loops with special kernels and
supply initial values via an initialization kernel.  This bench runs a
first-order IIR temporal smoother through the full compile-and-simulate
flow, checks the recurrence against its closed form, and confirms the
loop meets real time.
"""

import numpy as np

from conftest import compile_and_simulate

from repro.graph import ApplicationGraph
from repro.kernels import AddKernel, InitialValueKernel, ScaleKernel
from repro.machine import ProcessorSpec
from repro.sim import run_functional

PROC = ProcessorSpec(clock_hz=20e6, memory_words=512)
ALPHA = 0.5
WIDTH, HEIGHT, RATE = 8, 1, 100.0


def build():
    app = ApplicationGraph("iir")
    src = app.add_input("Input", WIDTH, HEIGHT, RATE)
    src._pattern = np.ones((HEIGHT, WIDTH))
    acc = app.add_kernel(AddKernel("acc"))
    acc.mark_token_transparent("in1")
    app.add_kernel(ScaleKernel("decay", gain=ALPHA))
    app.add_kernel(
        InitialValueKernel("loop", np.zeros((1, 1)), region_w=WIDTH,
                           region_h=HEIGHT, rate_hz=RATE)
    )
    app.add_output("Out")
    app.connect("Input", "out", "acc", "in0")
    app.connect("acc", "out", "loop", "in")
    app.connect("loop", "out", "decay", "in")
    app.connect("decay", "out", "acc", "in1")
    app.connect("acc", "out", "Out", "in")
    return app


def run():
    compiled, result = compile_and_simulate(build(), proc=PROC, frames=3)
    func = run_functional(compiled.graph, frames=3)
    return compiled, result, func


def test_ext_feedback_loop(benchmark):
    compiled, result, func = benchmark.pedantic(run, rounds=1, iterations=1)

    ys = [float(c[0, 0]) for c in func.output("Out")]
    expected, y = [], 0.0
    for _ in ys:
        y = 1.0 + ALPHA * y
        expected.append(y)
    np.testing.assert_allclose(ys, expected)
    # The recurrence converges to 1 / (1 - alpha).
    assert abs(ys[-1] - 1.0 / (1.0 - ALPHA)) < 1e-3

    verdict = result.verdict("Out", rate_hz=RATE, chunks_per_frame=WIDTH)
    assert verdict.meets

    print()
    print("EXT-FB reproduced:")
    print(f"  y[n] = x[n] + {ALPHA}*y[n-1] over {len(ys)} samples; "
          f"final {ys[-1]:.4f} -> fixpoint {1/(1-ALPHA):.1f}")
    print(f"  {verdict.describe()}")
