"""EXT-LAT — first-output latency vs throughput (Section IV-D's argument).

The paper justifies ignoring communication/placement delay because it only
adds first-output latency, never throughput.  This bench quantifies both
sides of that argument on the running example:

* the analytical fill latency lower-bounds and tightly predicts the
  simulated first-output time;
* slowing the processor (more "delay" everywhere) moves the first output
  later but leaves the steady-state frame interval pinned at the input
  period — latency and throughput really are decoupled, until the
  processor can no longer keep up at all.
"""

from repro.analysis import estimate_latency
from repro.apps import build_image_pipeline
from repro.machine import ProcessorSpec
from repro.sim import SimulationOptions, simulate
from repro.transform import compile_application


def run():
    rows = {}
    for label, clock in (("fast PE", 80e6), ("slow PE", 20e6)):
        proc = ProcessorSpec(clock_hz=clock, memory_words=512)
        compiled = compile_application(build_image_pipeline(24, 16, 100.0),
                                       proc)
        est = estimate_latency(compiled.graph, compiled.dataflow)
        res = simulate(compiled, SimulationOptions(frames=4))
        completions = res.frame_completions("result", 1)
        intervals = [b - a for a, b in zip(completions, completions[1:])]
        rows[label] = {
            "analytic_s": est.output_latency("result"),
            "first_s": res.output_times["result"][0],
            "interval_s": max(intervals),
        }
    return rows


def test_ext_latency_throughput_decoupling(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    period = 1.0 / 100.0
    for label, row in rows.items():
        # The analysis lower-bounds the simulation.
        assert row["analytic_s"] <= row["first_s"] + 1e-12
        # Throughput stays at the input period regardless of PE speed.
        assert row["interval_s"] <= period * 1.05

    # More processing delay -> later first output, same throughput.
    assert rows["slow PE"]["first_s"] >= rows["fast PE"]["first_s"]
    assert abs(rows["slow PE"]["interval_s"]
               - rows["fast PE"]["interval_s"]) <= period * 0.05

    print()
    print("EXT-LAT reproduced (Section IV-D's latency/throughput argument):")
    for label, row in rows.items():
        print(f"  {label}: analytic fill {row['analytic_s'] * 1e3:.3f} ms, "
              f"simulated first output {row['first_s'] * 1e3:.3f} ms, "
              f"steady interval {row['interval_s'] * 1e3:.3f} ms")
