"""EXT-NOC — communication-aware simulation on the mesh (paper extension).

The paper's simulator treats inter-processor communication as free: the
annealer minimizes traffic-weighted Manhattan distance, but the makespan
never moves.  With the NoC timing model the loop is closed — every data
transfer is routed XY over the mesh, pays per-hop latency plus
serialization, and queues behind other transfers sharing a link.  This
bench shows the consequence on the paper's block-parallel fine-grained
app (BF, the most communication-heavy Figure 13 point):

* NoC-off vs NoC-on: communication now costs real time;
* row-major vs makespan-annealed placement: layout now changes the
  simulated makespan, not just the abstract energy score.
"""

from conftest import once

from repro.apps import BENCHMARK_PROCESSOR, benchmark as paper_bench
from repro.machine import NocModel, fit_chip, link_name, row_major_placement
from repro.machine.placement import anneal_placement
from repro.sim import SimulationOptions, simulate
from repro.transform import CompileOptions, compile_application

HOP_CYCLES = 16
SER_CYCLES = 4


def _compile_bf():
    return compile_application(
        paper_bench("BF").application(), BENCHMARK_PROCESSOR,
        CompileOptions(),
    )


def _noc(compiled, placement):
    return NocModel(
        placement=placement,
        per_hop_cycles=HOP_CYCLES,
        serialization_cycles_per_element=SER_CYCLES,
    )


def run_noc_comparison():
    rows = {}

    compiled = _compile_bf()
    chip = fit_chip(compiled.mapping.processor_count, BENCHMARK_PROCESSOR)
    rows["off"] = simulate(compiled, SimulationOptions(frames=2))

    compiled = _compile_bf()
    naive = row_major_placement(compiled.mapping, chip)
    rows["row-major"] = simulate(
        compiled, SimulationOptions(frames=2, noc=_noc(compiled, naive))
    )

    compiled = _compile_bf()
    annealed = anneal_placement(
        compiled.mapping, compiled.dataflow, chip, seed=0,
        objective="makespan",
    )
    rows["annealed"] = simulate(
        compiled, SimulationOptions(frames=2, noc=_noc(compiled, annealed))
    )
    return rows


def test_ext_noc_placement_changes_makespan(benchmark):
    rows = once(benchmark, run_noc_comparison)

    off, naive, annealed = (rows[k] for k in ("off", "row-major", "annealed"))
    # Communication is no longer free.
    assert naive.makespan_s > off.makespan_s
    assert naive.noc_stats.transfers_routed > 0
    # And the layout now matters for timing, not just for abstract energy.
    assert annealed.makespan_s < naive.makespan_s
    assert annealed.noc_stats.total_hops < naive.noc_stats.total_hops

    print()
    print("EXT-NOC reproduced (BF, 2 frames, "
          f"hop={HOP_CYCLES} ser={SER_CYCLES} cycles):")
    print(f"  NoC off:             {off.makespan_s * 1e3:8.3f} ms")
    for key in ("row-major", "annealed"):
        res = rows[key]
        stats = res.noc_stats
        worst = stats.worst_link()
        label = link_name(worst[0], stats.cols) if worst else "-"
        print(f"  NoC {key:<11}: {res.makespan_s * 1e3:8.3f} ms  "
              f"({stats.transfers_routed} routed, {stats.total_hops} hops, "
              f"link wait {stats.link_wait_s * 1e3:.3f} ms, "
              f"worst link {label})")
    speedup = naive.makespan_s / annealed.makespan_s
    print(f"  annealed placement is {speedup:.2f}x faster than row-major")
