"""EXT-SA — simulated-annealing placement (Section IV-D; paper extension).

The paper implemented annealing-based placement but did not integrate it
with the simulator (communication delay does not change throughput).  This
bench reproduces that design point: place the parallelized example app on
a mesh, minimizing traffic-weighted Manhattan distance, and report the
energy improvement over the naive row-major placement.
"""

from conftest import BENCH_PROC

from repro.apps import build_image_pipeline
from repro.machine import ManyCoreChip
from repro.machine.placement import anneal_placement, traffic_matrix
from repro.transform import CompileOptions, compile_application


def run_placement():
    compiled = compile_application(
        build_image_pipeline(24, 16, 1000.0), BENCH_PROC,
        CompileOptions(mapping="1:1"),
    )
    chip = ManyCoreChip(cols=6, rows=6, processor=BENCH_PROC)
    placement = anneal_placement(
        compiled.mapping, compiled.dataflow, chip, seed=0, iterations=20_000
    )
    return compiled, placement


def test_ext_placement_annealing(benchmark):
    compiled, placement = benchmark.pedantic(run_placement, rounds=1,
                                             iterations=1)

    traffic = traffic_matrix(compiled.mapping, compiled.dataflow)
    assert traffic, "the parallelized app has inter-processor channels"
    assert placement.energy <= placement.initial_energy
    # Annealing should find a materially better layout than row-major.
    assert placement.improvement >= 1.1
    tiles = list(placement.tiles.values())
    assert len(set(tiles)) == len(tiles)

    print()
    print("EXT-SA reproduced:")
    print(f"  {len(placement.tiles)} processors on a 6x6 mesh")
    print(f"  naive energy {placement.initial_energy:,.0f} -> annealed "
          f"{placement.energy:,.0f} ({placement.improvement:.2f}x better)")
