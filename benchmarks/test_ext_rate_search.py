"""EXT-RATE — the StreamIt-style inverse query (Section VI's contrast).

StreamIt fixes the processor count and maximizes rate; this system fixes
the rate and minimizes processors.  With a fully automatic compiler the
former reduces to a search over the latter: binary-search the highest
input rate whose compile fits the processor budget and passes the static
admission test.  The bench sweeps budgets over the running example and
verifies each found rate in the timing-accurate simulator.
"""

from repro.apps import build_image_pipeline
from repro.machine import ProcessorSpec
from repro.sim import SimulationOptions, simulate
from repro.transform import find_max_rate

PROC = ProcessorSpec(clock_hz=20e6, memory_words=512)
BUDGETS = (6, 10, 16)


def run():
    rows = []
    for budget in BUDGETS:
        res = find_max_rate(
            lambda r: build_image_pipeline(24, 16, r), PROC,
            processor_budget=budget, low_hz=50.0,
        )
        sim = simulate(res.compiled, SimulationOptions(frames=4))
        verdict = sim.verdict("result", rate_hz=res.best_rate_hz,
                              chunks_per_frame=1)
        rows.append((budget, res, verdict))
    return rows


def test_ext_rate_search(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    rates = [res.best_rate_hz for _, res, _ in rows]
    assert rates == sorted(rates) and rates[0] < rates[-1]
    for budget, res, verdict in rows:
        assert res.compiled.processor_count <= budget
        assert verdict.meets, f"budget {budget}: {verdict.describe()}"

    print()
    print("EXT-RATE reproduced (max sustainable rate vs processor budget):")
    for budget, res, verdict in rows:
        print(f"  {budget:2d} PEs -> {res.best_rate_hz:7.1f} Hz "
              f"({res.compiled.processor_count} used, "
              f"{res.probes} compile probes, simulated: "
              f"{'meets' if verdict.meets else 'MISSES'})")
