"""EXT-SCHED — static admission test vs the simulator.

An SDF-style periodic schedule is built per processor from the repetition
vector (firings per frame) and the declared costs; a processor is
admissible when its schedule fits one frame period.  The claim: the
static verdict agrees with the timing-accurate simulator — admissible
compiles meet real time, the overloaded ablation is rejected by both.
"""

from repro.analysis import build_static_schedule
from repro.apps import BENCHMARK_PROCESSOR, benchmark_suite, build_image_pipeline
from repro.machine import ProcessorSpec
from repro.sim import SimulationOptions, simulate
from repro.transform import CompileOptions, compile_application

PROC = ProcessorSpec(clock_hz=20e6, memory_words=256)


def run():
    rows = []
    for bench in benchmark_suite():
        compiled = compile_application(bench.application(),
                                       BENCHMARK_PROCESSOR)
        sched = build_static_schedule(compiled)
        result = simulate(compiled, SimulationOptions(frames=bench.frames))
        verdict = result.verdict(
            bench.output, rate_hz=bench.rate_hz,
            chunks_per_frame=bench.chunks_per_frame, frames=bench.frames,
        )
        rows.append((bench.key, sched, verdict))
    # The deliberately overloaded ablation.
    compiled = compile_application(
        build_image_pipeline(24, 16, 1000.0), PROC,
        CompileOptions(parallelize=False, mapping="1:1"),
    )
    sched = build_static_schedule(compiled)
    result = simulate(compiled, SimulationOptions(frames=5))
    verdict = result.verdict("result", rate_hz=1000.0, chunks_per_frame=1)
    rows.append(("overloaded", sched, verdict))
    return rows


def test_ext_static_admission(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    for key, sched, verdict in rows:
        assert sched.admissible == verdict.meets, (
            f"{key}: static says {sched.admissible}, "
            f"simulator says {verdict.meets}"
        )

    print()
    print("EXT-SCHED reproduced (static admission vs simulation):")
    for key, sched, verdict in rows:
        bott = sched.bottleneck()
        print(f"  {key:>10}: bottleneck PE{bott.processor} at "
              f"{bott.utilization:6.1%} -> static "
              f"{'admissible' if sched.admissible else 'OVERLOAD':>10}, "
              f"simulated {'meets' if verdict.meets else 'MISSES'}")
