"""FIG2 — the parameterized application graph (Figure 2).

Regenerates the port annotations of Figure 2 for the running example and
checks every parameter the figure shows: window sizes, steps, offsets, and
the replicated coefficient/bin inputs.
"""

from repro.apps import build_image_pipeline
from repro.geometry import Offset2D, Size2D, Step2D


def test_fig02_port_parameterization(benchmark):
    app = benchmark.pedantic(
        lambda: build_image_pipeline(100, 100, 50.0), rounds=1, iterations=1
    )

    conv = app.kernel("Conv5x5")
    assert conv.inputs["in"].window == Size2D(5, 5)
    assert conv.inputs["in"].step == Step2D(1, 1)
    assert conv.inputs["in"].offset == Offset2D(2, 2)
    assert conv.outputs["out"].window == Size2D(1, 1)
    # "coeff (5x5)[5,5] [2.0,2.0]" and replicated (dashed edge).
    assert conv.inputs["coeff"].window == Size2D(5, 5)
    assert conv.inputs["coeff"].step == Step2D(5, 5)
    assert conv.inputs["coeff"].replicated

    median = app.kernel("Median3x3")
    assert median.inputs["in"].window == Size2D(3, 3)
    assert median.inputs["in"].offset == Offset2D(1, 1)

    sub = app.kernel("Subtract")
    for port in ("in0", "in1"):
        assert sub.inputs[port].window == Size2D(1, 1)
        assert sub.inputs[port].offset == Offset2D(0, 0)

    hist = app.kernel("Histogram")
    assert hist.outputs["out"].window == Size2D(32, 1)
    assert hist.inputs["bins"].window == Size2D(32, 1)
    assert hist.inputs["bins"].replicated

    print()
    print("FIG2 reproduced graph:")
    print(app.describe())
