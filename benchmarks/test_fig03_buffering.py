"""FIG3 — automatic buffer and inset insertion (Figure 3).

Runs the align and buffering passes on the Figure 1(b) application and
checks the figure's structure: a ``(1x1)[1,1] --> (3x3)[1,1]`` buffer in
front of the median, a ``(1x1)[1,1] --> (5x5)[1,1]`` buffer in front of
the convolution, and an inset kernel trimming one pixel per side on the
median path.
"""

from repro.analysis import analyze_dataflow, validate_physical
from repro.apps import build_image_pipeline
from repro.kernels import BufferKernel, InsetKernel
from repro.transform import align_application, insert_buffers


def run_passes():
    app = build_image_pipeline(24, 16, 100.0)
    insets = align_application(app)
    buffers = insert_buffers(app)
    return app, insets, buffers


def test_fig03_buffers_and_inset(benchmark):
    app, insets, buffers = benchmark.pedantic(run_passes, rounds=1,
                                              iterations=1)

    assert insets == ["offset(in1)"]
    inset = app.kernel("offset(in1)")
    assert isinstance(inset, InsetKernel)
    assert inset.trim == (1, 1, 1, 1)  # "(0,0)[1,1,1,1]" in the figure

    assert sorted(buffers) == ["buf_Conv5x5.in", "buf_Median3x3.in"]
    med_buf = app.kernel("buf_Median3x3.in")
    conv_buf = app.kernel("buf_Conv5x5.in")
    assert isinstance(med_buf, BufferKernel)
    assert (med_buf.window_w, med_buf.window_h) == (3, 3)
    assert med_buf.storage_rows == 6       # "Buffer [Wx6]" boxes
    assert (conv_buf.window_w, conv_buf.window_h) == (5, 5)
    assert conv_buf.storage_rows == 10     # "Buffer [Wx10]" boxes

    # The transformed graph is physically consistent: every channel now
    # carries chunks matching its consumer's window.
    validate_physical(app, analyze_dataflow(app))

    print()
    print("FIG3 inserted kernels:")
    print(f"  {med_buf.name}: {med_buf.describe_parameterization()}")
    print(f"  {conv_buf.name}: {conv_buf.describe_parameterization()}")
    print(f"  {inset.name}: trim {inset.trim}")
