"""FIG4 — the automatically parallelized application (Figure 4).

Compiles the Figure 1(b) application at a rate/memory point that forces
the figure's structure: replicated convolution and median kernels behind
round-robin split/join pairs, a Replicate kernel on the coefficient path,
column-split buffers re-interleaved by a counted join, and a single serial
merge fed once per frame.
"""

from conftest import compile_and_simulate

from repro.apps import build_image_pipeline
from repro.kernels import (
    ColumnSplit,
    CountedJoin,
    ReplicateKernel,
    RoundRobinJoin,
    RoundRobinSplit,
)
from repro.machine import ProcessorSpec


def test_fig04_structure(benchmark):
    proc = ProcessorSpec(clock_hz=20e6, memory_words=256)
    compiled, result = benchmark.pedantic(
        lambda: compile_and_simulate(
            build_image_pipeline(24, 16, 1000.0), proc=proc
        ),
        rounds=1, iterations=1,
    )
    g = compiled.graph
    degrees = compiled.parallelization.degrees

    # Compute kernels replicate for rate; buffers split for memory.
    assert degrees["Conv5x5"] >= 2
    assert degrees["Median3x3"] >= 2
    assert degrees["buf_Conv5x5.in"] >= 2
    assert degrees["Merge"] == 1  # the data-dependency edge held

    counts = {}
    for k in g.iter_kernels():
        counts[type(k).__name__] = counts.get(type(k).__name__, 0) + 1
    assert counts.get("RoundRobinSplit", 0) >= 2
    assert counts.get("RoundRobinJoin", 0) >= 2
    assert counts.get("ReplicateKernel", 0) == 1  # the coeff path
    assert counts.get("ColumnSplit", 0) >= 1
    assert counts.get("CountedJoin", 0) >= 1

    verdict = result.verdict("result", rate_hz=1000.0, chunks_per_frame=1)
    assert verdict.meets

    print()
    print("FIG4 parallelization:")
    for name, degree in degrees.items():
        if degree > 1:
            print(f"  {name} x{degree} -> {compiled.parallelization.groups[name]}")
    print(f"  kernel census: {counts}")
    print(f"  {verdict.describe()}")
