"""FIG5 — data access and reuse for the 5x5 convolution (Figure 5).

Checks the figure's steady-state claim — 24 of 25 elements reused per
iteration for a 5x5 window at step (1,1) — both statically (the analysis
formula) and dynamically (windows emitted by a real buffer kernel differ
by exactly one fresh element once per-row steady state is reached).
"""

from fractions import Fraction

import numpy as np

from repro.geometry import Size2D, Step2D, steady_state_reuse
from repro.kernels import BufferKernel
from repro.sim.runtime import Channel, RuntimeKernel, SeqCounter


def measure_dynamic_reuse(region_w=16, region_h=12):
    """Fraction of elements shared between consecutive emitted windows."""
    buf = BufferKernel("b", region_w=region_w, region_h=region_h,
                       window_w=5, window_h=5)
    rk = RuntimeKernel(buf)
    seq = SeqCounter()
    rk.inputs["in"] = Channel("src", "out", "b", "in", seq)
    out = Channel("b", "out", "sink", "in", seq)
    rk.outputs["out"] = [out]
    frame = np.arange(float(region_w * region_h)).reshape(region_h, region_w)
    for y in range(region_h):
        for x in range(region_w):
            rk.inputs["in"].push(np.array([[frame[y, x]]]))
            while (f := rk.ready_firing()) is not None:
                for port, item in rk.execute(f).emissions:
                    out.push(item)
    windows = list(out.items)
    shared = []
    for a, b in zip(windows, windows[1:]):
        shared.append(len(np.intersect1d(a.ravel(), b.ravel())))
    return windows, shared


def test_fig05_steady_state_reuse(benchmark):
    windows, shared = benchmark.pedantic(measure_dynamic_reuse, rounds=1,
                                         iterations=1)

    # Static formula: 24 of 25 (Figure 5(b)).
    assert steady_state_reuse(Size2D(5, 5), Step2D(1, 1)) == Fraction(24, 25)
    # No reuse when the step equals the window (the coefficient input).
    assert steady_state_reuse(Size2D(5, 5), Step2D(5, 5)) == 0

    # Dynamic: within a row, consecutive windows share 4 of 5 columns
    # (20 elements); with unique element values intersect1d counts them.
    within_row = [s for s in shared if s == 20]
    assert len(within_row) >= len(windows) // 2

    # Fresh data per iteration in full steady state is one element:
    # window t+1 contains all of window t's elements shifted, so the
    # buffer's storage absorbs 24/25 of each window.
    halo = (5 - 1, 5 - 1)
    assert halo == (4, 4)  # Section III-A's "4x4 halo"

    print()
    print("FIG5: steady-state reuse 24/25 = "
          f"{float(steady_state_reuse(Size2D(5, 5), Step2D(1, 1))):.2%}; "
          f"{len(within_row)}/{len(shared)} consecutive windows share 20 "
          "elements (4 of 5 columns) in-row")
