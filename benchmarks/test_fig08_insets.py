"""FIG8 — inset alignment of the 3x3 and 5x5 outputs (Figure 8).

Regenerates the figure's numbers for a 100x100 input: the median output is
98x98 inset (1,1), the convolution output 96x96 inset (2,2); aligning them
means trimming one pixel per side off the median output (or padding the
convolution's input by one pixel per side — both policies are checked).
"""

from repro.analysis import analyze_dataflow, find_misalignments
from repro.apps import build_image_pipeline
from repro.geometry import Inset, Size2D
from repro.transform import align_application


def detect():
    app = build_image_pipeline(100, 100, 50.0)
    return app, find_misalignments(app)


def test_fig08_alignment(benchmark):
    app, problems = benchmark.pedantic(detect, rounds=1, iterations=1)

    assert len(problems) == 1
    p = problems[0]
    assert p.kernel == "Subtract"
    assert p.regions["in0"].extent == Size2D(96, 96)
    assert p.regions["in0"].inset == Inset(2, 2)
    assert p.regions["in1"].extent == Size2D(98, 98)
    assert p.regions["in1"].inset == Inset(1, 1)
    assert p.target.extent == Size2D(96, 96)
    assert p.trims["in1"] == (1, 1, 1, 1)

    # Trim policy: subtract sees the aligned 96x96@(2,2) region.
    trimmed = build_image_pipeline(100, 100, 50.0)
    align_application(trimmed, policy="trim")
    df = analyze_dataflow(trimmed)
    out = df.flow("Subtract").outputs["out"]
    assert out.extent == Size2D(96, 96) and out.inset == Inset(2, 2)

    # Pad policy: the conv input grows, so subtract sees 98x98@(1,1).
    padded = build_image_pipeline(100, 100, 50.0)
    align_application(padded, policy="pad")
    df = analyze_dataflow(padded)
    out = df.flow("Subtract").outputs["out"]
    assert out.extent == Size2D(98, 98) and out.inset == Inset(1, 1)

    print()
    print("FIG8 reproduced:")
    print("  median out 98x98@(1,1) vs conv out 96x96@(2,2)")
    print("  trim policy -> aligned 96x96@(2,2), median trimmed (1,1,1,1)")
    print("  pad policy  -> aligned 98x98@(1,1), conv input padded 1/side")
