"""FIG9 — reuse-optimized input buffers (Figure 9; paper extension).

The paper describes — but does not evaluate — replicating a kernel's input
buffer so each parallel instance sees consecutive windows and exploits the
Figure 5 reuse.  This bench builds both structures:

* Figure 9(a): one buffer, round-robin windows to the instances (every
  window read in full — 25 elements);
* Figure 9(c): column-banded buffers with per-branch output buffers
  (only the fresh 5-element column read per window),

verifies functional identity, measures the read-time reduction, and
reports the minimum output buffering for continuous operation that
distinguishes 9(b) from 9(c).
"""

import numpy as np

from conftest import BENCH_PROC

from repro.graph import ApplicationGraph
from repro.kernels import ApplicationOutput, ConvolutionKernel
from repro.sim import SimulationOptions, Simulator, run_functional, simulate
from repro.transform import (
    CompileOptions,
    compile_application,
    insert_buffers,
    minimum_output_buffer_words,
    reuse_optimize_buffer,
)
from repro.transform.multiplex import map_one_to_one

FRAME = np.arange(24.0 * 16).reshape(16, 24)


def conv_app():
    app = ApplicationGraph("fig9")
    src = app.add_input("Input", 24, 16, 100.0)
    src._pattern = FRAME
    app.add_kernel(
        ConvolutionKernel("conv", 5, 5, with_coeff_input=False,
                          coeff=np.ones((5, 5)) / 25.0)
    )
    app.add_kernel(ApplicationOutput("Out", 1, 1))
    app.connect("Input", "out", "conv", "in")
    app.connect("conv", "out", "Out", "in")
    return app


def run_both():
    # Figure 9(a): the standard compile.
    baseline = compile_application(conv_app(), BENCH_PROC,
                                   CompileOptions(mapping="1:1"))
    base_res = simulate(baseline, SimulationOptions(frames=3))

    # Figure 9(c): reuse-optimized with output buffers.
    optimized = conv_app()
    insert_buffers(optimized)
    plan = reuse_optimize_buffer(optimized, "buf_conv.in", 2,
                                 with_output_buffers=True)
    opt_res = Simulator(optimized, map_one_to_one(optimized), BENCH_PROC,
                        SimulationOptions(frames=3)).run()
    func = run_functional(optimized, frames=1)
    return baseline, base_res, optimized, plan, opt_res, func


def test_fig09_reuse_optimized_buffers(benchmark):
    baseline, base_res, optimized, plan, opt_res, func = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # Functional identity with the baseline pipeline.
    base_func = run_functional(baseline.graph, frames=1)
    np.testing.assert_allclose(
        func.output_frame("Out", 0, 20, 12),
        base_func.output_frame("Out", 0, 20, 12),
    )

    # The optimization's payoff: convolution read traffic drops ~5x
    # (5 fresh elements instead of 25 per window).
    base_read = sum(p.read_s for p in base_res.utilization.processors.values())
    opt_read = sum(p.read_s for p in opt_res.utilization.processors.values())
    assert opt_read < base_read / 2

    # Both meet real time; 9(b)'s hazard is quantified by the required
    # output buffering for continuous operation.
    assert base_res.verdict("Out", rate_hz=100.0, chunks_per_frame=240).meets
    assert opt_res.verdict("Out", rate_hz=100.0, chunks_per_frame=240).meets
    need = minimum_output_buffer_words(plan.parts)
    assert all(n > 2 for n in need)  # one port double-buffer is NOT enough

    print()
    print("FIG9 reproduced:")
    print(f"  read seconds: baseline {base_read * 1e3:.3f} ms vs "
          f"reuse-optimized {opt_read * 1e3:.3f} ms "
          f"({base_read / opt_read:.1f}x less)")
    print(f"  branch bands: {[r for r, _ in plan.parts]}")
    print("  Figure 9(b) -> 9(c): per-branch output buffer words needed "
          f"for continuous operation: {need}")


FAST_RATE = 1280.0  # each conv instance ~70% utilized: no slack for stalls


def fast_conv_app():
    app = ApplicationGraph("fig9_fast")
    src = app.add_input("Input", 24, 16, FAST_RATE)
    src._pattern = FRAME
    app.add_kernel(
        ConvolutionKernel("conv", 5, 5, with_coeff_input=False,
                          coeff=np.ones((5, 5)) / 25.0)
    )
    app.add_kernel(ApplicationOutput("Out", 1, 1))
    app.connect("Input", "out", "conv", "in")
    app.connect("conv", "out", "Out", "in")
    return app


def run_dynamic():
    """Figures 9(b) vs 9(c) under bounded channels (backpressure)."""
    # 9(b): no output buffers — each instance may only run one iteration
    # ahead of the join (the implicit port double buffer, capacity 2).
    app_b = fast_conv_app()
    insert_buffers(app_b)
    plan_b = reuse_optimize_buffer(app_b, "buf_conv.in", 2,
                                   with_output_buffers=False)
    caps_b = {
        (inst, "out", plan_b.join, f"in_{i}"): 2
        for i, inst in enumerate(plan_b.consumer_instances)
    }
    res_b = Simulator(
        app_b, map_one_to_one(app_b), BENCH_PROC,
        SimulationOptions(frames=4, channel_capacity_overrides=caps_b),
    ).run()

    # 9(c): explicit output buffers whose storage extends the channel.
    app_c = fast_conv_app()
    insert_buffers(app_c)
    plan_c = reuse_optimize_buffer(app_c, "buf_conv.in", 2,
                                   with_output_buffers=True)
    need = minimum_output_buffer_words(plan_c.parts)
    caps_c = {}
    for i, (inst, ob) in enumerate(
        zip(plan_c.consumer_instances, plan_c.output_buffers)
    ):
        caps_c[(inst, "out", ob, "in")] = 2
        caps_c[(ob, "out", plan_c.join, f"in_{i}")] = need[i] + 2
    res_c = Simulator(
        app_c, map_one_to_one(app_c), BENCH_PROC,
        SimulationOptions(frames=4, channel_capacity_overrides=caps_c),
    ).run()
    return res_b, res_c, need


def test_fig09b_insufficient_output_buffering_stalls(benchmark):
    """Figure 9(b)'s caveat, demonstrated dynamically: without sufficient
    output buffering the parallelized kernels cannot run continuously and
    the application misses its real-time requirement."""
    res_b, res_c, need = benchmark.pedantic(run_dynamic, rounds=1,
                                            iterations=1)
    v_b = res_b.verdict("Out", rate_hz=FAST_RATE, chunks_per_frame=240)
    v_c = res_c.verdict("Out", rate_hz=FAST_RATE, chunks_per_frame=240)
    assert not v_b.meets, "9(b) should stall against the counted join"
    assert v_c.meets, "9(c)'s output buffers should restore real time"

    print()
    print("FIG9(b)/(c) dynamic (bounded channels):")
    print(f"  9(b) no output buffers : {v_b.describe()}")
    print(f"  9(c) buffers of {need} words: {v_c.describe()}")
