"""FIG10 — column-wise buffer splitting with overlap replication.

Figure 10 shows the split FSM for a parallelized buffer: the columns
shared between the last window of the first part and the first window of
the second part are sent to *both* buffers.  This bench forces a buffer
split (tiny per-element memory), checks the overlap equals
``window - step`` columns, verifies data reaching each part, and confirms
the re-interleaved stream is bit-identical to the unsplit pipeline.
"""

import numpy as np


from repro.apps import build_buffer_test_app
from repro.kernels import BufferKernel, ColumnSplit, CountedJoin
from repro.machine import ProcessorSpec
from repro.sim import run_functional
from repro.transform import CompileOptions, compile_application

BIG = ProcessorSpec(clock_hz=1e9, memory_words=1 << 20)
TINY_MEM = ProcessorSpec(clock_hz=1e9, memory_words=512)


def run_split():
    app = build_buffer_test_app(96, 24, 50.0, window=7)
    compiled = compile_application(app, TINY_MEM,
                                   CompileOptions(mapping="1:1"))
    func = run_functional(compiled.graph, frames=1)
    return compiled, func


def test_fig10_column_split(benchmark):
    compiled, func = benchmark.pedantic(run_split, rounds=1, iterations=1)
    g = compiled.graph

    splits = [k for k in g.iter_kernels() if isinstance(k, ColumnSplit)]
    joins = [k for k in g.iter_kernels() if isinstance(k, CountedJoin)]
    parts = [k for k in g.iter_kernels() if isinstance(k, BufferKernel)]
    assert len(splits) == 1 and len(joins) == 1
    assert len(parts) >= 2

    split = splits[0]
    # Consecutive ranges overlap by window - step = 6 columns.
    for (lo_a, hi_a), (lo_b, hi_b) in zip(split.ranges, split.ranges[1:]):
        assert hi_a - lo_b + 1 == 7 - 1
    # Ranges cover the full region.
    assert split.ranges[0][0] == 0
    assert split.ranges[-1][1] == 96 - 1
    # Every part's storage now fits the tiny memory.
    for part in parts:
        assert part.storage_words <= TINY_MEM.memory_words

    # Functional identity with the unsplit compile.
    reference = compile_application(build_buffer_test_app(96, 24, 50.0,
                                                          window=7), BIG)
    ref_func = run_functional(reference.graph, frames=1)
    got = func.output_frame("Out", 0, 90, 18)
    want = ref_func.output_frame("Out", 0, 90, 18)
    np.testing.assert_allclose(got, want)

    print()
    print("FIG10 reproduced:")
    print(f"  split ranges: {list(split.ranges)} (overlap 6 columns/pair)")
    print(f"  join pattern: {list(joins[0].counts)} windows per row")
    print(f"  part storage: {[p.storage_words for p in parts]} words "
          f"(limit {TINY_MEM.memory_words})")
