"""FIG11 — automatic parallelization across input sizes and rates.

Figure 11 shows the example application compiled at four points:
Small/Slow, Big/Slow, Small/Fast, Big/Fast.  The paper's claims:

* growing the input *size* grows the required buffering, and buffers are
  automatically replicated (column split) to fit the fixed per-element
  memory;
* growing the input *rate* grows the required computation, and compute
  kernels are automatically replicated;
* all four configurations meet their real-time constraints in the
  timing-accurate simulator.

An ablation row compiles Small/Fast without the parallelization pass and
shows the real-time miss the pass exists to prevent.
"""

from conftest import compile_and_simulate

from repro.apps import build_image_pipeline
from repro.kernels import BufferKernel
from repro.machine import ProcessorSpec

PROC = ProcessorSpec(clock_hz=20e6, memory_words=256)

CONFIGS = {
    "Small/Slow": (24, 16, 100.0),
    "Big/Slow": (48, 32, 100.0),
    "Small/Fast": (24, 16, 1000.0),
    "Big/Fast": (48, 32, 400.0),
}


def compile_all():
    out = {}
    for label, (w, h, rate) in CONFIGS.items():
        compiled, result = compile_and_simulate(
            build_image_pipeline(w, h, rate), proc=PROC
        )
        verdict = result.verdict("result", rate_hz=rate, chunks_per_frame=1)
        buffers = sum(
            1 for k in compiled.graph.iter_kernels()
            if isinstance(k, BufferKernel)
        )
        compute = sum(
            1 for n in compiled.graph.kernels
            if n.startswith(("Conv5x5", "Median3x3", "Histogram"))
        )
        out[label] = (compiled, verdict, buffers, compute)
    return out


def test_fig11_scaling(benchmark):
    rows = benchmark.pedantic(compile_all, rounds=1, iterations=1)

    for label, (compiled, verdict, buffers, compute) in rows.items():
        assert verdict.meets, f"{label}: {verdict.describe()}"

    # Size growth replicates buffers (Small/Slow -> Big/Slow).
    assert rows["Big/Slow"][2] > rows["Small/Slow"][2]
    # Rate growth replicates computation (Small/Slow -> Small/Fast).
    assert rows["Small/Fast"][3] > rows["Small/Slow"][3]
    # Both grow together at Big/Fast.
    assert rows["Big/Fast"][2] > rows["Small/Slow"][2]
    assert rows["Big/Fast"][3] > rows["Small/Slow"][3]

    print()
    print("FIG11 reproduced (buffers / compute kernels / verdict):")
    for label, (compiled, verdict, buffers, compute) in rows.items():
        print(f"  {label:>10}: {buffers} buffers, {compute} compute kernels, "
              f"{compiled.processor_count} PEs -> "
              f"{'meets' if verdict.meets else 'MISSES'}")


def test_fig11_ablation_no_parallelization(benchmark):
    """Without the pass, Small/Fast cannot keep up."""
    def run():
        # 1:1 mapping isolates the ablation to the parallelize pass (the
        # greedy mapper would separately reject the unsplit buffer, which
        # no longer fits one element's memory).
        return compile_and_simulate(
            build_image_pipeline(24, 16, 1000.0), proc=PROC,
            parallelize=False, frames=5, mapping="1:1",
        )

    compiled, result = benchmark.pedantic(run, rounds=1, iterations=1)
    verdict = result.verdict("result", rate_hz=1000.0, chunks_per_frame=1)
    assert not verdict.meets
    assert verdict.worst_interval_s > 1.0 / 1000.0
    print()
    print(f"FIG11 ablation (no parallelization): {verdict.describe()}")
