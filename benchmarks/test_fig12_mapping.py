"""FIG12 — 1:1 vs greedy kernel-to-processor mapping (Figure 12).

The paper's example: with a naive one-kernel-per-core mapping the
low-utilization buffers and split/join kernels waste most of the chip;
greedy time multiplexing merges neighbours within capacity and raises
utilization from 20% to 37% (about 1.85x) on the example application.
We reproduce the comparison and assert the paper's shape: the greedy
mapping uses strictly fewer processors, raises average utilization by a
similar factor, keeps initial input buffers un-multiplexed, and still
meets real time.
"""

from conftest import compile_and_simulate

from repro.apps import build_image_pipeline
from repro.machine import ProcessorSpec
from repro.transform.multiplex import _is_initial_input_buffer

PROC = ProcessorSpec(clock_hz=20e6, memory_words=256)
RATE = 1000.0  # the Figure 4 configuration: conv and median replicated


def run_both():
    app = build_image_pipeline(24, 16, RATE)
    one_c, one_r = compile_and_simulate(app, proc=PROC, mapping="1:1")
    gm_c, gm_r = compile_and_simulate(app, proc=PROC, mapping="greedy")
    return one_c, one_r, gm_c, gm_r


def test_fig12_greedy_vs_one_to_one(benchmark):
    one_c, one_r, gm_c, gm_r = benchmark.pedantic(run_both, rounds=1,
                                                  iterations=1)

    one_u = one_r.utilization.average_utilization
    gm_u = gm_r.utilization.average_utilization

    assert gm_c.processor_count < one_c.processor_count
    improvement = gm_u / one_u
    # Paper: 20% -> 37% on the example, i.e. ~1.85x; accept a broad band
    # around it (our PE model is parametric, the shape is what matters).
    assert 1.2 <= improvement <= 3.0

    # Both mappings still meet the real-time constraint.
    for label, res in (("1:1", one_r), ("greedy", gm_r)):
        v = res.verdict("result", rate_hz=RATE, chunks_per_frame=1)
        assert v.meets, f"{label}: {v.describe()}"

    # Initial input buffers are never multiplexed (Figure 12 caption).
    g = gm_c.graph
    groups = gm_c.mapping.processors()
    for name in g.kernels:
        if _is_initial_input_buffer(g, name):
            proc = gm_c.mapping.processor_of(name)
            assert groups[proc] == [name]

    print()
    print("FIG12 reproduced:")
    print(f"  1:1    mapping: {one_c.processor_count:2d} PEs, "
          f"avg utilization {one_u:.1%}")
    print(f"  greedy mapping: {gm_c.processor_count:2d} PEs, "
          f"avg utilization {gm_u:.1%}")
    print(f"  improvement {improvement:.2f}x "
          "(paper: 20% -> 37% = 1.85x on its example)")
    print()
    print(gm_c.mapping.describe())
