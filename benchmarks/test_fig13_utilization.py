"""FIG13 — processor utilization across the benchmark suite (Figure 13).

The paper's headline evaluation: ten benchmarks (Bayer x2, histogram x2,
parallel buffer test, multiple convolutions, the image pipeline at four
size/rate points, and the Figure 1(b) app), each mapped 1:1 and greedily,
with utilization broken into run/read/write components.  The claims:

* greedy multiplexing improves average utilization ~1.5x across programs
  ranging from fewer than 10 kernels to more than 50;
* every benchmark still meets its real-time constraint.

Absolute percentages depend on the processing-element model; the ratios
and the run/read/write decomposition are the reproduced shape.
"""

import statistics

from repro.apps import BENCHMARK_PROCESSOR, benchmark_suite
from repro.sim import SimulationOptions, simulate
from repro.transform import CompileOptions, compile_application


def run_suite():
    rows = []
    for bench in benchmark_suite():
        row = {"key": bench.key, "title": bench.title}
        for mapping in ("1:1", "greedy"):
            compiled = compile_application(
                bench.application(), BENCHMARK_PROCESSOR,
                CompileOptions(mapping=mapping),
            )
            result = simulate(compiled, SimulationOptions(frames=bench.frames))
            verdict = result.verdict(
                bench.output, rate_hz=bench.rate_hz,
                chunks_per_frame=bench.chunks_per_frame, frames=bench.frames,
            )
            row[mapping] = {
                "processors": compiled.processor_count,
                "kernels": compiled.kernel_count(),
                "utilization": result.utilization.average_utilization,
                "components": result.utilization.component_fractions(),
                "meets": verdict.meets,
            }
        rows.append(row)
    return rows


def test_fig13_utilization(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    # Every benchmark meets real time under both mappings.
    for row in rows:
        for mapping in ("1:1", "greedy"):
            assert row[mapping]["meets"], f"{row['key']} misses under {mapping}"

    # The greedy mapping never uses more processors and never lowers
    # utilization.
    improvements = []
    for row in rows:
        assert row["greedy"]["processors"] <= row["1:1"]["processors"]
        assert (row["greedy"]["utilization"]
                >= row["1:1"]["utilization"] - 1e-12)
        improvements.append(
            row["greedy"]["utilization"] / row["1:1"]["utilization"]
        )

    # Average improvement ~1.5x (paper's headline; accept a band).
    mean_improvement = statistics.geometric_mean(improvements)
    assert 1.2 <= mean_improvement <= 2.5

    # The suite spans small to large programs (paper: <10 to >50 kernels).
    sizes = [row["1:1"]["kernels"] for row in rows]
    assert min(sizes) < 10
    assert max(sizes) > 50

    print()
    print("FIG13 reproduced (avg utilization, run/read/write):")
    header = (f"  {'bench':>6} | {'1:1':>22} | {'greedy':>22} | gain")
    print(header)
    for row, gain in zip(rows, improvements):
        cells = []
        for mapping in ("1:1", "greedy"):
            r = row[mapping]
            c = r["components"]
            cells.append(
                f"{r['utilization']:6.1%} ({c['run']:.1%}/"
                f"{c['read']:.1%}/{c['write']:.1%})"
            )
        print(f"  {row['key']:>6} | {cells[0]:>22} | {cells[1]:>22} | "
              f"{gain:.2f}x")
    print(f"  geometric-mean improvement: {mean_improvement:.2f}x "
          "(paper: ~1.5x)")
