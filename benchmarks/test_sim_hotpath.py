"""Simulator hot-path benchmark: optimized loop vs the frozen seed loop.

Times ``repro.sim.simulate`` against ``repro.sim.reference_simulate`` on
the five Figure 13 applications at two chip sizes, and writes the
results to ``BENCH_sim.json`` at the repository root (events/sec, wall
time, peak event-heap occupancy, speedup).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_sim_hotpath.py -q

Timing methodology: the application is compiled *once* outside the
timed region; each loop is then timed best-of-``ROUNDS`` around the
``simulate`` call alone with ``time.perf_counter``.  Best-of (not mean)
because scheduler noise is strictly additive.  The headline acceptance
bar — the optimized loop must be at least 2x the seed loop on the
Figure 1 image pipeline (suite key ``5``) at the 64-processor chip —
is asserted here, so a regression that erodes the hot path fails CI's
benchmark job rather than silently shipping.

See ``docs/performance.md`` for what the hot path actually changes and
``tests/test_sim_conformance.py`` for the proof that both loops are
observably identical.
"""

from __future__ import annotations

import json
import pathlib
import time
from functools import lru_cache

import pytest

from repro.apps.suite import BENCHMARK_PROCESSOR
from repro.apps.suite import benchmark as suite_benchmark
from repro.machine import ManyCoreChip, ProcessorSpec
from repro.sim import SimulationOptions, reference_simulate, simulate
from repro.transform import CompileOptions, compile_application

from conftest import once

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: The five Figure 13 applications.
APP_KEYS = ("1", "2", "3", "4", "5")

#: Two chip sizes: the paper's 64-element Ambric-class array of
#: benchmark tiles, and a 256-element mesh of larger tiles (more local
#: store shifts the compiler away from buffer splits, so the second
#: size exercises a different compiled shape, not just more room).
CHIPS = {
    "64": ManyCoreChip(cols=8, rows=8, processor=BENCHMARK_PROCESSOR),
    "256": ManyCoreChip(
        cols=16, rows=16,
        processor=ProcessorSpec(clock_hz=20e6, memory_words=2048),
    ),
}

#: Timed repetitions per loop; best-of is reported.
ROUNDS = 3

#: The acceptance bar on the headline entry (app "5" on the 64-PE chip).
HEADLINE = ("5", "64")
HEADLINE_MIN_SPEEDUP = 2.0

#: Telemetry-on wall time may cost at most this factor over telemetry-off
#: (measured ~2.8x on the headline entry; the bound leaves CI headroom).
TELEMETRY_MAX_OVERHEAD = 6.0

_entries: list[dict] = []
_telemetry_entry: dict = {}


@lru_cache(maxsize=None)
def _compiled(key: str, chip_name: str):
    bench = suite_benchmark(key)
    chip = CHIPS[chip_name]
    compiled = compile_application(
        bench.application(), chip.processor, CompileOptions(mapping="greedy")
    )
    return bench, compiled


def _best_of(fn, rounds: int = ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, result = elapsed, out
    return best, result


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Collect every entry, then publish BENCH_sim.json once."""
    yield
    if not _entries:
        return
    payload = {
        "suite": "sim_hotpath",
        "rounds": ROUNDS,
        "headline": {
            "app": HEADLINE[0],
            "chip": HEADLINE[1],
            "min_speedup": HEADLINE_MIN_SPEEDUP,
        },
        "entries": _entries,
    }
    if _telemetry_entry:
        payload["telemetry"] = _telemetry_entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("chip_name", list(CHIPS))
@pytest.mark.parametrize("key", APP_KEYS)
def test_sim_hotpath(benchmark, key, chip_name):
    bench, compiled = _compiled(key, chip_name)
    chip = CHIPS[chip_name]
    assert compiled.processor_count <= chip.tile_count, (
        f"app {key} needs {compiled.processor_count} PEs; "
        f"chip has {chip.tile_count}"
    )

    options = SimulationOptions(frames=bench.frames)
    opt_wall, opt = _best_of(lambda: simulate(compiled, options))
    ref_wall, ref = _best_of(lambda: reference_simulate(compiled, options))
    # Sanity only — full observational identity lives in the
    # conformance suite (tests/test_sim_conformance.py).
    assert opt.events_processed == ref.events_processed

    once(benchmark, lambda: simulate(compiled, options))

    speedup = ref_wall / opt_wall
    _entries.append({
        "app": key,
        "title": bench.title,
        "chip": {
            "name": chip_name,
            "cols": chip.cols,
            "rows": chip.rows,
            "processors": chip.tile_count,
            "clock_hz": chip.processor.clock_hz,
            "memory_words": chip.processor.memory_words,
        },
        "mapping": "greedy",
        "frames": bench.frames,
        "processors_used": compiled.processor_count,
        "events": opt.events_processed,
        "firings": sum(opt.firings.values()),
        "wall_s": opt_wall,
        "events_per_s": opt.events_processed / opt_wall,
        "peak_heap": opt.peak_heap,
        "reference": {
            "wall_s": ref_wall,
            "events_per_s": ref.events_processed / ref_wall,
            "peak_heap": ref.peak_heap,
        },
        "speedup": speedup,
    })

    if (key, chip_name) == HEADLINE:
        assert speedup >= HEADLINE_MIN_SPEEDUP, (
            f"hot path regressed: {speedup:.2f}x < "
            f"{HEADLINE_MIN_SPEEDUP}x on the Figure 1 pipeline"
        )


def test_telemetry_overhead(benchmark):
    """Telemetry off must not move the hot path; on must stay bounded.

    Off-mode zero cost is structural — the loop carries a single
    precomputed ``None`` local, the exact seam the fault injector uses —
    and is held two ways: the headline 2x-vs-seed assertion above runs
    with telemetry off, and this test asserts the off-mode run matches
    the default-options run event for event.  On-mode is allowed to cost
    real time (it materializes a span per observable) but the factor is
    pinned so a hook that quietly grows stays visible in CI.
    """
    bench, compiled = _compiled(*HEADLINE)

    default_opts = SimulationOptions(frames=bench.frames)
    off_opts = SimulationOptions(frames=bench.frames, telemetry=False)
    on_opts = SimulationOptions(frames=bench.frames, telemetry=True)

    # telemetry=False normalizes to the None (default) configuration:
    # identical options object, identical code path, zero overhead.
    assert off_opts == default_opts

    off_wall, off = _best_of(lambda: simulate(compiled, off_opts))
    on_wall, on = _best_of(lambda: simulate(compiled, on_opts))

    # Telemetry is purely observational: the simulated schedule, the
    # event count, and every output are unchanged by collection.
    assert on.events_processed == off.events_processed
    assert on.makespan_s == off.makespan_s
    assert off.telemetry is None and on.telemetry is not None

    once(benchmark, lambda: simulate(compiled, on_opts))

    overhead = on_wall / off_wall
    _telemetry_entry.update({
        "app": HEADLINE[0],
        "chip": HEADLINE[1],
        "frames": bench.frames,
        "events": on.events_processed,
        "spans": sum(on.telemetry.span_counts().values()),
        "off_wall_s": off_wall,
        "on_wall_s": on_wall,
        "overhead": overhead,
        "max_overhead": TELEMETRY_MAX_OVERHEAD,
    })
    assert overhead <= TELEMETRY_MAX_OVERHEAD, (
        f"telemetry collection costs {overhead:.2f}x > "
        f"{TELEMETRY_MAX_OVERHEAD}x the telemetry-off run"
    )
