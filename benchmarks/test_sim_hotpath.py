"""Simulator hot-path benchmark: optimized loop vs the frozen seed loop.

Times ``repro.sim.simulate`` (interpreted *and* quasi-static replay,
``SimulationOptions(replay=True)``, with and without batched period
execution) against ``repro.sim.reference_simulate`` on the five
Figure 13 applications at two chip sizes, and writes the results to
``BENCH_sim.json`` at the repository root (events/sec, wall time, peak
event-heap occupancy, speedups, replay engagement, batch coverage).
Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_sim_hotpath.py -q

Timing methodology: the application is compiled *once* outside the
timed region; each loop is then timed best-of-``ROUNDS`` around the
``simulate`` call alone with ``time.perf_counter``.  Best-of (not mean)
because scheduler noise is strictly additive.  Two acceptance bars are
asserted on the headline entry (the Figure 1 image pipeline, suite key
``5``, at the 64-processor chip) so regressions fail CI's benchmark job
rather than silently shipping: the interpreted loop must beat the seed
loop by ``HEADLINE_MIN_SPEEDUP``, and the replay engine must beat it by
``REPLAY_MIN_SPEEDUP`` while actually engaging (a replay engine that
silently never locks a period would otherwise "pass" at interpreted
speed).  Kernel execution — real pixel data, always computed — is about
half the replay-mode wall time, which is what bounds the replay bar
well below the event-dispatch savings alone.

See ``docs/performance.md`` for what each engine changes and
``tests/test_sim_conformance.py`` / ``tests/test_sim_differential.py``
for the proof that all three are observably identical.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
from functools import lru_cache

import pytest

from repro.apps.suite import BENCHMARK_PROCESSOR
from repro.apps.suite import benchmark as suite_benchmark
from repro.machine import ManyCoreChip, ProcessorSpec
from repro.sim import SimulationOptions, reference_simulate, simulate
from repro.transform import CompileOptions, compile_application

from conftest import once

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: The five Figure 13 applications.
APP_KEYS = ("1", "2", "3", "4", "5")

#: Two chip sizes: the paper's 64-element Ambric-class array of
#: benchmark tiles, and a 256-element mesh of larger tiles (more local
#: store shifts the compiler away from buffer splits, so the second
#: size exercises a different compiled shape, not just more room).
CHIPS = {
    "64": ManyCoreChip(cols=8, rows=8, processor=BENCHMARK_PROCESSOR),
    "256": ManyCoreChip(
        cols=16, rows=16,
        processor=ProcessorSpec(clock_hz=20e6, memory_words=2048),
    ),
}

#: Timed repetitions per loop; best-of is reported.  Five rounds, not
#: three: the headline entries assert ratio floors, and a single noisy
#: round on the wrong side of the ratio shifts it by ±25% on a shared
#: runner.  Noise is additive, so more rounds only tightens the best.
ROUNDS = 5

#: The acceptance bars on the headline entry (app "5" on the 64-PE chip).
HEADLINE = ("5", "64")
HEADLINE_MIN_SPEEDUP = 2.0

#: Replay's own headline runs the same app at a longer horizon
#: (steady state: the detector's warmup — interpreted events spent
#: finding the period — is amortized away, and the longer timed region
#: shrinks relative scheduler noise).  Three bars, together raising the
#: effective hot-path floor above the interpreted loop's 2x:
#: replay must keep the 2x-vs-seed win, must not lose to the
#: interpreted loop it was compiled from (measured 0.94-1.02x; ratios
#: between the two in-process engines are stable where ratios against
#: the seed loop swing ±25% with runner load), and must demonstrably
#: engage (measured ~71% of events replayed at this horizon — an
#: engine that never locks a period would otherwise "pass" at
#: interpreted speed).  Kernel execution — real pixel data, always
#: computed — is about half the replay-mode wall time, which is what
#: Amdahl-bounds the vs-seed ratio near 2.4x rather than the
#: dispatch-only savings.
HEADLINE_FRAMES = 12
REPLAY_MIN_SPEEDUP = 2.0
REPLAY_VS_INTERPRETED_MAX = 1.05
REPLAY_MIN_ENGAGEMENT = 0.60

#: Batched quasi-static execution (``repro.sim.batch``) bars, same
#: methodology as the replay bars: the vs-seed ratio swings ±25% with
#: runner load, so the *defended* floor is the stable in-process ratio —
#: the batched walk must beat the per-firing walk it specializes
#: (measured ~0.83x wall) — plus a coverage floor proving the batch
#: compiler still vectorizes the bulk of the period (measured ~86% of
#: replayed firings batched; an executor that silently fell back to
#: scalar would otherwise "pass" at no-batch speed).  The vs-seed floor
#: is kept above the replay bar so the batch win registers against the
#: frozen loop too (measured 2.7-3.4x best-of on a loaded runner;
#: interpreted demotion gaps Amdahl-bound it well below the
#: batched-region savings).
BATCH_MIN_SPEEDUP = 2.4
BATCH_VS_NOBATCH_MAX = 0.95
BATCH_MIN_COVERAGE = 0.50

#: Telemetry-on wall time may cost at most this factor over telemetry-off
#: (measured ~2.8x on the headline entry; the bound leaves CI headroom).
TELEMETRY_MAX_OVERHEAD = 6.0

_entries: list[dict] = []
_telemetry_entry: dict = {}
_replay_headline: dict = {}
_batch_headline: dict = {}


@lru_cache(maxsize=None)
def _compiled(key: str, chip_name: str):
    bench = suite_benchmark(key)
    chip = CHIPS[chip_name]
    compiled = compile_application(
        bench.application(), chip.processor, CompileOptions(mapping="greedy")
    )
    return bench, compiled


def _best_of(fn, rounds: int = ROUNDS):
    """Best-of-``rounds`` wall time for a single callable."""
    (best,), (result,) = _best_of_each([fn], rounds)
    return best, result


def _best_of_each(fns, rounds: int = ROUNDS):
    """Best-of-``rounds`` wall time for each callable, rounds interleaved.

    Two methodology points, both about keeping the *ratios* honest:

    * Rounds are interleaved (engine A, engine B, ..., repeat), not
      blocked per engine.  Load bursts on a shared runner are
      time-correlated; timing one engine's rounds back-to-back lets a
      burst land entirely on one side of a speedup ratio and swing it
      by ±25%.  Interleaving gives every engine a shot at each quiet
      window, so best-of converges to the same conditions for all.
    * ``gc.collect()`` runs before every timed region.  Earlier tests in
      the same process leave thousands of live objects (cached compiled
      apps, prior results); a generational collection triggered by
      *their* garbage landing inside one engine's region but not
      another's can skew a single entry by 4-5x.  The GC stays enabled —
      its steady-state cost is part of each engine's real performance.
    """
    bests = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            gc.collect()
            started = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - started
            if elapsed < bests[i]:
                bests[i], results[i] = elapsed, out
    return bests, results


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Collect every entry, then publish BENCH_sim.json once."""
    yield
    if not _entries:
        return
    payload = {
        "suite": "sim_hotpath",
        "rounds": ROUNDS,
        "headline": {
            "app": HEADLINE[0],
            "chip": HEADLINE[1],
            "min_speedup": HEADLINE_MIN_SPEEDUP,
        },
        "entries": _entries,
    }
    if _replay_headline:
        payload["replay_headline"] = _replay_headline
    if _batch_headline:
        payload["batch_headline"] = _batch_headline
    if _telemetry_entry:
        payload["telemetry"] = _telemetry_entry
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("chip_name", list(CHIPS))
@pytest.mark.parametrize("key", APP_KEYS)
def test_sim_hotpath(benchmark, key, chip_name):
    bench, compiled = _compiled(key, chip_name)
    chip = CHIPS[chip_name]
    assert compiled.processor_count <= chip.tile_count, (
        f"app {key} needs {compiled.processor_count} PEs; "
        f"chip has {chip.tile_count}"
    )

    options = SimulationOptions(frames=bench.frames)
    replay_options = SimulationOptions(frames=bench.frames, replay=True)
    (opt_wall, rep_wall, ref_wall), (opt, rep, ref) = _best_of_each([
        lambda: simulate(compiled, options),
        lambda: simulate(compiled, replay_options),
        lambda: reference_simulate(compiled, options),
    ])
    # Sanity only — full observational identity lives in the
    # conformance and differential suites.
    assert opt.events_processed == ref.events_processed
    assert rep.events_processed == ref.events_processed
    rstats = rep.replay
    assert rstats is not None and rstats.eligible

    once(benchmark, lambda: simulate(compiled, options))

    speedup = ref_wall / opt_wall
    replay_speedup = ref_wall / rep_wall
    engagement = rstats.events_replayed / max(1, rep.events_processed)
    _entries.append({
        "app": key,
        "title": bench.title,
        "chip": {
            "name": chip_name,
            "cols": chip.cols,
            "rows": chip.rows,
            "processors": chip.tile_count,
            "clock_hz": chip.processor.clock_hz,
            "memory_words": chip.processor.memory_words,
        },
        "mapping": "greedy",
        "frames": bench.frames,
        "processors_used": compiled.processor_count,
        "events": opt.events_processed,
        "firings": sum(opt.firings.values()),
        "wall_s": opt_wall,
        "events_per_s": opt.events_processed / opt_wall,
        "peak_heap": opt.peak_heap,
        "reference": {
            "wall_s": ref_wall,
            "events_per_s": ref.events_processed / ref_wall,
            "peak_heap": ref.peak_heap,
        },
        "speedup": speedup,
        "replay": {
            "wall_s": rep_wall,
            "events_per_s": rep.events_processed / rep_wall,
            "speedup": replay_speedup,
            "engaged": rstats.engaged,
            "engagement": engagement,
            "events_replayed": rstats.events_replayed,
            "periods_compiled": rstats.periods_compiled,
            "periods_replayed": rstats.periods_replayed,
            "period_firings": rstats.period_firings,
            "demotions": dict(rstats.demotions),
        },
    })

    if (key, chip_name) == HEADLINE:
        assert speedup >= HEADLINE_MIN_SPEEDUP, (
            f"hot path regressed: {speedup:.2f}x < "
            f"{HEADLINE_MIN_SPEEDUP}x on the Figure 1 pipeline"
        )


def test_replay_headline_steady_state(benchmark):
    """The raised hot-path bar: quasi-static replay at steady state.

    Runs the Figure 1 pipeline (app "5", 64-PE chip) for
    ``HEADLINE_FRAMES`` frames — long enough that the detector's warmup
    is amortized — and asserts the replay engine (a) keeps the 2x win
    over the frozen seed loop, (b) is at least as fast as the
    interpreted hot path it demotes to, and (c) replays a majority of
    all events.  See the bar constants above for why the vs-interpreted
    ratio, not a bigger vs-seed multiple, is the stable raised floor.
    """
    bench, compiled = _compiled(*HEADLINE)
    options = SimulationOptions(frames=HEADLINE_FRAMES)
    replay_options = SimulationOptions(frames=HEADLINE_FRAMES, replay=True)
    (opt_wall, rep_wall, ref_wall), (opt, rep, ref) = _best_of_each([
        lambda: simulate(compiled, options),
        lambda: simulate(compiled, replay_options),
        lambda: reference_simulate(compiled, options),
    ])
    assert rep.events_processed == opt.events_processed == ref.events_processed
    rstats = rep.replay
    assert rstats is not None and rstats.eligible

    once(benchmark, lambda: simulate(compiled, replay_options))

    replay_speedup = ref_wall / rep_wall
    vs_interpreted = rep_wall / opt_wall
    engagement = rstats.events_replayed / max(1, rep.events_processed)
    _replay_headline.update({
        "app": HEADLINE[0],
        "chip": HEADLINE[1],
        "frames": HEADLINE_FRAMES,
        "events": rep.events_processed,
        "wall_s": rep_wall,
        "interpreted_wall_s": opt_wall,
        "reference_wall_s": ref_wall,
        "speedup": replay_speedup,
        "vs_interpreted": vs_interpreted,
        "engagement": engagement,
        "periods_replayed": rstats.periods_replayed,
        "period_firings": rstats.period_firings,
        "demotions": dict(rstats.demotions),
        "bars": {
            "min_speedup": REPLAY_MIN_SPEEDUP,
            "vs_interpreted_max": REPLAY_VS_INTERPRETED_MAX,
            "min_engagement": REPLAY_MIN_ENGAGEMENT,
        },
    })
    assert replay_speedup >= REPLAY_MIN_SPEEDUP, (
        f"replay engine regressed: {replay_speedup:.2f}x < "
        f"{REPLAY_MIN_SPEEDUP}x vs the seed loop on the Figure 1 pipeline"
    )
    assert vs_interpreted <= REPLAY_VS_INTERPRETED_MAX, (
        f"replay lost to the interpreted loop it was compiled from: "
        f"{vs_interpreted:.3f}x wall (> {REPLAY_VS_INTERPRETED_MAX}x); "
        f"stats: {rstats.as_dict()}"
    )
    assert rstats.engaged and engagement >= REPLAY_MIN_ENGAGEMENT, (
        f"replay engagement collapsed on the headline entry: "
        f"{engagement:.0%} of events replayed "
        f"(< {REPLAY_MIN_ENGAGEMENT:.0%}); stats: {rstats.as_dict()}"
    )


def test_batch_headline_steady_state(benchmark):
    """Batched quasi-static execution vs the per-firing walk and the seed.

    Runs the Figure 1 pipeline (app "5", 64-PE chip) for
    ``HEADLINE_FRAMES`` frames under three engines — replay with batched
    execution (the default), replay with ``batch=False`` (the
    per-firing walk the batch executor specializes), and the frozen
    seed loop — and asserts the three bars documented at
    ``BATCH_MIN_SPEEDUP`` above.  The byte-identity of the three runs is
    proven by the conformance and differential suites; here only a
    cheap event-count cross-check plus the strategy-ledger invariant
    (batched + scalar firings exactly cover the no-batch run's scalar
    count) guard against benchmarking two different schedules.
    """
    bench, compiled = _compiled(*HEADLINE)
    options = SimulationOptions(frames=HEADLINE_FRAMES)
    batch_options = SimulationOptions(frames=HEADLINE_FRAMES, replay=True)
    scalar_options = SimulationOptions(
        frames=HEADLINE_FRAMES, replay=True, batch=False
    )
    (bat_wall, sca_wall, ref_wall), (bat, sca, ref) = _best_of_each([
        lambda: simulate(compiled, batch_options),
        lambda: simulate(compiled, scalar_options),
        lambda: reference_simulate(compiled, options),
    ])
    assert bat.events_processed == sca.events_processed == ref.events_processed
    bstats = bat.replay
    sstats = sca.replay
    assert bstats is not None and bstats.eligible and bstats.engaged
    assert sstats.firings_batched == 0
    assert bstats.firings_batched > 0, (
        f"batched executor never engaged on the headline entry: "
        f"{bstats.as_dict()}"
    )
    assert (bstats.firings_batched + bstats.firings_scalar
            == sstats.firings_scalar), (
        f"strategy ledger mismatch: {bstats.as_dict()} vs {sstats.as_dict()}"
    )

    once(benchmark, lambda: simulate(compiled, batch_options))

    speedup = ref_wall / bat_wall
    vs_nobatch = bat_wall / sca_wall
    walked = bstats.firings_batched + bstats.firings_scalar
    coverage = bstats.firings_batched / walked
    _batch_headline.update({
        "app": HEADLINE[0],
        "chip": HEADLINE[1],
        "frames": HEADLINE_FRAMES,
        "events": bat.events_processed,
        "wall_s": bat_wall,
        "nobatch_wall_s": sca_wall,
        "reference_wall_s": ref_wall,
        "speedup": speedup,
        "vs_nobatch": vs_nobatch,
        "firings_batched": bstats.firings_batched,
        "firings_scalar": bstats.firings_scalar,
        "coverage": coverage,
        "batched_kernels": list(bstats.batched_kernels),
        "bars": {
            "min_speedup": BATCH_MIN_SPEEDUP,
            "vs_nobatch_max": BATCH_VS_NOBATCH_MAX,
            "min_coverage": BATCH_MIN_COVERAGE,
        },
    })
    assert speedup >= BATCH_MIN_SPEEDUP, (
        f"batched replay regressed: {speedup:.2f}x < {BATCH_MIN_SPEEDUP}x "
        f"vs the seed loop on the Figure 1 pipeline"
    )
    assert vs_nobatch <= BATCH_VS_NOBATCH_MAX, (
        f"batched execution lost to the per-firing walk it specializes: "
        f"{vs_nobatch:.3f}x wall (> {BATCH_VS_NOBATCH_MAX}x); "
        f"stats: {bstats.as_dict()}"
    )
    assert coverage >= BATCH_MIN_COVERAGE, (
        f"batch coverage collapsed: {coverage:.0%} of replayed firings "
        f"batched (< {BATCH_MIN_COVERAGE:.0%}); stats: {bstats.as_dict()}"
    )


def test_telemetry_overhead(benchmark):
    """Telemetry off must not move the hot path; on must stay bounded.

    Off-mode zero cost is structural — the loop carries a single
    precomputed ``None`` local, the exact seam the fault injector uses —
    and is held two ways: the headline 2x-vs-seed assertion above runs
    with telemetry off, and this test asserts the off-mode run matches
    the default-options run event for event.  On-mode is allowed to cost
    real time (it materializes a span per observable) but the factor is
    pinned so a hook that quietly grows stays visible in CI.
    """
    bench, compiled = _compiled(*HEADLINE)

    default_opts = SimulationOptions(frames=bench.frames)
    off_opts = SimulationOptions(frames=bench.frames, telemetry=False)
    on_opts = SimulationOptions(frames=bench.frames, telemetry=True)

    # telemetry=False normalizes to the None (default) configuration:
    # identical options object, identical code path, zero overhead.
    assert off_opts == default_opts

    (off_wall, on_wall), (off, on) = _best_of_each([
        lambda: simulate(compiled, off_opts),
        lambda: simulate(compiled, on_opts),
    ])

    # Telemetry is purely observational: the simulated schedule, the
    # event count, and every output are unchanged by collection.
    assert on.events_processed == off.events_processed
    assert on.makespan_s == off.makespan_s
    assert off.telemetry is None and on.telemetry is not None

    once(benchmark, lambda: simulate(compiled, on_opts))

    overhead = on_wall / off_wall
    _telemetry_entry.update({
        "app": HEADLINE[0],
        "chip": HEADLINE[1],
        "frames": bench.frames,
        "events": on.events_processed,
        "spans": sum(on.telemetry.span_counts().values()),
        "off_wall_s": off_wall,
        "on_wall_s": on_wall,
        "overhead": overhead,
        "max_overhead": TELEMETRY_MAX_OVERHEAD,
    })
    assert overhead <= TELEMETRY_MAX_OVERHEAD, (
        f"telemetry collection costs {overhead:.2f}x > "
        f"{TELEMETRY_MAX_OVERHEAD}x the telemetry-off run"
    )
