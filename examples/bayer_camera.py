"""Bayer camera pipeline: demosaic a sensor stream in real time.

The Figure 13 benchmark-1 application: an RGGB mosaic sensor feeds a quad
demosaic kernel (one multi-output kernel producing R, G, and B planes)
whose planes fold to luminance.  At the fast sensor rate the compiler must
replicate the demosaic kernel to keep up — run the example to watch the
degree change.

Run:  python examples/bayer_camera.py
"""

import repro
from repro.apps import build_bayer_app


def main() -> None:
    proc = repro.ProcessorSpec(clock_hz=20e6, memory_words=512)
    chunks_per_frame = (32 // 2) * (16 // 2)

    for label, rate in (("baseline", 200.0), ("fast", 5000.0)):
        app = build_bayer_app(32, 16, rate)
        compiled = repro.compile_application(app, proc)
        result = repro.simulate(compiled, repro.SimulationOptions(frames=4))
        verdict = result.verdict(
            "Video", rate_hz=rate, chunks_per_frame=chunks_per_frame
        )
        degree = compiled.parallelization.degrees.get("Demosaic", 1)
        print(
            f"{label:>8} ({rate:g} fps): demosaic x{degree}, "
            f"{compiled.processor_count} PEs, "
            f"utilization {result.utilization.average_utilization:.1%}"
        )
        print(f"          {verdict.describe()}")
        assert verdict.meets

    # Peek at the first demosaiced luma values.
    app = build_bayer_app(32, 16, 200.0)
    compiled = repro.compile_application(app, proc)
    func = repro.run_functional(compiled.graph, frames=1)
    lumas = [float(c[0, 0]) for c in func.output("Video")[:8]]
    print("first luma samples:", [round(v, 2) for v in lumas])


if __name__ == "__main__":
    main()
