"""Writing your own kernel: methods, private state, and control tokens.

Implements a per-frame running-maximum kernel in the Figure 7 style: one
method counts data, a second fires on the end-of-frame token to flush the
result, and a custom ``ResetPeak`` control token (with a declared maximum
rate, so the compiler can budget its handler) clears the state mid-stream.

Run:  python examples/custom_kernel.py
"""

import numpy as np

import repro
from repro.graph import Kernel, MethodCost
from repro.tokens import EndOfFrame, custom_token

#: A custom control token: at most twice per frame, so the compiler can
#: account for the cycles its handler consumes (Section II-C).
ResetPeak = custom_token("ResetPeak", max_per_frame=2)


class PeakDetector(Kernel):
    """Tracks the maximum element per frame; emits it at end-of-frame."""

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1)
        self.add_output("peak", 1, 1)
        self.add_method("observe", inputs=["in"], cost=MethodCost(cycles=6))
        self.add_method(
            "flush",
            on_token=("in", EndOfFrame),
            outputs=["peak"],
            cost=MethodCost(cycles=8),
            forward_token=True,
        )
        self.add_method(
            "reset", on_token=("in", ResetPeak), cost=MethodCost(cycles=4)
        )
        self._peak = float("-inf")

    def observe(self) -> None:
        value = float(self.read_input("in")[0, 0])
        if value > self._peak:
            self._peak = value

    def flush(self) -> None:
        self.write_output("peak", np.array([[self._peak]]))
        self._peak = float("-inf")

    def reset(self) -> None:
        self._peak = float("-inf")

    def reset_state(self) -> None:  # pragma: no cover - clarity alias
        self.reset()


def main() -> None:
    frame = np.arange(30.0).reshape(5, 6)

    app = repro.ApplicationGraph("peak_demo")
    src = app.add_input("Input", 6, 5, rate_hz=50.0)
    src._pattern = lambda f: frame + 100.0 * f
    app.add_kernel(PeakDetector("Peak"))
    app.add_output("Out")
    app.connect("Input", "out", "Peak", "in")
    app.connect("Peak", "peak", "Out", "in")

    compiled = repro.compile_application(app)
    result = repro.run_functional(compiled.graph, frames=3)
    peaks = [float(c[0, 0]) for c in result.output("Out")]
    print("per-frame peaks:", peaks)
    assert peaks == [29.0, 129.0, 229.0]

    # The same app under full timing.
    timed = repro.simulate(compiled, repro.SimulationOptions(frames=3))
    verdict = timed.verdict("Out", rate_hz=50.0, chunks_per_frame=1)
    print(verdict.describe())
    assert verdict.meets


if __name__ == "__main__":
    main()
