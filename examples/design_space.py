"""Design-space exploration: rate, processors, schedule, and energy.

The compiler's analyses compose into the questions an embedded architect
actually asks:

1. *How fast can this application run on N processors?* — the
   StreamIt-style inverse query, answered by binary-searching compiles.
2. *Will it provably keep up?* — the static SDF-style admission test.
3. *What does each design point cost in energy?* — the parametric energy
   model over the simulated run, with annealed placement for the network
   component.

Run:  python examples/design_space.py
"""

import repro
from repro.analysis import build_static_schedule
from repro.apps import build_image_pipeline
from repro.machine import ManyCoreChip, anneal_placement, estimate_energy
from repro.transform import find_max_rate


def main() -> None:
    proc = repro.ProcessorSpec(clock_hz=20e6, memory_words=512)
    chip = ManyCoreChip(cols=8, rows=8, processor=proc)

    print("budget | max rate | PEs | bottleneck | energy/frame")
    print("-" * 60)
    for budget in (6, 10, 16):
        res = find_max_rate(
            lambda r: build_image_pipeline(24, 16, r), proc,
            processor_budget=budget, low_hz=50.0,
        )
        schedule = build_static_schedule(res.compiled)
        assert schedule.admissible
        bottleneck = schedule.bottleneck()

        sim = repro.simulate(res.compiled, repro.SimulationOptions(frames=3))
        placement = anneal_placement(
            res.compiled.mapping, res.compiled.dataflow, chip, seed=0,
            iterations=5000,
        )
        energy = estimate_energy(
            sim, res.compiled.mapping, res.compiled.dataflow,
            processor=proc, placement=placement,
        )
        per_frame_uj = energy.total_j / 3 * 1e6
        print(
            f"{budget:>6} | {res.best_rate_hz:7.1f}Hz "
            f"| {res.compiled.processor_count:3d} "
            f"| PE{bottleneck.processor} @ {bottleneck.utilization:5.1%} "
            f"| {per_frame_uj:6.2f} uJ"
        )

    print()
    print("Higher budgets buy rate; the admission test certifies each")
    print("point statically, and energy scales with powered processors.")


if __name__ == "__main__":
    main()
