"""Design-space exploration through the ``repro.explore`` engine.

The questions an embedded architect asks — which sizes and mappings meet
real time, at what utilization, on how many processors? — are sweeps over
(application x chip x rate x compiler options).  ``repro.explore`` turns
each sweep point into a fingerprinted job: results are cached by content
address (re-running a sweep only executes changed points), failures are
isolated and retried, and the aggregate report gives the paper's axes
directly (best-rate frontier, utilization vs processor count).

This example runs a small grid twice to show the cache at work, then
answers the StreamIt-style inverse query (max rate on a processor budget)
with cached probe decisions.

Run:  python examples/design_space.py
"""

import tempfile

from repro.apps import build_image_pipeline
from repro.explore import (
    ResultCache,
    SweepSpec,
    find_max_rate_cached,
    run_sweep,
)
from repro.machine import ProcessorSpec

SPEC = {
    "name": "design_space",
    "app": "image_pipeline",
    "axes": {
        "rate_hz": [100.0, 400.0],
        "mapping": ["greedy", "1:1"],
    },
    "fixed": {"width": 24, "height": 16},
    "frames": 3,
}


def main() -> None:
    spec = SweepSpec.from_dict(SPEC)
    jobs = spec.jobs()
    print(f"sweep {spec.name!r}: {len(jobs)} design points")
    for job in jobs:
        print(f"  {job.label}  [{job.fingerprint[:12]}]")

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)

        first = run_sweep(jobs, cache=cache)
        assert first.succeeded == len(jobs) and first.cache_hits == 0
        print()
        print(first.report().describe())

        # Identical jobs, identical fingerprints: the second run executes
        # nothing at all.
        second = run_sweep(jobs, cache=cache)
        assert second.cache_hits == len(jobs)
        print()
        print(f"re-run: {second.cache_hits}/{len(jobs)} points from cache "
              f"in {second.elapsed_s:.2f}s")

        # The inverse query: the highest rate a processor budget supports.
        # Probe decisions land in the same content-addressed cache, so a
        # repeated search recompiles only the winning rate.
        proc = ProcessorSpec(clock_hz=20e6, memory_words=512)
        def build(rate):
            return build_image_pipeline(24, 16, rate)

        print()
        print("budget | max rate | PEs | probes")
        print("-" * 38)
        for budget in (6, 10, 16):
            res = find_max_rate_cached(
                build, proc, cache_dir=cache_dir,
                processor_budget=budget, low_hz=50.0,
            )
            print(f"{budget:>6} | {res.best_rate_hz:7.1f}Hz "
                  f"| {res.compiled.processor_count:3d} "
                  f"| {res.probes} ({res.cache_hits} cached)")

        again = find_max_rate_cached(
            build, proc, cache_dir=cache_dir,
            processor_budget=16, low_hz=50.0,
        )
        assert again.cache_hits == again.probes
        print(f"repeat | {again.best_rate_hz:7.1f}Hz |  all "
              f"{again.probes} probes from cache")

    print()
    print("Fingerprints make results reusable across runs; the frontier")
    print("and utilization columns are Figures 11 and 13 as a query.")


if __name__ == "__main__":
    main()
