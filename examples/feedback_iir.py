"""Feedback loops (Section III-D): a first-order IIR temporal smoother.

The paper sketches feedback support via special loop-breaking kernels plus
programmer-supplied initial values; this example uses that machinery:
``y[n] = x[n] + alpha * y[n-1]`` with ``y[-1] = 0``, running continuously
across frames.  The feedback input of the combining kernel is marked
*token transparent* — the loop stream lags by one iteration (the classic
SDF delay), so the forward path alone carries the frame structure.

Run:  python examples/feedback_iir.py
"""

import numpy as np

import repro
from repro.kernels import AddKernel, InitialValueKernel, ScaleKernel


def build_smoother(alpha: float, width: int, height: int,
                   rate_hz: float) -> repro.ApplicationGraph:
    app = repro.ApplicationGraph("iir_smoother")
    src = app.add_input("Input", width, height, rate_hz)
    src._pattern = np.ones((height, width))

    acc = app.add_kernel(AddKernel("acc"))
    acc.mark_token_transparent("in1")  # the feedback input
    app.add_kernel(ScaleKernel("decay", gain=alpha))
    app.add_kernel(
        InitialValueKernel(
            "loop", np.zeros((1, 1)),
            region_w=width, region_h=height, rate_hz=rate_hz,
        )
    )
    app.add_output("Out")

    app.connect("Input", "out", "acc", "in0")
    app.connect("acc", "out", "loop", "in")       # forward into the loop
    app.connect("loop", "out", "decay", "in")     # loop body
    app.connect("decay", "out", "acc", "in1")     # back edge
    app.connect("acc", "out", "Out", "in")
    return app


def main() -> None:
    alpha = 0.5
    app = build_smoother(alpha, width=6, height=1, rate_hz=100.0)
    compiled = repro.compile_application(app)
    result = repro.run_functional(compiled.graph, frames=2)
    ys = [float(c[0, 0]) for c in result.output("Out")]
    print("smoothed:", [round(y, 4) for y in ys])

    # Check against the closed-form recurrence.
    expected = []
    y = 0.0
    for _ in ys:
        y = 1.0 + alpha * y
        expected.append(y)
    assert np.allclose(ys, expected), (ys, expected)
    print("matches the y[n] = x[n] + %.2f*y[n-1] recurrence" % alpha)

    timed = repro.simulate(compiled, repro.SimulationOptions(frames=2))
    verdict = timed.verdict("Out", rate_hz=100.0, chunks_per_frame=6)
    print(verdict.describe())
    assert verdict.meets


if __name__ == "__main__":
    main()
