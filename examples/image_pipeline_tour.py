"""A tour of the compiler on the paper's running example (Figures 1-4, 11).

Builds the Figure 1(b) image-processing application — median + convolution
filters, per-pixel difference, data-parallel histogram with a serial merge
— then walks each compiler stage:

1. the misalignment between the 3x3 and 5x5 outputs (Figure 8);
2. automatic inset insertion and buffering (Figure 3);
3. automatic parallelization at four input size/rate points (Figure 11);
4. timing-accurate simulation verifying each configuration's real-time
   constraint.

Run:  python examples/image_pipeline_tour.py
"""

import repro
from repro.analysis import find_misalignments
from repro.apps import build_image_pipeline


def main() -> None:
    proc = repro.ProcessorSpec(clock_hz=20e6, memory_words=512)

    print("=== The misalignment the compiler must repair (Figure 8) ===")
    app = build_image_pipeline(24, 16, 100.0)
    for problem in find_misalignments(app):
        print(problem.describe())

    print()
    print("=== Small/Slow through Big/Fast (Figure 11) ===")
    configs = {
        "Small/Slow": (24, 16, 100.0),
        "Small/Fast": (24, 16, 1000.0),
        "Big/Slow": (48, 32, 100.0),
        "Big/Fast": (48, 32, 400.0),
    }
    for label, (w, h, rate) in configs.items():
        app = build_image_pipeline(w, h, rate)
        compiled = repro.compile_application(app, proc)
        result = repro.simulate(compiled, repro.SimulationOptions(frames=4))
        verdict = result.verdict("result", rate_hz=rate, chunks_per_frame=1)
        degrees = {
            k: d for k, d in compiled.parallelization.degrees.items() if d > 1
        }
        print(
            f"{label:>10}: {compiled.kernel_count():2d} kernels on "
            f"{compiled.processor_count:2d} PEs, parallelized {degrees or '{}'}"
        )
        print(f"            {verdict.describe()}")

    print()
    print("=== Why parallelization matters: disable it at Small/Fast ===")
    app = build_image_pipeline(24, 16, 1000.0)
    naive = repro.compile_application(
        app, proc, repro.CompileOptions(parallelize=False)
    )
    result = repro.simulate(naive, repro.SimulationOptions(frames=4))
    verdict = result.verdict("result", rate_hz=1000.0, chunks_per_frame=1)
    print(verdict.describe())
    assert not verdict.meets, "the unparallelized pipeline should fall behind"


if __name__ == "__main__":
    main()
