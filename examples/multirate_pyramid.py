"""Multi-rate processing: a two-level image pyramid with fractional offsets.

A video stream is smoothed, 2:1 box-downsampled (the fractional-offset
case of the paper's footnote 2 — each downsampled pixel sits at offset
(0.5, 0.5) inside its source quad), opened morphologically at the coarse
scale, and emitted.  Every stage needs different buffering, all inserted
automatically; the coarse stages run at a quarter of the pixel rate, which
the dataflow analysis tracks exactly.

Run:  python examples/multirate_pyramid.py
"""

import numpy as np

import repro
from repro.kernels import DownsampleKernel, GaussianKernel, add_opening


def main() -> None:
    width, height, rate = 32, 24, 100.0
    app = repro.ApplicationGraph("pyramid")
    src = app.add_input("Input", width, height, rate)
    rng = np.random.default_rng(7)
    noisy = rng.uniform(0, 255, (height, width))
    src._pattern = noisy

    app.add_kernel(GaussianKernel("Smooth", 3, 3, sigma=1.0))
    app.add_kernel(DownsampleKernel("Down2", factor=2))
    first, last = add_opening(app, "Open", 3, 3)
    app.add_output("Coarse")

    app.connect("Input", "out", "Smooth", "in")
    app.connect("Smooth", "out", "Down2", "in")
    app.connect("Down2", "out", first.name, "in")
    app.connect(last.name, "out", "Coarse", "in")

    proc = repro.ProcessorSpec(clock_hz=20e6, memory_words=512)
    compiled = repro.compile_application(app, proc)
    print(compiled.describe())

    # The analysis knows the rate drop: the smoother iterates 30x22 times
    # per frame, the downsampler 15x11, the opening stages fewer still.
    df = compiled.dataflow
    for name, flow in df.flows.items():
        if name.startswith("Smooth") or name.startswith("Down2"):
            print(f"  {name}: {flow.total_firings_per_second:,.0f} firings/s")

    # Verify in timed simulation.  The coarse output extent: smoothing
    # keeps 30x22, downsampling halves to 15x11, each 3x3 opening stage
    # trims its halo: 13x9 then 11x7.
    result = repro.simulate(compiled, repro.SimulationOptions(frames=3))
    verdict = result.verdict("Coarse", rate_hz=rate, chunks_per_frame=11 * 7)
    print(verdict.describe())
    assert verdict.meets

    # Functional sanity: opening output is bounded by the smoothed range.
    func = repro.run_functional(compiled.graph, frames=1)
    coarse = func.output_frame("Coarse", 0, 11, 7)
    assert coarse.min() >= 0.0 and coarse.max() <= 255.0
    print(f"coarse frame range: [{coarse.min():.1f}, {coarse.max():.1f}]")


if __name__ == "__main__":
    main()
