"""Quickstart: declare a real-time app, compile it, verify it in simulation.

A 32x24 video stream at 100 frames/s passes through a 3x3 Sobel edge
detector.  The compiler inserts the line buffer the windowed filter needs,
sizes parallelism for the declared input rate, and maps kernels to
processors; the timing-accurate simulator then checks the real-time
constraint actually holds.

Run:  python examples/quickstart.py
"""

import repro
from repro.kernels import SobelKernel


def main() -> None:
    # 1. Describe the application: an input with a hard real-time rate,
    #    one computation kernel, one output.
    app = repro.ApplicationGraph("edge_detect")
    app.add_input("Input", 32, 24, rate_hz=100.0)
    app.add_kernel(SobelKernel("Sobel"))
    app.add_output("Out")
    app.connect("Input", "out", "Sobel", "in")
    app.connect("Sobel", "out", "Out", "in")
    print(app.describe())

    # 2. Compile for a small embedded tile: 20 MHz, 512 words of memory.
    proc = repro.ProcessorSpec(clock_hz=20e6, memory_words=512)
    compiled = repro.compile_application(app, proc)
    print()
    print(compiled.describe())
    print()
    print(compiled.mapping.describe())

    # 3. Simulate with full timing and check the verdict.
    result = repro.simulate(compiled, repro.SimulationOptions(frames=4))
    verdict = result.verdict(
        "Out", rate_hz=100.0, chunks_per_frame=(32 - 2) * (24 - 2)
    )
    print()
    print(verdict.describe())
    print(result.utilization.describe())

    assert verdict.meets, "quickstart should meet real-time"


if __name__ == "__main__":
    main()
