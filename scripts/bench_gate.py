"""CI benchmark regression gate over ``BENCH_sim.json``.

Usage (from the repository root)::

    python scripts/bench_gate.py BASELINE.json FRESH.json \
        [--max-regression 0.15] [--summary PATH]

Compares a freshly generated ``BENCH_sim.json`` against the committed
baseline and fails (exit 1) when either:

* any per-app entry's ``events_per_s`` regresses by more than
  ``--max-regression`` (default 15%) against the baseline entry with the
  same ``(app, chip)`` key, or
* a headline block (``replay_headline``, ``batch_headline``) in the
  fresh payload breaks one of its own published ``bars`` — the floors
  live in the payload, written by the benchmark harness, so the gate
  and the harness can never disagree about what the floor is.

A per-app delta table (GitHub-flavoured markdown) is always printed; it
is additionally appended to ``--summary`` when given, or to the file
named by ``$GITHUB_STEP_SUMMARY`` when that variable is set, so the
numbers land on the workflow run page whether or not the gate trips.

Speedups *improving* never fail the gate, and a fresh entry with no
baseline counterpart (a newly added app or chip size) is reported but
not gated — the next committed baseline picks it up.  A *missing* fresh
entry for a baseline key fails: silently dropping an app from the
benchmark is itself a regression.

The gate is deliberately asymmetric with the harness's own assertions:
the harness asserts ratio floors (stable across runner classes), the
gate additionally pins absolute throughput against the baseline from
the same runner class, which is what catches a slow creep that keeps
every ratio intact.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: Headline blocks gated against their own published bars:
#: block key -> ((metric, bar, comparison), ...) where comparison
#: "min" means metric must be >= bar and "max" means <= bar.
HEADLINE_BARS = {
    "replay_headline": (
        ("speedup", "min_speedup", "min"),
        ("vs_interpreted", "vs_interpreted_max", "max"),
        ("engagement", "min_engagement", "min"),
    ),
    "batch_headline": (
        ("speedup", "min_speedup", "min"),
        ("vs_nobatch", "vs_nobatch_max", "max"),
        ("coverage", "min_coverage", "min"),
    ),
}


def _entries_by_key(payload: dict) -> dict[tuple[str, str], dict]:
    return {
        (e["app"], e["chip"]["name"]): e for e in payload.get("entries", ())
    }


def gate(
    baseline: dict, fresh: dict, max_regression: float
) -> tuple[list[str], list[str]]:
    """Return ``(table_lines, failures)`` for the comparison."""
    base = _entries_by_key(baseline)
    new = _entries_by_key(fresh)
    failures: list[str] = []
    lines = [
        "| app | chip | baseline ev/s | fresh ev/s | delta | status |",
        "|---|---|---:|---:|---:|---|",
    ]

    for key in sorted(set(base) | set(new)):
        app, chip = key
        b = base.get(key)
        f = new.get(key)
        if f is None:
            failures.append(
                f"entry {app}@{chip} present in the baseline but missing "
                f"from the fresh run"
            )
            lines.append(
                f"| {app} | {chip} | {b['events_per_s']:,.0f} | — | — "
                f"| **missing** |"
            )
            continue
        if b is None:
            lines.append(
                f"| {app} | {chip} | — | {f['events_per_s']:,.0f} | — "
                f"| new (ungated) |"
            )
            continue
        delta = f["events_per_s"] / b["events_per_s"] - 1.0
        ok = delta >= -max_regression
        status = "ok" if ok else f"**regressed > {max_regression:.0%}**"
        lines.append(
            f"| {app} | {chip} | {b['events_per_s']:,.0f} "
            f"| {f['events_per_s']:,.0f} | {delta:+.1%} | {status} |"
        )
        if not ok:
            failures.append(
                f"app {app}@{chip}: events_per_s {b['events_per_s']:,.0f} "
                f"-> {f['events_per_s']:,.0f} ({delta:+.1%}, limit "
                f"-{max_regression:.0%})"
            )

    for block, checks in HEADLINE_BARS.items():
        head = fresh.get(block)
        if head is None:
            if block in baseline:
                failures.append(
                    f"{block} present in the baseline but missing from "
                    f"the fresh run"
                )
            continue
        bars = head.get("bars", {})
        for metric, bar_key, kind in checks:
            if bar_key not in bars:
                continue
            value, bar = head[metric], bars[bar_key]
            ok = value >= bar if kind == "min" else value <= bar
            rel = ">=" if kind == "min" else "<="
            status = "ok" if ok else "**below floor**" if kind == "min" \
                else "**above ceiling**"
            lines.append(
                f"| {block} | — | {metric} {rel} {bar:g} | {value:.3f} "
                f"| — | {status} |"
            )
            if not ok:
                failures.append(
                    f"{block}.{metric} = {value:.3f} violates the "
                    f"published bar ({metric} {rel} {bar:g})"
                )

    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when BENCH_sim.json regresses against a baseline."
    )
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="tolerated per-app events_per_s drop (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--summary",
        type=pathlib.Path,
        default=None,
        help="markdown file to append the delta table to "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    lines, failures = gate(baseline, fresh, args.max_regression)

    verdict = (
        "bench gate: **FAIL**" if failures else "bench gate: pass"
    )
    table = "\n".join(["### Simulator benchmark gate", "", verdict, ""]
                      + lines) + "\n"
    print(table)

    summary = args.summary
    if summary is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary = pathlib.Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary is not None:
        with summary.open("a") as fh:
            fh.write(table + "\n")

    if failures:
        for failure in failures:
            print(f"bench gate: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
