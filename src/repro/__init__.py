"""Block-parallel programming for real-time embedded applications.

A from-scratch reproduction of Black-Schaffer & Dally, ICPP 2010: a
stream-programming language with 2-D windowed data parameterization,
control tokens, and explicit throughput constraints; a compiler that
automatically buffers, aligns, parallelizes, and maps applications onto a
many-core processor model; and a timing-accurate functional simulator that
verifies the real-time constraints are met.

Quick start::

    import repro

    app = repro.ApplicationGraph("edge_detect")
    app.add_input("Input", 32, 24, 100.0)         # 32x24 frames at 100 Hz
    app.add_kernel(repro.kernels.SobelKernel("Sobel"))
    app.add_output("Out")
    app.connect("Input", "out", "Sobel", "in")
    app.connect("Sobel", "out", "Out", "in")

    compiled = repro.compile_application(app)      # buffer + parallelize + map
    result = repro.simulate(compiled)              # timing-accurate simulation
    verdict = result.verdict("Out", rate_hz=100.0,
                             chunks_per_frame=30 * 22)
    assert verdict.meets

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-figure reproductions.
"""

from . import (
    analysis,
    apps,
    explore,
    faults,
    kernels,
    machine,
    obs,
    sim,
    transform,
)
from .errors import (
    AlignmentError,
    AnalysisError,
    BlockParallelError,
    GraphError,
    ParallelizationError,
    RealTimeViolation,
    SimulationError,
    TransformError,
)
from .geometry import Inset, Offset2D, Region, Size2D, Step2D
from .graph import ApplicationGraph, Kernel, MethodCost
from .machine import DEFAULT_PROCESSOR, ManyCoreChip, ProcessorSpec
from .sim import (
    SimulationOptions,
    SimulationResult,
    run_functional,
    simulate,
)
from .streams import StreamInfo
from .tokens import ControlToken, EndOfFrame, EndOfLine, custom_token
from .transform import (
    CompiledApp,
    CompileOptions,
    compile_application,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "explore",
    "faults",
    "kernels",
    "machine",
    "obs",
    "sim",
    "transform",
    "AlignmentError",
    "AnalysisError",
    "BlockParallelError",
    "GraphError",
    "ParallelizationError",
    "RealTimeViolation",
    "SimulationError",
    "TransformError",
    "Inset",
    "Offset2D",
    "Region",
    "Size2D",
    "Step2D",
    "ApplicationGraph",
    "Kernel",
    "MethodCost",
    "DEFAULT_PROCESSOR",
    "ManyCoreChip",
    "ProcessorSpec",
    "SimulationOptions",
    "SimulationResult",
    "run_functional",
    "simulate",
    "StreamInfo",
    "ControlToken",
    "EndOfFrame",
    "EndOfLine",
    "custom_token",
    "CompiledApp",
    "CompileOptions",
    "compile_application",
    "__version__",
]
