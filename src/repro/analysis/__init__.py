"""Compiler analyses: dataflow, alignment, resources, validation."""

from .alignment import Misalignment, check_alignment, find_misalignments
from .dataflow import DataflowResult, KernelFlow, analyze_dataflow
from .latency import LatencyEstimate, StreamTiming, estimate_latency
from .report import compile_report
from .schedule import (
    ProcessorSchedule,
    ScheduleEntry,
    StaticSchedule,
    build_static_schedule,
)
from .resources import (
    DEFAULT_UTILIZATION_TARGET,
    KernelResources,
    ResourceAnalysis,
    analyze_resources,
)
from .validate import validate_application, validate_physical

__all__ = [
    "Misalignment",
    "check_alignment",
    "find_misalignments",
    "DataflowResult",
    "KernelFlow",
    "analyze_dataflow",
    "compile_report",
    "LatencyEstimate",
    "StreamTiming",
    "estimate_latency",
    "ProcessorSchedule",
    "ScheduleEntry",
    "StaticSchedule",
    "build_static_schedule",
    "DEFAULT_UTILIZATION_TARGET",
    "KernelResources",
    "ResourceAnalysis",
    "analyze_resources",
    "validate_application",
    "validate_physical",
]
