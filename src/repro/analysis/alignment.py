"""Inset propagation and misalignment detection (Section III-C, Figure 8).

The dataflow analysis already carries each stream's inset from its
originating application input.  This module checks every multi-input data
method for consistency: all inputs must present the same data extent *and*
the same inset, otherwise a per-pixel operation like the subtract kernel
would be comparing different pixels.

For each misalignment the analysis computes the aligned target region (the
intersection of the input regions, Figure 8's "3x3 and 5x5 Outputs
Aligned") and the trim margins per input — everything the align transform
needs to insert inset kernels, and everything the pad policy needs to grow
the smaller side instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlignmentError
from ..geometry import Inset, Region
from ..graph.app import ApplicationGraph
from ..streams import StreamInfo
from .dataflow import DataflowResult

__all__ = ["Misalignment", "find_misalignments", "check_alignment"]


@dataclass(frozen=True, slots=True)
class Misalignment:
    """One multi-input method whose input regions disagree.

    ``regions`` maps each input port to the *output-aligned* region its
    data represents (stream region shifted by the port's declared offset);
    ``target`` is the intersection all inputs must be trimmed to;
    ``trims`` maps each port to its (left, top, right, bottom) margins.
    """

    kernel: str
    method: str
    regions: dict[str, Region]
    target: Region
    trims: dict[str, tuple[int, int, int, int]]

    def describe(self) -> str:
        parts = [f"{self.kernel}.{self.method}: inputs misaligned"]
        for port, region in self.regions.items():
            parts.append(f"  {port}: {region} trim {self.trims[port]}")
        parts.append(f"  aligned target: {self.target}")
        return "\n".join(parts)


def _effective_region(stream: StreamInfo, offset) -> Region:
    """The region a port's data covers in output coordinates.

    Shifting by the port offset expresses each input in the coordinates of
    the *results* the method will produce, which is where per-pixel
    consistency must hold.

    Insets are origin-relative: regions descending from *different*
    application inputs compare at their common upper-left corner, so
    mismatched source extents align by trimming the larger source to the
    overlap — the natural semantics for synchronized multi-camera inputs.
    """
    return Region(
        stream.extent,
        Inset(stream.inset.x + offset.x, stream.inset.y + offset.y),
    )


def find_misalignments(
    app: ApplicationGraph, dataflow: DataflowResult | None = None
) -> list[Misalignment]:
    """All multi-input methods whose inputs disagree in extent or inset.

    ``dataflow`` may be supplied to avoid re-running the analysis; when the
    graph is misaligned the default kernel transfer raises, so this
    function tolerates per-kernel analysis failures by comparing the
    *incoming* streams directly.
    """
    streams: dict[tuple[str, str], StreamInfo] = {}
    if dataflow is None:
        dataflow = _partial_dataflow(app)
    found: list[Misalignment] = []
    for name in app.topological_order():
        kernel = app.kernel(name)
        for method in kernel.methods.values():
            if method.is_token_method or len(method.data_inputs) < 2:
                continue
            regions: dict[str, Region] = {}
            ok = True
            for port in method.data_inputs:
                try:
                    stream = dataflow.stream_into(name, port)
                except Exception:
                    ok = False
                    break
                regions[port] = _effective_region(
                    stream, kernel.input_spec(port).offset
                )
            if not ok or not regions:
                continue
            first = next(iter(regions.values()))
            if all(r.aligned_with(first) for r in regions.values()):
                continue
            target = first
            for r in regions.values():
                target = target.intersection(r)
            trims = {
                port: r.trim_margins(target) for port, r in regions.items()
            }
            found.append(
                Misalignment(
                    kernel=name,
                    method=method.name,
                    regions=regions,
                    target=target,
                    trims=trims,
                )
            )
    return found


def check_alignment(
    app: ApplicationGraph, dataflow: DataflowResult | None = None
) -> None:
    """Raise :class:`AlignmentError` describing every misalignment found."""
    problems = find_misalignments(app, dataflow)
    if problems:
        raise AlignmentError(
            "application has misaligned multi-input kernels:\n"
            + "\n".join(p.describe() for p in problems)
        )


def _partial_dataflow(app: ApplicationGraph) -> DataflowResult:
    """Dataflow that tolerates misaligned downstream kernels.

    Alignment checking must run *before* the graph is fully analyzable (a
    misaligned subtract makes the default transfer raise), so we analyze a
    copy in which analysis failures simply leave downstream streams
    unresolved; the caller only queries streams flowing *into* the kernels
    it inspects.
    """
    from .dataflow import KernelFlow

    order = app.topological_order()
    streams: dict[tuple[str, str], StreamInfo] = {}
    flows: dict[str, KernelFlow] = {}
    for name in order:
        kernel = app.kernel(name)
        resolved: dict[str, StreamInfo] = {}
        for port in kernel.inputs:
            edge = app.edge_into(name, port)
            if edge is not None and (edge.src, edge.src_port) in streams:
                resolved[port] = streams[(edge.src, edge.src_port)]
        try:
            result = kernel.transfer(resolved)
        except Exception:
            continue  # downstream of the misalignment; streams stay unset
        for port, stream in result.outputs.items():
            streams[(name, port)] = stream
        flows[name] = KernelFlow(
            kernel=name,
            inputs=resolved,
            outputs=dict(result.outputs),
            firings_per_second=dict(result.firings_per_second),
        )
    return DataflowResult(app=app, flows=flows)
