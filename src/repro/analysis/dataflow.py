"""Iteration size and rate analysis (Section III-A).

Propagates each application input's size and rate through the graph via a
worklist over the kernels' transfer functions, producing for every kernel
its firing rates (iteration counts times frame rate) and for every channel
the :class:`~repro.streams.StreamInfo` it carries — extent, inset, chunking,
rate, and token rates.

The worklist handles feedback (Section III-D): kernels flagged
``breaks_cycle`` are evaluated with whatever inputs have resolved (their
transfer falls back to declared loop parameters on the first pass) and the
analysis iterates until every stream is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import AnalysisError
from ..graph.app import ApplicationGraph
from ..graph.edges import StreamEdge
from ..graph.kernel import TransferResult
from ..streams import StreamInfo

__all__ = ["KernelFlow", "DataflowResult", "analyze_dataflow"]


@dataclass(frozen=True, slots=True)
class KernelFlow:
    """Resolved dataflow facts for one kernel."""

    kernel: str
    inputs: Mapping[str, StreamInfo]
    outputs: Mapping[str, StreamInfo]
    firings_per_second: Mapping[str, float]

    @property
    def total_firings_per_second(self) -> float:
        return sum(self.firings_per_second.values())


@dataclass(frozen=True, slots=True)
class DataflowResult:
    """Dataflow analysis over a whole application graph."""

    app: ApplicationGraph
    flows: Mapping[str, KernelFlow]

    def flow(self, kernel: str) -> KernelFlow:
        try:
            return self.flows[kernel]
        except KeyError:
            raise AnalysisError(f"no dataflow result for kernel {kernel!r}") from None

    def stream_on(self, edge: StreamEdge) -> StreamInfo:
        """The stream carried by a channel (as produced by its source)."""
        flow = self.flow(edge.src)
        try:
            return flow.outputs[edge.src_port]
        except KeyError:
            raise AnalysisError(
                f"kernel {edge.src!r} produced no stream on {edge.src_port!r}"
            ) from None

    def stream_into(self, kernel: str, port: str) -> StreamInfo:
        """The stream arriving at an input port."""
        edge = self.app.edge_into(kernel, port)
        if edge is None:
            raise AnalysisError(f"input {kernel}.{port} is unconnected")
        return self.stream_on(edge)

    def describe(self) -> str:
        lines = [f"dataflow for {self.app.name!r}:"]
        for name in self.app.topological_order():
            flow = self.flows.get(name)
            if flow is None:
                continue
            rate = flow.total_firings_per_second
            lines.append(f"  {name}: {rate:,.0f} firings/s")
            for port, s in flow.outputs.items():
                lines.append(f"    {port}: {s.describe()}")
        return "\n".join(lines)


def _gather_inputs(
    app: ApplicationGraph,
    name: str,
    streams: dict[tuple[str, str], StreamInfo],
) -> tuple[dict[str, StreamInfo], bool]:
    """(resolved input streams, all-resolved?) for one kernel."""
    kernel = app.kernel(name)
    resolved: dict[str, StreamInfo] = {}
    complete = True
    for port in kernel.inputs:
        edge = app.edge_into(name, port)
        if edge is None:
            raise AnalysisError(f"input {name}.{port} is unconnected")
        stream = streams.get((edge.src, edge.src_port))
        if stream is None:
            complete = False
        else:
            resolved[port] = stream
    return resolved, complete


def analyze_dataflow(app: ApplicationGraph) -> DataflowResult:
    """Run the iteration size/rate analysis over ``app``.

    Raises :class:`AnalysisError` if any kernel cannot be resolved (e.g. a
    feedback loop without an :class:`~repro.kernels.InitialValueKernel`) or
    if the worklist fails to converge.
    """
    order = app.topological_order()  # raises on unbroken cycles
    streams: dict[tuple[str, str], StreamInfo] = {}
    results: dict[str, TransferResult] = {}
    inputs_seen: dict[str, dict[str, StreamInfo]] = {}

    worklist = list(order)
    max_steps = 4 * max(len(order), 1) + 8
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps * max(len(order), 1):
            raise AnalysisError(
                f"dataflow analysis did not converge on {app.name!r}; "
                "check feedback loop declarations"
            )
        name = worklist.pop(0)
        kernel = app.kernel(name)
        resolved, complete = _gather_inputs(app, name, streams)
        if not complete and not getattr(kernel, "breaks_cycle", False):
            # Will be revisited once upstream kernels resolve; topological
            # seeding guarantees progress for acyclic graphs.
            continue
        result = kernel.transfer(resolved)
        inputs_seen[name] = resolved
        changed = name not in results or any(
            streams.get((name, port)) != stream
            for port, stream in result.outputs.items()
        )
        results[name] = result
        for port, stream in result.outputs.items():
            streams[(name, port)] = stream
        if changed:
            for succ in app.successors(name):
                if succ not in worklist:
                    worklist.append(succ)

    missing = [n for n in order if n not in results]
    if missing:
        raise AnalysisError(
            f"dataflow could not resolve kernels {missing}; upstream inputs "
            "never produced streams"
        )

    flows = {
        name: KernelFlow(
            kernel=name,
            inputs=inputs_seen[name],
            outputs=dict(results[name].outputs),
            firings_per_second=dict(results[name].firings_per_second),
        )
        for name in order
    }
    return DataflowResult(app=app, flows=flows)
