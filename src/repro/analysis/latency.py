"""First-output (pipeline fill) latency analysis.

The paper's simulator ignores communication delay because, for a
throughput-constrained application, it "will only increase the latency for
the first output, but will not impact the throughput" (Section IV-D).
This module quantifies that first-output latency from the *data
availability* side: how long after the first input element arrives can
each application output produce its first chunk, given only the windowing
structure (buffers must fill ``h-1`` rows, insets skip trimmed leading
elements, token-driven outputs wait for the frame to end).

The estimate is a lower bound: it accounts for when data *can* flow, not
for computation or scheduling time, which add a small processing tail on
top.  The test suite checks simulated first-output times land at or above
the estimate and within a few chunk periods of it for unloaded pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import AnalysisError
from ..graph.app import ApplicationGraph
from ..kernels.buffer import BufferKernel
from ..kernels.inset import InsetKernel, PadKernel
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..kernels.splitjoin import (
    ColumnSplit,
    CountedJoin,
    ReplicateKernel,
    RoundRobinSplit,
)
from .dataflow import DataflowResult, analyze_dataflow

__all__ = ["StreamTiming", "LatencyEstimate", "estimate_latency"]


@dataclass(frozen=True, slots=True)
class StreamTiming:
    """Arrival model for a stream: first chunk time and mean spacing."""

    first_s: float
    spacing_s: float


@dataclass(frozen=True, slots=True)
class LatencyEstimate:
    """Fill-latency lower bounds for every application output."""

    app: ApplicationGraph
    outputs: Mapping[str, float]
    streams: Mapping[tuple[str, str], StreamTiming]

    def output_latency(self, name: str) -> float:
        try:
            return self.outputs[name]
        except KeyError:
            raise AnalysisError(f"no application output {name!r}") from None

    def describe(self) -> str:
        lines = ["first-output latency estimates:"]
        for name, t in self.outputs.items():
            lines.append(f"  {name}: {t * 1e3:.3f} ms after start")
        return "\n".join(lines)


def _spacing(dataflow: DataflowResult, kernel: str, port: str,
             in_spacing: float, in_chunks: int) -> float:
    """Mean chunk spacing of an output, from frame-rate conservation."""
    out_stream = dataflow.flow(kernel).outputs[port]
    total_in_time = in_spacing * in_chunks
    return total_in_time / max(out_stream.chunks_per_frame, 1)


def estimate_latency(
    app: ApplicationGraph, dataflow: DataflowResult | None = None
) -> LatencyEstimate:
    """Estimate the first-output time of every application output."""
    if dataflow is None:
        dataflow = analyze_dataflow(app)
    timing: dict[tuple[str, str], StreamTiming] = {}

    for name in app.topological_order():
        kernel = app.kernel(name)
        flow = dataflow.flow(name)

        if isinstance(kernel, ApplicationInput):
            timing[(name, "out")] = StreamTiming(
                first_s=0.0, spacing_s=kernel.element_period
            )
            continue
        if isinstance(kernel, ConstantSource):
            timing[(name, "out")] = StreamTiming(
                first_s=0.0, spacing_s=1.0 / kernel.rate_hz
            )
            continue

        inputs: dict[str, StreamTiming] = {}
        for port in kernel.inputs:
            edge = app.edge_into(name, port)
            assert edge is not None
            inputs[port] = timing[(edge.src, edge.src_port)]

        if isinstance(kernel, ApplicationOutput):
            continue  # terminal; latency read off its input below

        for port in kernel.outputs:
            out_stream = flow.outputs.get(port)
            if out_stream is None:
                continue
            timing[(name, port)] = _output_timing(
                kernel, port, inputs, flow, dataflow
            )

    outputs: dict[str, float] = {}
    for sink in app.application_outputs():
        edge = app.edge_into(sink.name, "in")
        assert edge is not None
        outputs[sink.name] = timing[(edge.src, edge.src_port)].first_s
    return LatencyEstimate(app=app, outputs=outputs, streams=timing)


def _output_timing(kernel, port, inputs, flow, dataflow) -> StreamTiming:
    out_stream = flow.outputs[port]

    def scaled_spacing(t_in: StreamTiming, in_stream) -> float:
        frame_time = t_in.spacing_s * in_stream.chunks_per_frame
        return frame_time / max(out_stream.chunks_per_frame, 1)

    def head_offset_timing(t_in: StreamTiming, in_stream, n0: int) -> StreamTiming:
        """The fill is a head offset: the remaining input chunks of the
        frame pace the outputs, so the last output still lands at the end
        of the input frame (first + (k-1)*spacing ~= frame end)."""
        remaining = max(in_stream.chunks_per_frame - n0, 1)
        spacing = (
            t_in.spacing_s * remaining / max(out_stream.chunks_per_frame, 1)
        )
        return StreamTiming(
            first_s=t_in.first_s + n0 * t_in.spacing_s, spacing_s=spacing
        )

    if isinstance(kernel, BufferKernel):
        # First window completes when its bottom-right element arrives:
        # h-1 full rows plus w elements into the next (0-based index).
        n0 = (kernel.window_h - 1) * kernel.region_w + kernel.window_w - 1
        return head_offset_timing(inputs["in"], flow.inputs["in"], n0)
    if isinstance(kernel, InsetKernel):
        left, top, _, _ = kernel.trim
        n0 = top * kernel.region_w + left
        return head_offset_timing(inputs["in"], flow.inputs["in"], n0)
    if isinstance(kernel, PadKernel):
        t_in = inputs["in"]
        in_stream = flow.inputs["in"]
        return StreamTiming(
            first_s=t_in.first_s,  # the top border emits on first data
            spacing_s=scaled_spacing(t_in, in_stream),
        )
    if isinstance(kernel, (RoundRobinSplit, ColumnSplit, ReplicateKernel)):
        t_in = inputs["in"]
        in_stream = flow.inputs["in"]
        return StreamTiming(
            first_s=t_in.first_s,
            spacing_s=scaled_spacing(t_in, in_stream),
        )
    if isinstance(kernel, CountedJoin):
        t0 = inputs["in_0"]
        in_stream = flow.inputs["in_0"]
        return StreamTiming(
            first_s=t0.first_s,
            spacing_s=scaled_spacing(t0, in_stream),
        )

    # Token-driven outputs (histogram/merge dumps) wait for end of frame
    # on the triggering input.
    method = next(
        (m for m in kernel.methods.values()
         if m.is_token_method and port in m.outputs),
        None,
    )
    if method is not None and kernel.data_method_for_input(port) is None:
        owner_is_data = any(
            port in m.outputs
            for m in kernel.methods.values()
            if not m.is_token_method and not m.is_source
        )
        if not owner_is_data:
            iname = method.token.input_name  # type: ignore[union-attr]
            t_in = inputs[iname]
            in_stream = flow.inputs[iname]
            # The end-of-frame token follows the frame's last chunk.
            last_chunk = (
                t_in.first_s
                + (in_stream.chunks_per_frame - 1) * t_in.spacing_s
            )
            frame_time = t_in.spacing_s * in_stream.chunks_per_frame
            return StreamTiming(first_s=last_chunk, spacing_s=frame_time)

    # Default data method: first output when every trigger input has its
    # first chunk; spacing from the slowest input.
    data_method = None
    for m in kernel.methods.values():
        if not m.is_token_method and not m.is_source and port in m.outputs:
            data_method = m
            break
    if data_method is None or not data_method.data_inputs:
        raise AnalysisError(
            f"{kernel.name}: cannot derive timing for output {port!r}"
        )
    first = max(inputs[p].first_s for p in data_method.data_inputs)
    p0 = data_method.data_inputs[0]
    return StreamTiming(
        first_s=first,
        spacing_s=_spacing_for(inputs[p0], flow.inputs[p0], out_stream),
    )


def _spacing_for(t_in: StreamTiming, in_stream, out_stream) -> float:
    frame_time = t_in.spacing_s * in_stream.chunks_per_frame
    return frame_time / max(out_stream.chunks_per_frame, 1)
