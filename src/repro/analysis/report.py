"""Consolidated textual reports for compiled applications.

One call renders everything the paper's figures annotate: the graph with
port parameterizations (Figure 2 style), per-channel streams from the
dataflow analysis, per-kernel resource requirements and degrees (Section
IV), the parallelization actions (Figure 4), and the kernel-to-processor
mapping (Figure 12).  Used by the CLI's ``compile`` command and handy in
notebooks/debug sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transform.compile import CompiledApp

__all__ = ["compile_report"]


def compile_report(compiled: "CompiledApp", *, streams: bool = True) -> str:
    """A multi-section report of everything the compiler decided."""
    sections = [
        "=" * 72,
        f"COMPILE REPORT — {compiled.source.name}",
        "=" * 72,
        "",
        "## Summary",
        compiled.describe(),
        "",
        "## Transformed graph",
        compiled.graph.describe(),
    ]
    if streams:
        sections += ["", "## Streams (dataflow analysis)",
                     compiled.dataflow.describe()]
    sections += [
        "",
        "## Resources and parallelism degrees",
        compiled.resources.describe(),
        "",
        "## Parallelization",
        compiled.parallelization.describe(),
        "",
        "## Kernel-to-processor mapping",
        compiled.mapping.describe(),
    ]
    return "\n".join(sections)
