"""Per-kernel resource requirements and parallelism degrees (Section IV).

To a first order — exactly the paper's formulation — the degree of
parallelism for a kernel is its required execution rate (from the dataflow
analysis) times the resources consumed per iteration, divided by the
resources one processing element provides.  Compute and memory are assessed
separately: compute binds the filter kernels, memory binds the buffers
(whose row storage may exceed one element's local store, Section IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..errors import ParallelizationError
from ..graph.app import ApplicationGraph
from ..kernels.buffer import BufferKernel
from ..machine.processor import ProcessorSpec
from .dataflow import DataflowResult, analyze_dataflow

__all__ = ["KernelResources", "ResourceAnalysis", "analyze_resources"]

#: Target utilization ceiling per processing element.  Sizing parallelism
#: to exactly 100% leaves no slack for scheduling jitter; the compiler
#: plans to this fraction of each element's capacity.
DEFAULT_UTILIZATION_TARGET = 0.9


@dataclass(frozen=True, slots=True)
class KernelResources:
    """Static resource requirements of one kernel at its required rate."""

    kernel: str
    #: Compute cycles per second across all methods.
    compute_cps: float
    #: Elements read / written per second (channel traffic).
    read_eps: float
    write_eps: float
    #: Total cycles per second including port access costs.
    total_cps: float
    #: Private state plus implicit port double buffers, in words.
    memory_words: int
    #: Fraction of one PE's cycles this kernel needs.
    cpu_utilization: float
    #: Fraction of one PE's memory this kernel needs.
    mem_utilization: float
    #: Parallel instances needed for compute; for memory (buffers only).
    degree_cpu: int
    degree_mem: int

    @property
    def degree(self) -> int:
        return max(self.degree_cpu, self.degree_mem)


@dataclass(frozen=True, slots=True)
class ResourceAnalysis:
    """Resource requirements for every kernel in an application."""

    app: ApplicationGraph
    processor: ProcessorSpec
    utilization_target: float
    kernels: Mapping[str, KernelResources]

    def resources(self, kernel: str) -> KernelResources:
        try:
            return self.kernels[kernel]
        except KeyError:
            raise ParallelizationError(
                f"no resource analysis for kernel {kernel!r}"
            ) from None

    def total_cpu_utilization(self) -> float:
        return sum(r.cpu_utilization for r in self.kernels.values())

    def describe(self) -> str:
        lines = [
            f"resources for {self.app.name!r} on {self.processor.clock_hz/1e6:.0f}"
            f" MHz / {self.processor.memory_words} words per PE "
            f"(target {self.utilization_target:.0%}):"
        ]
        for name, r in self.kernels.items():
            lines.append(
                f"  {name}: cpu {r.cpu_utilization:6.1%}  mem {r.mem_utilization:6.1%}"
                f"  -> degree {r.degree} (cpu {r.degree_cpu}, mem {r.degree_mem})"
            )
        return "\n".join(lines)


def analyze_resources(
    app: ApplicationGraph,
    processor: ProcessorSpec,
    dataflow: DataflowResult | None = None,
    *,
    utilization_target: float = DEFAULT_UTILIZATION_TARGET,
) -> ResourceAnalysis:
    """Compute per-kernel requirements and parallelism degrees.

    ``utilization_target`` caps planned per-PE load; the paper sizes to
    the real-time requirement, and headroom below 1.0 absorbs the
    scheduling quantization the simulator models.
    """
    if not 0 < utilization_target <= 1:
        raise ParallelizationError(
            f"utilization target must be in (0, 1], got {utilization_target}"
        )
    if dataflow is None:
        dataflow = analyze_dataflow(app)
    out: dict[str, KernelResources] = {}
    for name in app.topological_order():
        kernel = app.kernel(name)
        flow = dataflow.flow(name)

        compute_cps = sum(
            flow.firings_per_second.get(m.name, 0.0) * m.cost.cycles
            for m in kernel.methods.values()
        )
        if kernel.charges_element_io:
            read_eps = 0.0
            for port, s in flow.inputs.items():
                spec = kernel.input_spec(port)
                if (
                    kernel.sequential_input_reuse
                    and s.chunk == spec.window
                ):
                    # Figure 9: only fresh columns are new reads.
                    per_chunk = spec.step.x * spec.window.h
                else:
                    per_chunk = s.chunk.elements
                read_eps += per_chunk * s.chunks_per_frame * s.rate_hz
            write_eps = sum(
                s.elements_per_second for s in flow.outputs.values()
            )
        else:
            # Routers charge one access per chunk, matching the runtime.
            read_eps = sum(
                s.chunks_per_frame * s.rate_hz for s in flow.inputs.values()
            )
            write_eps = sum(
                s.chunks_per_frame * s.rate_hz for s in flow.outputs.values()
            )
        io_cps = (
            read_eps * processor.read_cycles_per_element
            + write_eps * processor.write_cycles_per_element
        )
        total_cps = compute_cps + io_cps

        memory_words = kernel.state_words() + kernel.port_buffer_words()
        cpu_util = total_cps / processor.clock_hz
        mem_util = memory_words / processor.memory_words

        degree_cpu = max(1, math.ceil(cpu_util / utilization_target))
        if isinstance(kernel, BufferKernel):
            degree_mem = max(1, math.ceil(mem_util / utilization_target))
        else:
            degree_mem = 1
            if mem_util > 1.0:
                raise ParallelizationError(
                    f"kernel {name!r} needs {memory_words} words but a PE "
                    f"provides {processor.memory_words}, and its state "
                    "cannot be split (only buffers split column-wise)"
                )

        out[name] = KernelResources(
            kernel=name,
            compute_cps=compute_cps,
            read_eps=read_eps,
            write_eps=write_eps,
            total_cps=total_cps,
            memory_words=memory_words,
            cpu_utilization=cpu_util,
            mem_utilization=mem_util,
            degree_cpu=degree_cpu,
            degree_mem=degree_mem,
        )
    return ResourceAnalysis(
        app=app,
        processor=processor,
        utilization_target=utilization_target,
        kernels=out,
    )
