"""Static schedule construction and admission testing.

The simulator demonstrates that a compiled application meets its rate;
this module *proves* the first-order version of it statically, the way an
SDF compiler would (Lee & Messerschmitt's repetition vectors are exactly
our firings-per-frame counts):

* every kernel's steady-state firing count per frame comes from the
  dataflow analysis;
* a single-appearance schedule per processor lists its kernels in
  dataflow order with those repetition counts;
* the processor is **admissible** when the cycles its schedule needs per
  frame (compute plus port I/O) fit the cycle budget of one frame period.

Admissibility is necessary-and-almost-sufficient in this model: the
simulator adds only scheduling quantization on top, which the compiler's
utilization-target headroom absorbs.  The test suite checks the verdicts
agree with simulation across the benchmark suite, including on
deliberately overloaded mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..errors import AnalysisError
from ..kernels.sources import ApplicationInput

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transform.compile import CompiledApp

__all__ = ["ScheduleEntry", "ProcessorSchedule", "StaticSchedule",
           "build_static_schedule"]


@dataclass(frozen=True, slots=True)
class ScheduleEntry:
    """One kernel's slot in a processor's periodic schedule."""

    kernel: str
    #: Steady-state firings per frame (the SDF repetition count); may be
    #: fractional for kernels driven by slower side inputs (coefficient
    #: reloads average to less than one firing per frame).
    repetitions: float
    #: Cycles this kernel needs per frame, compute plus port I/O.
    cycles_per_frame: float


@dataclass(frozen=True, slots=True)
class ProcessorSchedule:
    """Periodic single-appearance schedule for one processing element."""

    processor: int
    entries: tuple[ScheduleEntry, ...]
    budget_cycles: float

    @property
    def cycles_per_frame(self) -> float:
        return sum(e.cycles_per_frame for e in self.entries)

    @property
    def utilization(self) -> float:
        return self.cycles_per_frame / self.budget_cycles

    @property
    def admissible(self) -> bool:
        return self.cycles_per_frame <= self.budget_cycles

    def as_dict(self) -> dict:
        """Machine-readable form (the CLI's ``--json`` output)."""
        return {
            "processor": self.processor,
            "admissible": self.admissible,
            "utilization": self.utilization,
            "cycles_per_frame": self.cycles_per_frame,
            "budget_cycles": self.budget_cycles,
            "entries": [
                {
                    "kernel": e.kernel,
                    "repetitions": e.repetitions,
                    "cycles_per_frame": e.cycles_per_frame,
                }
                for e in self.entries
            ],
        }

    def describe(self) -> str:
        seq = "; ".join(
            f"{e.repetitions:g}({e.kernel})" for e in self.entries
        )
        status = "ok" if self.admissible else "OVERLOAD"
        return (
            f"PE{self.processor}: [{seq}] — "
            f"{self.cycles_per_frame:,.0f}/{self.budget_cycles:,.0f} "
            f"cycles/frame ({self.utilization:.0%}, {status})"
        )


@dataclass(frozen=True, slots=True)
class StaticSchedule:
    """The whole chip's periodic schedule and its admission verdict."""

    frame_rate_hz: float
    processors: Mapping[int, ProcessorSchedule]

    @property
    def admissible(self) -> bool:
        return all(p.admissible for p in self.processors.values())

    def bottleneck(self) -> ProcessorSchedule | None:
        """The most loaded processor, or None for an empty schedule."""
        if not self.processors:
            return None
        return max(self.processors.values(), key=lambda p: p.utilization)

    def as_dict(self) -> dict:
        """Machine-readable form (the CLI's ``--json`` output)."""
        return {
            "frame_rate_hz": self.frame_rate_hz,
            "admissible": self.admissible,
            "processors": [
                self.processors[p].as_dict() for p in sorted(self.processors)
            ],
        }

    def describe(self) -> str:
        lines = [
            f"static schedule @ {self.frame_rate_hz:g} frames/s — "
            f"{'ADMISSIBLE' if self.admissible else 'NOT admissible'}"
        ]
        for proc in sorted(self.processors):
            lines.append("  " + self.processors[proc].describe())
        return "\n".join(lines)


def build_static_schedule(compiled: "CompiledApp") -> StaticSchedule:
    """Build the periodic schedule for a compiled application.

    The frame period is set by the fastest application input (slower side
    inputs contribute fractional repetitions).  Per-kernel cycles come
    from the resource analysis, so they include port access costs with
    the same router/reuse refinements the simulator charges.
    """
    inputs = [
        k for k in compiled.graph.iter_kernels()
        if isinstance(k, ApplicationInput)
    ]
    if not inputs:
        raise AnalysisError("application has no inputs to set a frame rate")
    frame_rate = max(k.rate_hz for k in inputs)
    period = 1.0 / frame_rate
    budget = compiled.processor.clock_hz * period

    order = {name: i for i, name in
             enumerate(compiled.graph.topological_order())}
    per_proc: dict[int, list[ScheduleEntry]] = {}
    for name, proc in compiled.mapping.assignment.items():
        flow = compiled.dataflow.flow(name)
        res = compiled.resources.resources(name)
        reps = flow.total_firings_per_second / frame_rate
        cycles = res.total_cps * period
        per_proc.setdefault(proc, []).append(
            ScheduleEntry(kernel=name, repetitions=reps,
                          cycles_per_frame=cycles)
        )
    processors = {
        proc: ProcessorSchedule(
            processor=proc,
            entries=tuple(sorted(entries, key=lambda e: order[e.kernel])),
            budget_cycles=budget,
        )
        for proc, entries in per_proc.items()
    }
    return StaticSchedule(frame_rate_hz=frame_rate, processors=processors)
