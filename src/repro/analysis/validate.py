"""Static validation of application graphs.

Two layers of checking:

* :func:`validate_application` — programmer-facing checks on the logical
  graph (connectivity, statically bounded token rates, declared input
  rates), run before any compilation pass.
* :func:`validate_physical` — compiler-facing invariants on a transformed
  graph: after buffering, every channel must carry chunks exactly matching
  its consumer's window, because the runtime consumes one chunk per firing
  per input (all rate conversion lives inside structural kernels).
"""

from __future__ import annotations

from ..errors import GraphError, RateError
from ..graph.app import ApplicationGraph
from .dataflow import DataflowResult, analyze_dataflow

__all__ = ["validate_application", "validate_physical"]


def validate_application(app: ApplicationGraph) -> None:
    """Programmer-facing sanity checks; raises on the first problem."""
    if not app.kernels:
        raise GraphError(f"application {app.name!r} has no kernels")
    app.check_connected()
    if not app.application_inputs():
        raise GraphError(
            f"application {app.name!r} has no application inputs; real-time "
            "constraints come from declared input rates"
        )
    if not app.application_outputs():
        raise GraphError(
            f"application {app.name!r} has no application outputs; results "
            "would be silently discarded"
        )
    app.topological_order()  # raises on unbroken cycles
    _check_dependency_edges(app)


def _check_dependency_edges(app: ApplicationGraph) -> None:
    for dep in app.dependencies:
        if dep.src == dep.dst:
            raise GraphError(f"self-dependency on kernel {dep.src!r}")


def validate_physical(
    app: ApplicationGraph, dataflow: DataflowResult | None = None
) -> None:
    """Check the unit-rate channel invariant of a compiled graph.

    Every stream edge must deliver chunks whose extent equals the consuming
    input's window; violations mean a buffer insertion was missed.
    """
    if dataflow is None:
        dataflow = analyze_dataflow(app)
    for edge in app.edges:
        stream = dataflow.stream_on(edge)
        window = app.kernel(edge.dst).input_spec(edge.dst_port).window
        if stream.chunk != window:
            raise RateError(
                f"channel {edge} delivers {stream.chunk} chunks but the "
                f"input window is {window}; a buffer kernel is required"
            )
