"""Benchmark applications (the Figure 13 suite)."""

from .bayer_app import bayer_mosaic_pattern, build_bayer_app
from .buffer_test import build_buffer_test_app
from .filter_bank import build_filter_bank_app
from .histogram_app import build_histogram_app
from .image_pipeline import build_image_pipeline, sharpen_coefficients
from .multi_conv import build_multi_conv_app
from .suite import BENCHMARK_PROCESSOR, Benchmark, benchmark, benchmark_suite

__all__ = [
    "bayer_mosaic_pattern",
    "build_bayer_app",
    "build_buffer_test_app",
    "build_filter_bank_app",
    "build_histogram_app",
    "build_image_pipeline",
    "sharpen_coefficients",
    "build_multi_conv_app",
    "BENCHMARK_PROCESSOR",
    "Benchmark",
    "benchmark",
    "benchmark_suite",
]
