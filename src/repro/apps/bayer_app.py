"""Bayer demosaicing application — benchmark 1/1F of Figure 13.

A Bayer-mosaic sensor stream is buffered into 2x2 quads, demosaiced into
R/G/B planes, and folded to luminance for output.  At the baseline rate the
pipeline fits a handful of processors; at the faster rate ("1F") the
demosaic kernel must replicate.
"""

from __future__ import annotations

import numpy as np

from ..graph.app import ApplicationGraph
from ..kernels.bayer import BayerDemosaicKernel, LuminanceKernel

__all__ = ["build_bayer_app", "bayer_mosaic_pattern"]


class BayerMosaicPattern:
    """A deterministic RGGB mosaic test frame generator.

    Each colour site gets a distinct ramp so demosaic output is easy to
    verify: R sites carry 100+i, G sites 50+i, B sites 10+i.

    A class rather than a closure so graphs carrying it stay picklable —
    compiled Bayer apps must cross process boundaries for the
    ``repro.explore`` pool workers.
    """

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height

    def __call__(self, frame: int) -> np.ndarray:
        width, height = self.width, self.height
        arr = np.empty((height, width), dtype=np.float64)
        idx = np.arange(width * height, dtype=np.float64).reshape(height, width)
        arr[0::2, 0::2] = 100.0 + idx[0::2, 0::2] % 17  # R
        arr[0::2, 1::2] = 50.0 + idx[0::2, 1::2] % 13   # G on R rows
        arr[1::2, 0::2] = 50.0 + idx[1::2, 0::2] % 11   # G on B rows
        arr[1::2, 1::2] = 10.0 + idx[1::2, 1::2] % 7    # B
        return arr + frame


def bayer_mosaic_pattern(width: int, height: int) -> BayerMosaicPattern:
    """Build the RGGB test pattern for a ``width x height`` sensor."""
    return BayerMosaicPattern(width, height)


def build_bayer_app(
    width: int = 32,
    height: int = 16,
    rate_hz: float = 200.0,
    *,
    name: str | None = None,
) -> ApplicationGraph:
    """Build the Bayer demosaicing application.

    ``width`` and ``height`` must be even (RGGB quads tile the frame).
    """
    if width % 2 or height % 2:
        raise ValueError("Bayer frames must have even dimensions")
    app = ApplicationGraph(name or f"bayer_{width}x{height}@{rate_hz:g}")
    app.add_input("Sensor", width, height, rate_hz)
    app.kernels["Sensor"]._pattern = bayer_mosaic_pattern(width, height)

    app.add_kernel(BayerDemosaicKernel("Demosaic"))
    app.add_kernel(LuminanceKernel("Luma"))
    app.add_output("Video")

    app.connect("Sensor", "out", "Demosaic", "in")
    app.connect("Demosaic", "r", "Luma", "r")
    app.connect("Demosaic", "g", "Luma", "g")
    app.connect("Demosaic", "b", "Luma", "b")
    app.connect("Luma", "out", "Video", "in")
    return app
