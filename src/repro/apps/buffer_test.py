"""Parallel buffer test — benchmark 3 of Figure 13.

A deliberately storage-heavy pipeline: a wide frame through a tall
window so the line buffer's row storage dwarfs one processing element's
local memory, forcing a column-wise split (Section IV-C, Figure 10).
The computation itself — one big convolution — is cheap relative to the
buffering, which is what makes this a *buffer* test.
"""

from __future__ import annotations

import numpy as np

from ..graph.app import ApplicationGraph
from ..kernels.filters import ConvolutionKernel

__all__ = ["build_buffer_test_app"]


def build_buffer_test_app(
    width: int = 96,
    height: int = 24,
    rate_hz: float = 50.0,
    *,
    window: int = 7,
    name: str | None = None,
) -> ApplicationGraph:
    """Build the parallel-buffer stress application.

    ``window`` rows of a ``width``-wide frame must be resident (doubled)
    for the convolution to slide; at the defaults that is ``96 x 14``
    words, several processing elements' worth on a small-memory target.
    """
    app = ApplicationGraph(name or f"buffer_test_{width}x{height}@{rate_hz:g}")
    app.add_input("Input", width, height, rate_hz)
    coeff = np.full((window, window), 1.0 / (window * window))
    app.add_kernel(
        ConvolutionKernel(
            "BigConv", window, window, with_coeff_input=False, coeff=coeff
        )
    )
    app.add_output("Out")
    app.connect("Input", "out", "BigConv", "in")
    app.connect("BigConv", "out", "Out", "in")
    return app
