"""A parametric filter-bank stress application.

Figure 13's caption says greedy multiplexing was evaluated on programs
"ranging in size from fewer than 10 kernels to more than 50"; this builder
supplies the large end: ``branches`` parallel convolution+scale chains
over one input, reduced pairwise by adders to a single stream.  With eight
branches the logical graph has ~26 kernels and a compiled graph (buffers,
insets, split/join) comfortably exceeds 50.

All branch filters share one halo (3x3), so the pairwise adders align
without inset kernels; a single 5x5 "reference" branch at the end of the
reduction deliberately reintroduces the Figure 8 misalignment so big
graphs exercise the align pass too.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph.app import ApplicationGraph
from ..kernels.arithmetic import AddKernel, SubtractKernel
from ..kernels.filters import ConvolutionKernel
from ..kernels.sources import ApplicationOutput

__all__ = ["build_filter_bank_app"]


def build_filter_bank_app(
    width: int = 24,
    height: int = 16,
    rate_hz: float = 100.0,
    *,
    branches: int = 8,
    name: str | None = None,
) -> ApplicationGraph:
    """Build a ``branches``-way filter bank with a pairwise reduction."""
    if branches < 2 or branches & (branches - 1):
        raise GraphError("branches must be a power of two >= 2")
    app = ApplicationGraph(
        name or f"filter_bank{branches}_{width}x{height}@{rate_hz:g}"
    )
    app.add_input("Input", width, height, rate_hz)

    rng = np.random.default_rng(11)
    level: list[tuple[str, str]] = []
    for i in range(branches):
        coeff = rng.uniform(-1.0, 1.0, (3, 3))
        conv = ConvolutionKernel(
            f"Conv_{i}", 3, 3, with_coeff_input=False, coeff=coeff
        )
        app.add_kernel(conv)
        app.connect("Input", "out", conv.name, "in")
        level.append((conv.name, "out"))

    # Pairwise adder reduction tree.
    depth = 0
    while len(level) > 1:
        next_level = []
        for j in range(0, len(level), 2):
            adder = AddKernel(f"Add_{depth}_{j // 2}")
            app.add_kernel(adder)
            app.connect(level[j][0], level[j][1], adder.name, "in0")
            app.connect(level[j + 1][0], level[j + 1][1], adder.name, "in1")
            next_level.append((adder.name, "out"))
        level = next_level
        depth += 1

    # The misaligning reference branch (5x5 halo vs the bank's 3x3).
    ref = ConvolutionKernel(
        "Reference5x5", 5, 5, with_coeff_input=False,
        coeff=np.full((5, 5), 1.0 / 25.0),
    )
    app.add_kernel(ref)
    app.connect("Input", "out", ref.name, "in")
    app.add_kernel(SubtractKernel("Residual"))
    app.connect(level[0][0], level[0][1], "Residual", "in0")
    app.connect(ref.name, "out", "Residual", "in1")

    app.add_kernel(ApplicationOutput("Out", 1, 1))
    app.connect("Residual", "out", "Out", "in")
    return app
