"""Image histogram application — benchmark 2/2F of Figure 13.

The standalone histogram: a real-time image stream feeds data-parallel
histogram counters whose partials reduce through the serial merge, limited
to one instance per frame by a data-dependency edge (the Figure 1(b)
pattern without the filtering front end).
"""

from __future__ import annotations

from ..graph.app import ApplicationGraph
from ..kernels.histogram import HistogramKernel, HistogramMergeKernel, default_bin_edges
from ..kernels.sources import ApplicationOutput, ConstantSource

__all__ = ["build_histogram_app"]


def build_histogram_app(
    width: int = 32,
    height: int = 24,
    rate_hz: float = 200.0,
    *,
    bins: int = 32,
    lo: float = 0.0,
    hi: float = 1024.0,
    name: str | None = None,
) -> ApplicationGraph:
    """Build the image-histogram application."""
    app = ApplicationGraph(name or f"histogram_{width}x{height}@{rate_hz:g}")
    app.add_input("Input", width, height, rate_hz)
    app.add_kernel(HistogramKernel("Histogram", bins, lo=lo, hi=hi))
    app.add_kernel(
        ConstantSource(
            "HistBins", default_bin_edges(bins, lo, hi).reshape(1, bins), 1.0
        )
    )
    app.add_kernel(HistogramMergeKernel("Merge", bins))
    app.add_kernel(ApplicationOutput("result", bins, 1))

    app.connect("Input", "out", "Histogram", "in")
    app.connect("HistBins", "out", "Histogram", "bins")
    app.connect("Histogram", "out", "Merge", "in")
    app.connect("Merge", "out", "result", "in")
    app.add_dependency("Input", "Merge")
    return app
