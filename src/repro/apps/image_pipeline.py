"""The paper's running example application (Figures 1-4).

A stream of 2-D frames passes through a 3x3 median filter and a 5x5
convolution; the per-pixel difference of the two results feeds a histogram
whose serial merge emits one combined histogram per frame.  The histogram
is manually split into a data-parallel counting portion and a serial merge,
with a data-dependency edge from the application input limiting the merge
to one instance per frame (Figure 1(b)).

The graph built here is the *logical* application: the median and
convolution outputs are deliberately misaligned (98x98@(1,1) vs
96x96@(2,2) for a 100x100 input, Figure 8) and no buffers are present.
Alignment, buffering, and parallelization are the compiler's job.
"""

from __future__ import annotations

import numpy as np

from ..graph.app import ApplicationGraph
from ..kernels.arithmetic import SubtractKernel
from ..kernels.filters import ConvolutionKernel, MedianKernel
from ..kernels.histogram import HistogramKernel, HistogramMergeKernel, default_bin_edges
from ..kernels.sources import ConstantSource

__all__ = ["build_image_pipeline", "sharpen_coefficients"]


def sharpen_coefficients(width: int = 5, height: int = 5) -> np.ndarray:
    """A normalized centre-weighted kernel for the 5x5 convolution."""
    coeff = -np.ones((height, width), dtype=np.float64)
    coeff[height // 2, width // 2] = 2.0 * height * width
    return coeff / coeff.sum()


def build_image_pipeline(
    width: int = 24,
    height: int = 16,
    rate_hz: float = 100.0,
    *,
    bins: int = 32,
    hist_lo: float = -64.0,
    hist_hi: float = 64.0,
    coeff_rate_hz: float = 1.0,
    name: str | None = None,
) -> ApplicationGraph:
    """Build the Figure 1(b) application for a ``width x height`` input at
    ``rate_hz`` frames per second.

    The coefficient and bin-range sources ("5x5 Coeff" and "Hist Bins" of
    Figure 2) run at ``coeff_rate_hz`` — slow reload channels feeding
    *replicated* inputs.  Histogram bin ranges default to an even grid over
    ``[hist_lo, hist_hi)`` sized for the subtract output's dynamic range.
    """
    app = ApplicationGraph(name or f"image_pipeline_{width}x{height}@{rate_hz:g}")
    app.add_input("Input", width, height, rate_hz)

    app.add_kernel(MedianKernel("Median3x3", 3, 3))
    app.add_kernel(ConvolutionKernel("Conv5x5", 5, 5))
    app.add_kernel(
        ConstantSource("Coeff5x5", sharpen_coefficients(5, 5), coeff_rate_hz)
    )
    app.add_kernel(SubtractKernel("Subtract"))
    app.add_kernel(
        HistogramKernel("Histogram", bins, lo=hist_lo, hi=hist_hi)
    )
    app.add_kernel(
        ConstantSource(
            "HistBins",
            default_bin_edges(bins, hist_lo, hist_hi).reshape(1, bins),
            coeff_rate_hz,
        )
    )
    app.add_kernel(HistogramMergeKernel("Merge", bins))
    app.add_output("result")
    result = app.kernel("result")
    # The merge emits bins x 1 chunks; re-declare the sink's window.
    if result.input_spec("in").window.w != bins:
        app.remove_kernel("result")
        from ..kernels.sources import ApplicationOutput

        app.add_kernel(ApplicationOutput("result", bins, 1))

    app.connect("Input", "out", "Median3x3", "in")
    app.connect("Input", "out", "Conv5x5", "in")
    app.connect("Coeff5x5", "out", "Conv5x5", "coeff")
    app.connect("Conv5x5", "out", "Subtract", "in0")
    app.connect("Median3x3", "out", "Subtract", "in1")
    app.connect("Subtract", "out", "Histogram", "in")
    app.connect("HistBins", "out", "Histogram", "bins")
    app.connect("Histogram", "out", "Merge", "in")
    app.connect("Merge", "out", "result", "in")

    # Figure 1(b): the merge is serial — one instance per input frame.
    app.add_dependency("Input", "Merge")
    return app
