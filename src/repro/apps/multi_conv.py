"""Multiple convolutions test — benchmark 4 of Figure 13.

A filter bank: several convolutions of different sizes over one input,
their results combined pairwise.  Exercises fan-out from one input,
per-kernel buffering with different window heights, multi-way alignment
(each filter has a different halo), and task parallelism across the
branches.
"""

from __future__ import annotations

import numpy as np

from ..graph.app import ApplicationGraph
from ..kernels.arithmetic import AddKernel, SubtractKernel
from ..kernels.filters import ConvolutionKernel, GaussianKernel, SobelKernel

__all__ = ["build_multi_conv_app"]


def build_multi_conv_app(
    width: int = 32,
    height: int = 20,
    rate_hz: float = 100.0,
    *,
    name: str | None = None,
) -> ApplicationGraph:
    """Build the multi-convolution filter bank.

    Branches: 3x3 Gaussian, 3x3 Sobel, 5x5 mean.  The Gaussian and Sobel
    outputs add (same halo, aligned); the 5x5 branch subtracts from that
    sum, which needs an inset — a second instance of the Figure 8
    situation in the same graph.
    """
    app = ApplicationGraph(name or f"multi_conv_{width}x{height}@{rate_hz:g}")
    app.add_input("Input", width, height, rate_hz)
    app.add_kernel(GaussianKernel("Gauss3x3", 3, 3, sigma=1.0))
    app.add_kernel(SobelKernel("Sobel3x3"))
    app.add_kernel(
        ConvolutionKernel(
            "Mean5x5", 5, 5, with_coeff_input=False,
            coeff=np.full((5, 5), 1.0 / 25.0),
        )
    )
    app.add_kernel(AddKernel("Combine"))
    app.add_kernel(SubtractKernel("Detail"))
    app.add_output("Out")

    app.connect("Input", "out", "Gauss3x3", "in")
    app.connect("Input", "out", "Sobel3x3", "in")
    app.connect("Input", "out", "Mean5x5", "in")
    app.connect("Gauss3x3", "out", "Combine", "in0")
    app.connect("Sobel3x3", "out", "Combine", "in1")
    app.connect("Combine", "out", "Detail", "in0")
    app.connect("Mean5x5", "out", "Detail", "in1")
    app.connect("Detail", "out", "Out", "in")
    return app
