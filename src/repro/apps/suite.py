"""The Figure 13 benchmark suite.

The paper's eleven configurations over five applications, plus one
size-range extra:

* ``1`` / ``1F`` — Bayer demosaicing at baseline and faster input rates;
* ``2`` / ``2F`` — image histogram at baseline and faster input rates;
* ``3``        — parallel buffer test;
* ``4``        — multiple convolutions test;
* ``SS SF BS BF`` — the image processing example (Figure 11) with
  small/big input size and slow/fast input rates;
* ``5``        — the application of Figure 1(b) at its baseline rate;
* ``FB``       — a 16-way filter bank supplying the ">50 kernels" end of
  the paper's program-size range (not a named paper benchmark).

Rates are calibrated for the default benchmark processor (a small
embedded tile) so the suite spans lightly-loaded pipelines full of
low-utilization structural kernels — the regime where greedy multiplexing
pays (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph.app import ApplicationGraph
from ..machine.processor import ProcessorSpec
from .bayer_app import build_bayer_app
from .buffer_test import build_buffer_test_app
from .filter_bank import build_filter_bank_app
from .histogram_app import build_histogram_app
from .image_pipeline import build_image_pipeline
from .multi_conv import build_multi_conv_app

__all__ = ["Benchmark", "BENCHMARK_PROCESSOR", "benchmark_suite", "benchmark"]


#: The per-element target the Figure 13 reproduction runs on: a modest
#: embedded tile where the example apps need single-digit parallelism.
BENCHMARK_PROCESSOR = ProcessorSpec(
    clock_hz=20e6,
    memory_words=512,
    read_cycles_per_element=1.0,
    write_cycles_per_element=1.0,
)


@dataclass(frozen=True, slots=True)
class Benchmark:
    """One Figure 13 column: an application plus its simulation contract."""

    key: str
    title: str
    build: Callable[[], ApplicationGraph]
    rate_hz: float
    #: Application output to measure completion at.
    output: str
    #: Chunks completing one frame at that output.
    chunks_per_frame: int
    #: Frames to simulate (enough for a steady-state tail).
    frames: int = 4

    def application(self) -> ApplicationGraph:
        return self.build()


def _fig11_pipeline(width: int, height: int, rate: float, tag: str) -> Benchmark:
    return Benchmark(
        key=tag,
        title=f"image pipeline {width}x{height}@{rate:g}Hz",
        build=lambda: build_image_pipeline(width, height, rate),
        rate_hz=rate,
        output="result",
        chunks_per_frame=1,
    )


def benchmark_suite() -> list[Benchmark]:
    """The Figure 13 benchmarks in the paper's order, plus ``FB``."""
    return [
        Benchmark(
            key="1",
            title="Bayer demosaic (baseline)",
            build=lambda: build_bayer_app(32, 16, 200.0),
            rate_hz=200.0,
            output="Video",
            chunks_per_frame=(32 // 2) * (16 // 2),
        ),
        Benchmark(
            key="1F",
            title="Bayer demosaic (fast)",
            build=lambda: build_bayer_app(32, 16, 1200.0),
            rate_hz=1200.0,
            output="Video",
            chunks_per_frame=(32 // 2) * (16 // 2),
        ),
        Benchmark(
            key="2",
            title="image histogram (baseline)",
            build=lambda: build_histogram_app(32, 24, 200.0),
            rate_hz=200.0,
            output="result",
            chunks_per_frame=1,
        ),
        Benchmark(
            key="2F",
            title="image histogram (fast)",
            build=lambda: build_histogram_app(32, 24, 800.0),
            rate_hz=800.0,
            output="result",
            chunks_per_frame=1,
        ),
        Benchmark(
            key="3",
            title="parallel buffer test",
            build=lambda: build_buffer_test_app(96, 24, 50.0),
            rate_hz=50.0,
            output="Out",
            chunks_per_frame=(96 - 6) * (24 - 6),
        ),
        Benchmark(
            key="4",
            title="multiple convolutions test",
            build=lambda: build_multi_conv_app(32, 20, 100.0),
            rate_hz=100.0,
            output="Out",
            chunks_per_frame=(32 - 4) * (20 - 4),
        ),
        _fig11_pipeline(24, 16, 100.0, "SS"),
        _fig11_pipeline(24, 16, 1000.0, "SF"),
        _fig11_pipeline(48, 32, 100.0, "BS"),
        _fig11_pipeline(48, 32, 400.0, "BF"),
        _fig11_pipeline(24, 16, 400.0, "5"),
        Benchmark(
            key="FB",
            title="16-way filter bank (>50 compiled kernels)",
            build=lambda: build_filter_bank_app(24, 16, 100.0, branches=16),
            rate_hz=100.0,
            output="Out",
            chunks_per_frame=(24 - 4) * (16 - 4),
        ),
    ]


def benchmark(key: str) -> Benchmark:
    """Look up one benchmark by its Figure 13 key."""
    for bench in benchmark_suite():
        if bench.key == key:
            return bench
    raise KeyError(f"no benchmark {key!r} in the Figure 13 suite")
