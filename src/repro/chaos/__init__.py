"""``repro.chaos`` — infrastructure fault injection and fleet supervision.

What :mod:`repro.faults` is to the simulated machine, this package is
to the host-side fleet that runs it: a declarative, seed-deterministic
:class:`ChaosSpec` injects worker crashes, hangs, slow workers, cache
corruption, torn store writes, and connection resets into
:mod:`repro.explore` and :mod:`repro.serve` — all through optional
``chaos=None`` seams, so the zero-chaos path is byte-identical to a
build without this package.  Alongside it lives the supervision that
chaos testing flushed out and production needs regardless: worker
heartbeat watchdogs, poison-job quarantine, checksummed cache entries,
and bounded-with-jitter retry backoff.

* :mod:`~repro.chaos.model` — the validated spec (``ChaosSpecError``
  names the offending field, like ``FaultSpec``);
* :mod:`~repro.chaos.inject` — pure ``(seed, site, key)`` decisions
  plus the decision ledger that witnesses bit-reproducibility;
* :mod:`~repro.chaos.watchdog` — heartbeats, ``QuarantineLedger``,
  ``backoff_delay``;
* :mod:`~repro.chaos.suite` — the scenario matrix behind
  ``repro chaos`` (imported lazily: it drives a live service).

See ``docs/chaos.md`` for the spec format, scenario matrix, and the
invariants every scenario asserts.
"""

from .inject import ChaosInjector, unit_interval
from .model import (
    ChaosSpec,
    HttpChaos,
    StorageChaos,
    WorkerChaos,
    load_chaos_spec,
)
from .watchdog import (
    QuarantineLedger,
    backoff_delay,
    heartbeat_stale,
    start_heartbeat,
    touch_heartbeat,
)

__all__ = [
    "ChaosInjector",
    "unit_interval",
    "ChaosSpec",
    "HttpChaos",
    "StorageChaos",
    "WorkerChaos",
    "load_chaos_spec",
    "QuarantineLedger",
    "backoff_delay",
    "heartbeat_stale",
    "start_heartbeat",
    "touch_heartbeat",
]
