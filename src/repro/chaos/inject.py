"""The chaos injector: seed-deterministic decisions, one per site/key.

Every injection decision is a pure function of ``(seed, site, key)``:
the first 8 bytes of ``sha256(f"{seed}|{site}|{key}")`` mapped to
``[0, 1)`` and compared against the site's probability.  Keys are
chosen to be *stable identities* — job fingerprint and attempt number,
record fingerprint, stream position — never wall-clock or thread order,
so two runs of the same ``(spec, seed)`` make the same decisions no
matter how their workers interleave.

The injector also keeps a **decision ledger**: every probabilistic
decision taken (at a site with non-zero probability) is recorded as
``(site, key, hit)``.  :meth:`ChaosInjector.ledger_digest` hashes the
sorted, deduplicated ledger, which is the bit-reproducibility witness
the chaos suite compares across repeated runs — order-independent by
construction, so scheduling nondeterminism cannot leak into it.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from typing import Any

from .model import ChaosSpec

__all__ = ["unit_interval", "ChaosInjector"]


def unit_interval(seed: int, site: str, key: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class ChaosInjector:
    """Stateful wrapper over one :class:`ChaosSpec`.

    One injector instance is shared by every seam of a service (worker
    execution, cache, store, HTTP), so its ledger is the complete
    account of what a scenario did.  Thread-safe: the serve stack asks
    for decisions from the event loop and from ``to_thread`` workers.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        #: (site, key) -> hit; insertion also deduplicates re-queries.
        self._ledger: dict[tuple[str, str], bool] = {}
        self._request_ordinal = itertools.count()

    # -- the decision primitive ----------------------------------------

    def _decide(self, site: str, key: str, probability: float) -> bool:
        if probability <= 0.0:
            return False  # inactive sites never touch the ledger
        hit = unit_interval(self.spec.seed, site, key) < probability
        with self._lock:
            self._ledger[(site, key)] = hit
        return hit

    # -- worker seam ----------------------------------------------------

    def worker_action(self, fingerprint: str, attempt: int,
                      label: str = "") -> dict[str, Any] | None:
        """The chaos action for one job attempt, or None (run clean).

        Keyed by ``(fingerprint, attempt)``; the first matching fault
        class wins (crash > hang > slow), mirroring severity.
        """
        worker = self.spec.worker
        if worker.match and worker.match not in label:
            return None
        key = f"{fingerprint}:{attempt}"
        if self._decide("worker.crash", key, worker.crash_probability):
            return {"mode": "crash"}
        if self._decide("worker.hang", key, worker.hang_probability):
            return {"mode": "hang"}
        if self._decide("worker.slow", key, worker.slow_probability):
            return {"mode": "slow", "delay_s": worker.slow_s}
        return None

    # -- storage seam ----------------------------------------------------

    def mutate_cache_entry(self, fingerprint: str,
                           payload: bytes) -> bytes | None:
        """Corrupted bytes to write instead of ``payload``, or None."""
        if self._decide("cache.corrupt", fingerprint,
                        self.spec.storage.cache_corrupt_probability):
            # Valid-length garbage: parses as neither JSON nor UTF-8,
            # exactly what bit rot under a journaled write looks like.
            noise = hashlib.sha256(payload).digest()
            reps = len(payload) // len(noise) + 1
            return b"\x00" + (noise * reps)[: max(1, len(payload) - 1)]
        if self._decide("cache.truncate", fingerprint,
                        self.spec.storage.cache_truncate_probability):
            return payload[: max(1, len(payload) // 2)]
        return None

    def tear_store_line(self, key: str) -> bool:
        """Whether this store append loses its tail (partial write)."""
        return self._decide(
            "store.torn", key,
            self.spec.storage.store_torn_write_probability,
        )

    # -- http seam -------------------------------------------------------

    def drop_request(self, method: str, path: str) -> bool:
        """Whether to reset this request's connection before answering.

        GET only — see :class:`~.model.HttpChaos`.  Keyed by a request
        ordinal so repeated requests draw independently (deterministic
        for a deterministic request sequence).
        """
        if method != "GET":
            return False
        ordinal = next(self._request_ordinal)
        return self._decide("http.reset", f"{method} {path}#{ordinal}",
                            self.spec.http.reset_probability)

    def break_stream(self, run_id: str, seq: int) -> bool:
        """Whether to cut an event stream right after envelope ``seq``."""
        return self._decide("http.break", f"{run_id}:{seq}",
                            self.spec.http.stream_break_probability)

    # -- accounting ------------------------------------------------------

    def decisions(self) -> list[tuple[str, str, bool]]:
        """The sorted, deduplicated decision ledger."""
        with self._lock:
            items = list(self._ledger.items())
        return sorted((site, key, hit) for (site, key), hit in items)

    def injected(self, site_prefix: str = "") -> int:
        """How many decisions under ``site_prefix`` actually fired."""
        return sum(1 for site, _, hit in self.decisions()
                   if hit and site.startswith(site_prefix))

    def ledger_digest(self) -> str:
        """Order-independent hash of every decision taken.

        Two runs of the same ``(spec, seed)`` over the same work must
        produce equal digests — the chaos suite's reproducibility check.
        """
        lines = [f"{site}|{key}|{int(hit)}"
                 for site, key, hit in self.decisions()]
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
