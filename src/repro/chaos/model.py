"""Declarative, seed-deterministic *infrastructure* chaos specifications.

:mod:`repro.faults` injects failures into the simulated machine; this
module injects them into the machine the fleet actually runs on — the
worker processes, the content-addressed cache, the JSONL stores, and the
HTTP front end of :mod:`repro.serve`.  A :class:`ChaosSpec` describes a
scenario declaratively — plain data, JSON round-trippable, validated on
construction — and every decision the injector derives from it is a pure
function of ``(spec.seed, site, key)``: repeating a run with the same
spec reproduces the same crashes, corruptions, and resets (see
:mod:`repro.chaos.inject`), which is what lets the chaos suite assert
invariants *and* bit-reproducibility at once.

Scope notes
-----------
* Chaos strikes **infrastructure** only.  Job payloads are never
  altered: a crashed worker re-executes the same deterministic job, a
  corrupted cache entry is quarantined and recomputed.  The observable
  *results* of a sweep must survive any chaos scenario unchanged.
* Like faults/telemetry/NoC, the zero-chaos path is observation-free:
  no :class:`ChaosSpec` installed means no injector object, no extra
  branches taken, byte-identical behavior.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..errors import ChaosSpecError

__all__ = [
    "WorkerChaos",
    "StorageChaos",
    "HttpChaos",
    "ChaosSpec",
    "load_chaos_spec",
]


def _check_probability(name: str, value: float) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ChaosSpecError(
            f"{name} must be a number, got {value!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise ChaosSpecError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _check_non_negative(name: str, value: float) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ChaosSpecError(
            f"{name} must be a number, got {value!r}"
        ) from None
    if value < 0:
        raise ChaosSpecError(f"{name} must be non-negative, got {value!r}")
    return value


def _reject_unknown(what: str, data: Mapping[str, Any],
                    known: set[str]) -> None:
    unknown = set(data) - known
    if unknown:
        raise ChaosSpecError(
            f"unknown {what} keys: {sorted(unknown)} (known: {sorted(known)})"
        )


@dataclass(frozen=True, slots=True)
class WorkerChaos:
    """Failures of the crash-isolated worker processes.

    Decisions are keyed by ``(fingerprint, attempt)``, so whether a
    particular attempt of a particular job crashes is independent of
    worker-slot timing — the property that makes chaos runs replayable.
    ``match`` restricts injection to jobs whose label contains the
    substring (empty matches every job), which is how a scenario makes
    one design point a poison job while its neighbours stay healthy.
    """

    #: Probability an attempt dies mid-job (``os._exit``, i.e. SIGKILL
    #: semantics: the pool breaks and the attempt is charged a crash).
    crash_probability: float = 0.0
    #: Probability an attempt wedges: no progress, no heartbeat.  Only
    #: a deadline or the watchdog ends it.
    hang_probability: float = 0.0
    #: Probability an attempt is slowed by ``slow_s`` before running.
    slow_probability: float = 0.0
    #: Injected delay for a slow attempt, seconds.
    slow_s: float = 0.0
    #: Label substring restricting which jobs chaos may strike.
    match: str = ""

    def __post_init__(self) -> None:
        for name in ("crash_probability", "hang_probability",
                     "slow_probability"):
            object.__setattr__(
                self, name,
                _check_probability(f"worker.{name}", getattr(self, name)),
            )
        object.__setattr__(
            self, "slow_s", _check_non_negative("worker.slow_s", self.slow_s)
        )
        if not isinstance(self.match, str):
            raise ChaosSpecError(
                f"worker.match must be a string, got {self.match!r}"
            )

    def active(self) -> bool:
        return (self.crash_probability > 0 or self.hang_probability > 0
                or self.slow_probability > 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "crash_probability": self.crash_probability,
            "hang_probability": self.hang_probability,
            "slow_probability": self.slow_probability,
            "slow_s": self.slow_s,
            "match": self.match,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkerChaos":
        _reject_unknown("worker", data, {
            "crash_probability", "hang_probability", "slow_probability",
            "slow_s", "match",
        })
        return cls(**dict(data))


@dataclass(frozen=True, slots=True)
class StorageChaos:
    """Durable-state corruption: cache entries and JSONL store lines.

    Cache decisions are keyed by fingerprint, store decisions by the
    record's fingerprint — both stable across restarts, so a scenario's
    corruption pattern is a property of the data, not of scheduling.
    """

    #: Probability a cache entry is written as garbage bytes (disk
    #: corruption; the sha256 trailer is what detects it on read).
    cache_corrupt_probability: float = 0.0
    #: Probability a cache entry is truncated mid-write (lost fsync).
    cache_truncate_probability: float = 0.0
    #: Probability a store append loses its tail (crash mid-append:
    #: a partial line with no trailing newline).
    store_torn_write_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cache_corrupt_probability",
                     "cache_truncate_probability",
                     "store_torn_write_probability"):
            object.__setattr__(
                self, name,
                _check_probability(f"storage.{name}", getattr(self, name)),
            )

    def active(self) -> bool:
        return (self.cache_corrupt_probability > 0
                or self.cache_truncate_probability > 0
                or self.store_torn_write_probability > 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cache_corrupt_probability": self.cache_corrupt_probability,
            "cache_truncate_probability": self.cache_truncate_probability,
            "store_torn_write_probability":
                self.store_torn_write_probability,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StorageChaos":
        _reject_unknown("storage", data, {
            "cache_corrupt_probability", "cache_truncate_probability",
            "store_torn_write_probability",
        })
        return cls(**dict(data))


@dataclass(frozen=True, slots=True)
class HttpChaos:
    """Client-visible connection failures at the HTTP front end.

    Request drops apply to idempotent GETs only — the one place a
    client may retry blindly; write paths (submit, cancel, shutdown)
    stay exempt so chaos never manufactures duplicate admissions.
    Stream breaks cut an event stream *after* an envelope, exercising
    the ``?since=<seq>`` resumption cursor end to end.
    """

    #: Probability a GET is answered with an abrupt connection reset.
    reset_probability: float = 0.0
    #: Probability an event stream is cut after any given envelope.
    stream_break_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("reset_probability", "stream_break_probability"):
            object.__setattr__(
                self, name,
                _check_probability(f"http.{name}", getattr(self, name)),
            )

    def active(self) -> bool:
        return self.reset_probability > 0 or self.stream_break_probability > 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "reset_probability": self.reset_probability,
            "stream_break_probability": self.stream_break_probability,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HttpChaos":
        _reject_unknown("http", data, {
            "reset_probability", "stream_break_probability",
        })
        return cls(**dict(data))


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """One complete infrastructure chaos scenario."""

    seed: int = 0
    worker: WorkerChaos = WorkerChaos()
    storage: StorageChaos = StorageChaos()
    http: HttpChaos = HttpChaos()

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "seed", int(self.seed))
        except (TypeError, ValueError):
            raise ChaosSpecError(
                f"seed must be an integer, got {self.seed!r}"
            ) from None
        for name, cls in (("worker", WorkerChaos),
                          ("storage", StorageChaos), ("http", HttpChaos)):
            value = getattr(self, name)
            if isinstance(value, Mapping):
                object.__setattr__(self, name, cls.from_dict(value))
            elif not isinstance(value, cls):
                raise ChaosSpecError(
                    f"{name} must be a {cls.__name__} or mapping, "
                    f"got {value!r}"
                )

    def active(self) -> bool:
        """Whether this spec injects anything at all."""
        return (self.worker.active() or self.storage.active()
                or self.http.active())

    def with_seed(self, seed: int) -> "ChaosSpec":
        return replace(self, seed=int(seed))

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "worker": self.worker.to_dict(),
            "storage": self.storage.to_dict(),
            "http": self.http.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        _reject_unknown("chaos spec", data,
                        {"seed", "worker", "storage", "http"})
        return cls(
            seed=data.get("seed", 0),
            worker=WorkerChaos.from_dict(data.get("worker", {})),
            storage=StorageChaos.from_dict(data.get("storage", {})),
            http=HttpChaos.from_dict(data.get("http", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosSpecError(f"chaos spec is not JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ChaosSpecError("chaos spec must be a JSON object")
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """Stable serialization — equal specs, equal strings."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def load_chaos_spec(path: str) -> ChaosSpec:
    """Read and validate a :class:`ChaosSpec` JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ChaosSpec.from_json(fh.read())
