"""The chaos scenario matrix behind ``repro chaos``.

Each scenario boots a real ``repro serve`` instance (in a thread, on an
ephemeral port, against its own data directory under the matrix root),
arms one failure mode through a seed-deterministic
:class:`~.model.ChaosSpec`, drives it with the real
:class:`~repro.serve.client.ServiceClient`, and asserts the service's
core invariants *under* that failure:

* **exactly one** ``RunFinished`` per run, and it is the last envelope;
* envelope ``seq`` numbers are contiguous from 1 — no lost, no
  duplicated events, even observed across connection resets;
* **exactly one terminal job event** (cache hit / finished / failed)
  per job per run, and one store record to match — no lost and no
  duplicated job records;
* the cache never returns corrupt data: poisoned entries quarantine
  and recompute;
* a restart (new service, same data directory) completes only the
  un-cached remainder;
* the same ``(spec, seed)`` injects the same faults — witnessed by
  comparing decision-ledger digests across two fresh instances.

This module is deliberately *not* imported by ``repro.chaos.__init__``:
it drives the serve stack, which itself imports the chaos seams — the
lazy import (the CLI does ``import repro.chaos.suite`` at call time)
keeps the package cycle-free.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..explore.cache import ResultCache
from ..explore.store import ResultStore
from ..serve.client import ServiceClient
from ..serve.http import run_service
from ..serve.scheduler import ServiceConfig
from .inject import ChaosInjector
from .model import ChaosSpec

__all__ = [
    "Check",
    "ScenarioOutcome",
    "MatrixReport",
    "SCENARIOS",
    "run_matrix",
]

#: The sweep every scenario drives: small enough to finish in seconds,
#: wide enough that failures and survivors coexist.  ``rate_hz=40`` is
#: the designated victim of the targeted (``match``-filtered) modes —
#: job labels render params as ``k=v``, so ``"rate_hz=40"`` selects it.
_RATES = [40.0, 50.0, 60.0, 80.0]
_VICTIM = "rate_hz=40"


def _spec(name: str) -> dict[str, Any]:
    return {
        "name": name,
        "app": "image_pipeline",
        "axes": {"rate_hz": list(_RATES)},
        "fixed": {"width": 16, "height": 12},
        "frames": 2,
        "timeout_s": 120,
    }


def _config(**overrides: Any) -> ServiceConfig:
    """Fast-feedback scheduler knobs; scenarios override per mode."""
    knobs: dict[str, Any] = dict(
        workers=2, retries=2, backoff_s=0.01, backoff_max_s=0.05,
        poll_s=0.02, quarantine_after=0,
    )
    knobs.update(overrides)
    return ServiceConfig(**knobs)


# ---------------------------------------------------------------------------
# Report plumbing


@dataclass(frozen=True, slots=True)
class Check:
    """One named assertion inside a scenario."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(slots=True)
class ScenarioOutcome:
    """Everything one scenario produced, checks first."""

    name: str
    checks: list[Check] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)
    data_dir: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and all(c.ok for c in self.checks)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(Check(name, bool(ok), detail))

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.name,
            "ok": self.ok,
            "checks": [c.as_dict() for c in self.checks],
            "details": self.details,
            "data_dir": self.data_dir,
            "error": self.error,
        }

    def describe(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        lines = [f"[{mark}] {self.name}"]
        for check in self.checks:
            tick = "+" if check.ok else "-"
            tail = f" ({check.detail})" if check.detail else ""
            lines.append(f"    {tick} {check.name}{tail}")
        if self.error:
            lines.append(f"    ! {self.error}")
        return "\n".join(lines)


@dataclass(slots=True)
class MatrixReport:
    """The whole matrix: one outcome per scenario."""

    seed: int
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "scenarios": [o.as_dict() for o in self.outcomes],
        }

    def describe(self) -> str:
        lines = [o.describe() for o in self.outcomes]
        verdict = "all scenarios passed" if self.ok else "FAILURES above"
        lines.append(f"chaos matrix (seed {self.seed}): {verdict}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# A live service under test


_URL_RE = re.compile(r"http://[\d.]+:\d+")


class _LiveService:
    """``run_service`` in a daemon thread, shut down through the API."""

    def __init__(self, data_dir: Path, config: ServiceConfig,
                 chaos: ChaosSpec | None = None) -> None:
        self.injector = None if chaos is None else ChaosInjector(chaos)
        self.url = ""
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=run_service,
            kwargs=dict(host="127.0.0.1", port=0, data_dir=str(data_dir),
                        config=config, announce=self._announce,
                        chaos=self.injector),
            daemon=True,
        )

    def _announce(self, line: str) -> None:
        match = _URL_RE.search(line)
        if match and not self.url:
            self.url = match.group(0)
            self._ready.set()

    def __enter__(self) -> "_LiveService":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service did not announce a URL in 30s")
        return self

    def __exit__(self, *exc_info: Any) -> None:
        try:
            ServiceClient(self.url).shutdown(drain=False)
        except Exception:  # noqa: BLE001 - already down is fine
            pass
        self._thread.join(timeout=30.0)


# ---------------------------------------------------------------------------
# Shared invariant checks


_TERMINAL_JOB_EVENTS = ("JobCacheHit", "JobFinished", "JobFailed")


def _terminals(envelopes: list[dict[str, Any]]) -> dict[str, list[dict]]:
    by_label: dict[str, list[dict]] = {}
    for env in envelopes:
        if env.get("event") in _TERMINAL_JOB_EVENTS:
            by_label.setdefault(env.get("label", "?"), []).append(env)
    return by_label


def _started_labels(envelopes: list[dict[str, Any]]) -> set[str]:
    return {env.get("label", "?") for env in envelopes
            if env.get("event") == "JobStarted"}


def _check_stream(out: ScenarioOutcome, envelopes: list[dict[str, Any]],
                  total: int, tag: str = "") -> None:
    """The PR-6 invariants, asserted on one run's envelope stream."""
    prefix = f"{tag}:" if tag else ""
    seqs = [env.get("seq") for env in envelopes]
    out.check(f"{prefix}contiguous-seq",
              seqs == list(range(1, len(seqs) + 1)),
              f"{len(seqs)} envelopes")
    finished = [env for env in envelopes
                if env.get("event") == "RunFinished"]
    out.check(f"{prefix}exactly-one-run-terminal",
              len(finished) == 1 and bool(envelopes)
              and envelopes[-1].get("event") == "RunFinished",
              finished[0].get("status", "?") if finished else "none")
    terminals = _terminals(envelopes)
    out.check(f"{prefix}one-terminal-per-job",
              len(terminals) == total
              and all(len(v) == 1 for v in terminals.values()),
              f"{len(terminals)}/{total} jobs")


def _check_store(out: ScenarioOutcome, data_dir: Path, run_id: str,
                 total: int, tag: str = "") -> None:
    """One store record per job for ``run_id`` — none lost, none doubled."""
    prefix = f"{tag}:" if tag else ""
    records = [r for r in ResultStore(data_dir / "results.jsonl")
               if r.get("run") == run_id]
    labels = [r.get("label") for r in records]
    out.check(f"{prefix}store-one-record-per-job",
              len(records) == total and len(set(labels)) == total,
              f"{len(records)} records")


def _finish(client: ServiceClient,
            spec: dict[str, Any]) -> tuple[str, list[dict[str, Any]]]:
    """Submit and follow to the terminal event; returns (run, stream)."""
    run_id = client.submit(spec)["run"]
    return run_id, list(client.watch(run_id))


# ---------------------------------------------------------------------------
# Scenarios


def _scenario_worker_crash(root: Path, seed: int) -> ScenarioOutcome:
    """Workers die mid-job; retries absorb what the budget allows, and
    every job still gets exactly one terminal record."""
    out = ScenarioOutcome("worker-crash", data_dir=str(root))
    chaos = ChaosSpec.from_dict(
        {"seed": seed, "worker": {"crash_probability": 0.6}})
    with _LiveService(root, _config(retries=5), chaos) as live:
        run_id, envelopes = _finish(ServiceClient(live.url),
                                    _spec("chaos-crash"))
        crashes = live.injector.injected("worker.crash")
    _check_stream(out, envelopes, len(_RATES))
    _check_store(out, root, run_id, len(_RATES))
    out.check("crashes-injected", crashes > 0, f"{crashes} crash(es)")
    out.details.update(run=run_id, crashes=crashes)
    return out


def _scenario_worker_hang(root: Path, seed: int) -> ScenarioOutcome:
    """One job's workers wedge (no heartbeat); the watchdog reaps them
    within the heartbeat window instead of the 120s job timeout, and the
    other jobs keep flowing."""
    out = ScenarioOutcome("worker-hang", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "worker": {"hang_probability": 1.0, "match": _VICTIM},
    })
    config = _config(retries=1, heartbeat_s=0.5)
    started = time.monotonic()
    with _LiveService(root, config, chaos) as live:
        run_id, envelopes = _finish(ServiceClient(live.url),
                                    _spec("chaos-hang"))
    elapsed = time.monotonic() - started
    _check_stream(out, envelopes, len(_RATES))
    _check_store(out, root, run_id, len(_RATES))
    victims = [env for label, envs in _terminals(envelopes).items()
               if _VICTIM in label for env in envs]
    out.check("victim-reaped-by-watchdog",
              len(victims) == 1 and victims[0]["event"] == "JobFailed"
              and "watchdog" in victims[0].get("message", ""),
              victims[0].get("message", "?") if victims else "none")
    survivors = [env for label, envs in _terminals(envelopes).items()
                 if _VICTIM not in label for env in envs]
    out.check("other-jobs-unstalled",
              all(env["event"] == "JobFinished" for env in survivors),
              f"{len(survivors)} survivor(s)")
    out.check("reaped-within-heartbeat-windows", elapsed < 60.0,
              f"{elapsed:.1f}s wall clock")
    out.details.update(run=run_id, elapsed_s=round(elapsed, 2))
    return out


def _scenario_worker_slow(root: Path, seed: int) -> ScenarioOutcome:
    """Every worker is slowed; nothing fails, nothing is duplicated."""
    out = ScenarioOutcome("worker-slow", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "worker": {"slow_probability": 1.0, "slow_s": 0.2},
    })
    with _LiveService(root, _config(), chaos) as live:
        run_id, envelopes = _finish(ServiceClient(live.url),
                                    _spec("chaos-slow"))
        slowed = live.injector.injected("worker.slow")
    _check_stream(out, envelopes, len(_RATES))
    _check_store(out, root, run_id, len(_RATES))
    finished = [env for env in envelopes
                if env.get("event") == "RunFinished"]
    out.check("run-succeeded-despite-slowdown",
              bool(finished) and finished[0].get("status") == "succeeded",
              finished[0].get("status", "?") if finished else "none")
    out.check("slowdowns-injected", slowed == len(_RATES),
              f"{slowed} slowdown(s)")
    out.details.update(run=run_id, slowed=slowed)
    return out


def _scenario_cache_corrupt(root: Path, seed: int) -> ScenarioOutcome:
    """Every cache write is corrupted; reads detect it (checksum or
    parse), quarantine the entry, and recompute — corrupt data is never
    served and never crashes the scheduler."""
    out = ScenarioOutcome("cache-corrupt", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "storage": {"cache_corrupt_probability": 1.0},
    })
    with _LiveService(root, _config(), chaos) as live:
        client = ServiceClient(live.url)
        run1, stream1 = _finish(client, _spec("chaos-cache"))
        run2, stream2 = _finish(client, _spec("chaos-cache"))
    _check_stream(out, stream1, len(_RATES), tag="run1")
    _check_stream(out, stream2, len(_RATES), tag="run2")
    finished2 = [env for env in stream2
                 if env.get("event") == "RunFinished"][-1]
    out.check("corrupt-entries-never-served",
              finished2.get("cache_hits") == 0
              and finished2.get("status") == "succeeded",
              f"{finished2.get('cache_hits')} cache hit(s)")
    out.check("rerun-recomputed-every-job",
              len(_started_labels(stream2)) == len(_RATES))
    quarantined = ResultCache(root / "cache").quarantined()
    out.check("corrupt-entries-quarantined", len(quarantined) > 0,
              f"{len(quarantined)} parked entr(ies)")
    out.details.update(run1=run1, run2=run2,
                       quarantined=len(quarantined))
    return out


def _scenario_store_torn(root: Path, seed: int) -> ScenarioOutcome:
    """Appends lose their tails (crash-mid-append); the store stays
    parseable, survivors are intact, and the next clean append repairs
    the torn tail instead of being glued onto it."""
    out = ScenarioOutcome("store-torn", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "storage": {"store_torn_write_probability": 0.7},
    })
    with _LiveService(root, _config(), chaos) as live:
        run_id, envelopes = _finish(ServiceClient(live.url),
                                    _spec("chaos-store"))
        torn = live.injector.injected("store.torn")
    _check_stream(out, envelopes, len(_RATES))
    store = ResultStore(root / "results.jsonl")
    records = store.load()  # must not raise, whatever the disk holds
    out.check("store-still-parses",
              all(r.get("run") == run_id for r in records),
              f"{len(records)} surviving record(s), {torn} torn")
    out.check("survivors-count-consistent",
              len(records) == len(_RATES) - torn,
              f"{len(_RATES)} appended - {torn} torn")
    # A clean writer appending after the crash must not lose its line
    # to the torn tail (the gluing bug this PR fixes).
    sentinel = {"fingerprint": "sentinel", "kind": "result",
                "run": "sentinel-run"}
    ResultStore(root / "results.jsonl").append(sentinel)
    reread = ResultStore(root / "results.jsonl").load()
    out.check("clean-append-after-tear-survives",
              any(r.get("run") == "sentinel-run" for r in reread)
              and len(reread) == len(records) + 1,
              f"{len(reread)} record(s) after repair append")
    out.details.update(run=run_id, torn=torn, survivors=len(records))
    return out


def _scenario_connection_reset(root: Path, seed: int) -> ScenarioOutcome:
    """The network misbehaves: GETs are reset and event streams cut
    mid-run.  ``ServiceClient.watch`` reconnects on the ``?since=``
    cursor and still observes every envelope exactly once, in order."""
    out = ScenarioOutcome("connection-reset", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "http": {"reset_probability": 0.2,
                 "stream_break_probability": 0.35},
    })
    with _LiveService(root, _config(), chaos) as live:
        client = ServiceClient(live.url, retries=5, reconnects=16)
        run_id, envelopes = _finish(client, _spec("chaos-reset"))
        broken = live.injector.injected("http.")
    _check_stream(out, envelopes, len(_RATES))
    out.check("disruptions-injected", broken > 0,
              f"{broken} reset(s)/break(s)")
    out.details.update(run=run_id, disruptions=broken)
    return out


def _scenario_quarantine(root: Path, seed: int) -> ScenarioOutcome:
    """One poison job crash-loops; after the crash budget it is parked
    with a terminal ``quarantined`` record, the rest of the run
    completes, and a resubmission never executes it again."""
    out = ScenarioOutcome("quarantine", data_dir=str(root))
    chaos = ChaosSpec.from_dict({
        "seed": seed,
        "worker": {"crash_probability": 1.0, "match": _VICTIM},
    })
    config = _config(retries=5, quarantine_after=2)
    with _LiveService(root, config, chaos) as live:
        client = ServiceClient(live.url)
        run1, stream1 = _finish(client, _spec("chaos-quarantine"))
        run2, stream2 = _finish(client, _spec("chaos-quarantine"))
    _check_stream(out, stream1, len(_RATES), tag="run1")
    _check_stream(out, stream2, len(_RATES), tag="run2")
    victims1 = [env for label, envs in _terminals(stream1).items()
                if _VICTIM in label for env in envs]
    out.check("poison-job-quarantined",
              len(victims1) == 1
              and victims1[0].get("kind") == "quarantined"
              and victims1[0].get("attempts") == 2,
              victims1[0].get("message", "?") if victims1 else "none")
    survivors1 = [env for label, envs in _terminals(stream1).items()
                  if _VICTIM not in label for env in envs]
    out.check("rest-of-run-completed",
              all(env["event"] == "JobFinished" for env in survivors1),
              f"{len(survivors1)} survivor(s)")
    started2 = _started_labels(stream2)
    victims2 = [env for label, envs in _terminals(stream2).items()
                if _VICTIM in label for env in envs]
    out.check("parked-job-never-reexecuted",
              all(_VICTIM not in label for label in started2)
              and len(victims2) == 1
              and victims2[0].get("kind") == "quarantined"
              and victims2[0].get("attempts") == 0,
              f"{len(started2)} job(s) started in run2")
    out.details.update(run1=run1, run2=run2)
    return out


def _scenario_restart_resume(root: Path, seed: int) -> ScenarioOutcome:
    """Kill a chaos-stricken service, restart clean on the same data
    directory, resubmit: completed work rides the cache, only the
    failed remainder executes."""
    out = ScenarioOutcome("restart-resume", data_dir=str(root))
    chaos = ChaosSpec.from_dict(
        {"seed": seed, "worker": {"crash_probability": 0.75}})
    with _LiveService(root, _config(retries=0), chaos) as live:
        run1, stream1 = _finish(ServiceClient(live.url),
                                _spec("chaos-restart"))
    _check_stream(out, stream1, len(_RATES), tag="run1")
    finished1 = [env for env in stream1
                 if env.get("event") == "RunFinished"][-1]
    failed_labels = {label for label, envs in _terminals(stream1).items()
                     if envs[0]["event"] == "JobFailed"}
    # Second life: same data dir, chaos disarmed — a clean restart.
    with _LiveService(root, _config()) as live2:
        run2, stream2 = _finish(ServiceClient(live2.url),
                                _spec("chaos-restart"))
    _check_stream(out, stream2, len(_RATES), tag="run2")
    finished2 = [env for env in stream2
                 if env.get("event") == "RunFinished"][-1]
    out.check("restart-run-succeeded",
              finished2.get("status") == "succeeded",
              finished2.get("status", "?"))
    out.check("completed-work-rides-the-cache",
              finished2.get("cache_hits") == finished1.get("succeeded"),
              f"{finished2.get('cache_hits')} hit(s) vs "
              f"{finished1.get('succeeded')} prior success(es)")
    out.check("only-remainder-executed",
              _started_labels(stream2) == failed_labels,
              f"{len(failed_labels)} job(s) re-run")
    out.details.update(run1=run1, run2=run2,
                       first_failed=sorted(failed_labels))
    return out


def _scenario_reproducible(root: Path, seed: int) -> ScenarioOutcome:
    """The headline determinism claim: two fresh instances under the
    same ``(spec, seed)`` draw bit-identical injection decisions and
    reach the same terminal outcome per job."""
    out = ScenarioOutcome("reproducible", data_dir=str(root))
    chaos_dict = {"seed": seed, "worker": {"crash_probability": 0.55}}

    def one_life(sub: str) -> tuple[str, dict[str, str]]:
        with _LiveService(root / sub, _config(),
                          ChaosSpec.from_dict(chaos_dict)) as live:
            _, stream = _finish(ServiceClient(live.url),
                                _spec("chaos-repro"))
            digest = live.injector.ledger_digest()
        outcome = {label: envs[0]["event"]
                   for label, envs in _terminals(stream).items()}
        return digest, outcome

    digest_a, outcome_a = one_life("a")
    digest_b, outcome_b = one_life("b")
    out.check("identical-decision-ledgers", digest_a == digest_b,
              digest_a[:16])
    out.check("identical-terminal-outcomes", outcome_a == outcome_b,
              f"{len(outcome_a)} job(s) compared")
    out.details.update(digest=digest_a, outcomes=outcome_a)
    return out


SCENARIOS: dict[str, Callable[[Path, int], ScenarioOutcome]] = {
    "worker-crash": _scenario_worker_crash,
    "worker-hang": _scenario_worker_hang,
    "worker-slow": _scenario_worker_slow,
    "cache-corrupt": _scenario_cache_corrupt,
    "store-torn": _scenario_store_torn,
    "connection-reset": _scenario_connection_reset,
    "quarantine": _scenario_quarantine,
    "restart-resume": _scenario_restart_resume,
    "reproducible": _scenario_reproducible,
}


def run_matrix(root: str | Path, *, seed: int = 0,
               names: list[str] | None = None,
               announce: Callable[[str], None] | None = None,
               ) -> MatrixReport:
    """Run the scenario matrix; each scenario gets ``root/<name>``.

    ``names`` selects a subset (unknown names raise ``ValueError`` so a
    typo cannot silently pass CI by running nothing).  Scenario crashes
    are caught into the outcome — one broken scenario must not hide the
    verdicts of the rest.
    """
    root = Path(root)
    selected = list(SCENARIOS) if names is None else list(names)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown chaos scenario(s) {unknown}; "
            f"known: {', '.join(SCENARIOS)}"
        )
    report = MatrixReport(seed=seed)
    for name in selected:
        if announce is not None:
            announce(f"repro chaos: scenario {name} (seed {seed})")
        try:
            outcome = SCENARIOS[name](root / name, seed)
        except Exception as exc:  # noqa: BLE001 - isolate scenarios
            outcome = ScenarioOutcome(name, data_dir=str(root / name),
                                      error=f"{type(exc).__name__}: {exc}")
        report.outcomes.append(outcome)
        if announce is not None:
            announce(outcome.describe())
    return report


def write_report(report: MatrixReport, path: str | Path) -> None:
    """Persist the matrix verdict as JSON (the CI artifact)."""
    Path(path).write_text(
        json.dumps(report.as_dict(), indent=2, default=str) + "\n",
        encoding="utf-8",
    )
