"""Fleet supervision primitives: heartbeats, quarantine, bounded backoff.

These are the *always-on* half of :mod:`repro.chaos` — the machinery the
chaos suite flushed out, useful against real infrastructure failures
whether or not a :class:`~.model.ChaosSpec` is installed:

* **Heartbeats** — a worker touches a per-attempt heartbeat file on a
  short interval; the parent treats a stale file as a wedged worker,
  kills it, and charges the attempt a retryable ``crash`` instead of
  letting the job block a pool slot until its full wall-clock timeout.
* **Quarantine** — a :class:`QuarantineLedger` counts consecutive
  crashes per job fingerprint; a fingerprint that crash-loops past its
  budget is *parked*: it gets a terminal ``quarantined`` record and is
  never executed again by that ledger's owner, so one poison design
  point cannot burn the retry budget of every run that includes it.
* **Bounded backoff with deterministic jitter** —
  :func:`backoff_delay` caps the executor/scheduler/client exponential
  backoff at ``max_s`` and spreads retries with jitter derived from the
  retry key, so a shared-cause failure (say, a dying disk) does not
  synchronize every job's retries into a thundering herd — yet the
  same key always backs off the same way, keeping runs reproducible.
"""

from __future__ import annotations

import os
import threading
import time

from .inject import unit_interval

__all__ = [
    "backoff_delay",
    "touch_heartbeat",
    "start_heartbeat",
    "heartbeat_stale",
    "QuarantineLedger",
]


def backoff_delay(attempt: int, base_s: float, max_s: float, *,
                  key: str = "", seed: int = 0) -> float:
    """Capped exponential backoff with deterministic, key-seeded jitter.

    The uncapped curve is ``base_s * 2**(attempt-1)``; it is clamped to
    ``max_s`` and then scaled into ``[0.5, 1.0)`` of itself by a jitter
    draw keyed on ``(key, attempt)`` — different jobs decorrelate,
    identical reruns reproduce.
    """
    exponent = max(0, int(attempt) - 1)
    bounded = min(float(max_s), float(base_s) * (2.0 ** exponent))
    jitter = unit_interval(seed, "backoff", f"{key}:{attempt}")
    return bounded * (0.5 + 0.5 * jitter)


# ---------------------------------------------------------------------------
# Heartbeats


def touch_heartbeat(path: str) -> None:
    """Advance a heartbeat file's mtime (creating it if needed)."""
    try:
        os.utime(path, None)
    except OSError:
        try:
            with open(path, "a", encoding="utf-8"):
                pass
        except OSError:  # pragma: no cover - heartbeat dir went away
            pass


def start_heartbeat(path: str, interval_s: float) -> threading.Event:
    """Touch ``path`` every ``interval_s`` from a daemon thread.

    Returns the stop event.  Runs in the *worker* process: a healthy
    worker heartbeats even while a long kernel body executes; a wedged
    one (stuck in C, swapped out, SIGSTOPped — or chaos-hung) does not,
    which is exactly the distinction the parent's watchdog needs.
    """
    stop = threading.Event()
    touch_heartbeat(path)

    def beat() -> None:
        while not stop.wait(interval_s):
            touch_heartbeat(path)

    thread = threading.Thread(target=beat, name="repro-heartbeat",
                              daemon=True)
    thread.start()
    return stop


def heartbeat_stale(path: str, deadline_s: float) -> bool:
    """Whether the heartbeat at ``path`` is older than ``deadline_s``."""
    try:
        age = time.time() - os.path.getmtime(path)
    except OSError:
        return False  # not written yet (startup grace) or already reaped
    return age > deadline_s


# ---------------------------------------------------------------------------
# Poison-job quarantine


class QuarantineLedger:
    """Crash-loop accounting per job fingerprint.

    ``limit`` is the crash budget: the Nth *consecutive* crash of a
    fingerprint parks it (``limit=0`` disables the ledger entirely —
    the chaos-off observation-free default for one-shot sweeps).  A
    successful attempt clears the count: only genuine loops quarantine,
    a transiently unlucky job does not.  Thread-safe; shared by every
    worker of a scheduler so strikes aggregate across runs and tenants.
    """

    def __init__(self, limit: int = 0) -> None:
        self.limit = max(0, int(limit))
        self._lock = threading.Lock()
        self._strikes: dict[str, int] = {}
        self._parked: dict[str, str] = {}

    def record_crash(self, fingerprint: str, message: str = "",
                     ) -> str | None:
        """Charge one crash; returns the quarantine reason when this
        strike exhausts the budget (and parks the fingerprint)."""
        if not self.limit:
            return None
        with self._lock:
            strikes = self._strikes.get(fingerprint, 0) + 1
            self._strikes[fingerprint] = strikes
            if strikes < self.limit:
                return None
            reason = (f"quarantined after {strikes} consecutive "
                      f"crash(es): {message or 'crash loop'}")
            self._parked[fingerprint] = reason
            return reason

    def clear(self, fingerprint: str) -> None:
        """A successful attempt: forget the fingerprint's strikes."""
        with self._lock:
            self._strikes.pop(fingerprint, None)

    def reason(self, fingerprint: str) -> str | None:
        """The parked reason, or None when the fingerprint may run."""
        with self._lock:
            return self._parked.get(fingerprint)

    def parked(self) -> dict[str, str]:
        with self._lock:
            return dict(self._parked)

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "limit": self.limit,
                "strikes": dict(self._strikes),
                "parked": dict(self._parked),
            }
