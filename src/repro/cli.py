"""Command-line interface: inspect, compile, simulate, export.

::

    python -m repro list                      # the Figure 13 suite
    python -m repro describe SS               # logical graph of a benchmark
    python -m repro compile SS                # run the compiler, print report
    python -m repro simulate SS --frames 4    # timing-accurate simulation
    python -m repro profile SS --perfetto out.json   # telemetry + critical path
    python -m repro dot SS --compiled         # Graphviz export
    python -m repro suite                     # the Figure 13 table
    python -m repro explore sweep.json --workers 4   # design-space sweep
    python -m repro serve --port 8765         # resident sweep service
    python -m repro submit sweep.json --watch # run a sweep on the service
    python -m repro watch RUN_ID              # stream a run's events
    python -m repro jobs                      # list the service's runs
    python -m repro dash --data-dir .repro-serve  # metrics web dashboard
    python -m repro chaos --seed 7            # fault-injection scenario matrix

``simulate``, ``schedule``, ``suite``, and ``explore`` take ``--json``
for machine-readable output.

Benchmarks are addressed by their Figure 13 keys (1, 1F, 2, 2F, 3, 4, SS,
SF, BS, BF, 5).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from .apps import BENCHMARK_PROCESSOR, benchmark, benchmark_suite
from .graph.dot import to_dot
from .errors import SimulationError
from .machine import ProcessorSpec
from .sim import SimulationOptions, simulate
from .transform import CompileOptions, compile_application

__all__ = ["main"]


def _processor(args: argparse.Namespace) -> ProcessorSpec:
    return ProcessorSpec(
        clock_hz=args.clock_mhz * 1e6,
        memory_words=args.memory_words,
    )


def _compile(key: str, args: argparse.Namespace):
    bench = benchmark(key)
    return bench, compile_application(
        bench.application(),
        _processor(args),
        CompileOptions(
            mapping=args.mapping,
            spare_processors=getattr(args, "spares", 0),
        ),
    )


def _noc_model(args: argparse.Namespace, compiled):
    """Build the NoC timing model requested by --noc, or None."""
    if not getattr(args, "noc", False):
        for flag, name in ((getattr(args, "placement", None), "--placement"),
                           (getattr(args, "noc_mesh", None), "--mesh")):
            if flag:
                raise SimulationError(
                    f"{name} only affects timing through the NoC model; "
                    "add --noc"
                )
        return None
    from .machine import (
        NocModel,
        anneal_placement,
        fit_chip,
        row_major_placement,
    )

    chip = fit_chip(
        compiled.mapping.processor_count
        + len(getattr(compiled.mapping, "spares", ())),
        compiled.processor,
        mesh=getattr(args, "noc_mesh", None),
    )
    strategy = getattr(args, "placement", None) or "row-major"
    if strategy == "row-major":
        placement = row_major_placement(compiled.mapping, chip)
    else:
        placement = anneal_placement(
            compiled.mapping, compiled.dataflow, chip,
            seed=0, objective=strategy,
        )
    return NocModel(
        placement=placement,
        per_hop_cycles=args.hop_cycles,
        serialization_cycles_per_element=args.ser_cycles,
    )


def _add_noc_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--noc", action="store_true",
                   help="route inter-element transfers over the 2-D mesh "
                        "NoC with per-link contention (see docs/noc.md)")
    p.add_argument("--placement",
                   choices=("row-major", "energy", "makespan"),
                   default=None,
                   help="NoC placement strategy: naive row-major fill or "
                        "an annealed objective (requires --noc)")
    p.add_argument("--mesh", type=int, default=None, dest="noc_mesh",
                   help="force the NoC mesh side length (requires --noc; "
                        "default: smallest square that fits)")
    p.add_argument("--hop-cycles", type=float, default=4.0,
                   dest="hop_cycles",
                   help="router/link traversal cycles per hop")
    p.add_argument("--ser-cycles", type=float, default=1.0,
                   dest="ser_cycles",
                   help="link serialization cycles per payload element")


def _fault_spec(args: argparse.Namespace):
    from .faults import load_fault_spec

    if getattr(args, "faults", None) is None:
        if getattr(args, "fault_seed", None) is not None:
            raise SimulationError(
                "--fault-seed requires --faults (a scenario to seed)"
            )
        return None
    spec = load_fault_spec(args.faults)
    if args.fault_seed is not None:
        spec = spec.with_seed(args.fault_seed)
    return spec


def cmd_list(args: argparse.Namespace) -> int:
    for bench in benchmark_suite():
        print(f"{bench.key:>3}  {bench.title}")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    bench = benchmark(args.key)
    print(bench.application().describe())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .analysis import compile_report

    _, compiled = _compile(args.key, args)
    print(compile_report(compiled))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    bench, compiled = _compile(args.key, args)
    fault_spec = _fault_spec(args)
    telemetry_on = bool(
        getattr(args, "perfetto", None) or getattr(args, "spans", None)
        or getattr(args, "critical_path", False)
    )
    noc = _noc_model(args, compiled)
    sim_started = time.perf_counter()
    result = simulate(
        compiled,
        SimulationOptions(frames=args.frames, faults=fault_spec,
                          telemetry=telemetry_on, noc=noc,
                          replay=args.replay, batch=args.batch),
    )
    sim_elapsed = time.perf_counter() - sim_started
    path_report = None
    if telemetry_on:
        from .obs import (
            analyze_critical_path,
            write_perfetto,
            write_spans_jsonl,
        )

        tele = result.telemetry
        if args.perfetto:
            write_perfetto(tele, args.perfetto, app=bench.key)
        if args.spans:
            write_spans_jsonl(tele, args.spans)
        if args.critical_path:
            path_report = analyze_critical_path(tele)
    shedding = fault_spec is not None and fault_spec.recovery.shed
    verdict = result.verdict(
        bench.output, rate_hz=bench.rate_hz,
        chunks_per_frame=bench.chunks_per_frame, frames=args.frames,
        allow_shedding=shedding,
    )
    faults_active = fault_spec is not None and fault_spec.active()
    bench_stats = {
        "wall_s": sim_elapsed,
        "events": result.events_processed,
        "events_per_s": (
            result.events_processed / sim_elapsed if sim_elapsed > 0 else 0.0
        ),
        "peak_heap": result.peak_heap,
    }
    if args.json:
        payload = {
            "benchmark": bench.key,
            "rate_hz": bench.rate_hz,
            "frames": args.frames,
            "processor_count": compiled.processor_count,
            "kernel_count": compiled.kernel_count(),
            "verdict": verdict.as_dict(),
            "utilization": result.utilization.as_dict(),
        }
        if faults_active:
            payload["faults"] = result.fault_stats.as_dict()
        if result.noc_stats is not None:
            payload["noc"] = result.noc_stats.as_dict(result.makespan_s)
            payload["makespan_s"] = result.makespan_s
        if result.replay is not None:
            payload["replay"] = result.replay.as_dict()
        if telemetry_on:
            payload["telemetry"] = {
                "spans": result.telemetry.span_counts(),
                "dropped_spans": result.telemetry.dropped_spans,
            }
        if path_report is not None:
            payload["critical_path"] = path_report.as_dict()
        if args.bench:
            payload["bench"] = bench_stats
        print(json.dumps(payload, indent=2))
    else:
        print(verdict.describe())
        if faults_active:
            print(result.fault_stats.describe())
        if result.noc_stats is not None:
            print(result.noc_stats.describe())
        print()
        print(result.utilization.describe())
        if result.replay is not None:
            print()
            print(result.replay.describe())
        if args.perfetto:
            print(f"wrote Perfetto trace to {args.perfetto}")
        if args.spans:
            print(f"wrote span stream to {args.spans}")
        if path_report is not None:
            print()
            print(path_report.describe())
        if args.bench:
            print()
            print(
                f"bench: {sim_elapsed * 1e3:.1f} ms wall, "
                f"{bench_stats['events']} events, "
                f"{bench_stats['events_per_s']:,.0f} events/s, "
                f"peak heap {bench_stats['peak_heap']}"
            )
    if args.strict:
        # CI gate: nonzero on any real-time violation or fault the
        # recovery policy could not absorb.
        ok = (verdict.meets and not result.violations
              and result.fault_stats.unrecovered == 0)
        return 0 if ok else 1
    return 0 if verdict.meets else 1


def cmd_dot(args: argparse.Namespace) -> int:
    bench = benchmark(args.key)
    if args.compiled or args.mapped:
        compiled = compile_application(
            bench.application(), _processor(args),
            CompileOptions(mapping=args.mapping),
        )
        print(to_dot(compiled.graph,
                     mapping=compiled.mapping if args.mapped else None))
    else:
        print(to_dot(bench.application()))
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from .analysis import build_static_schedule

    _, compiled = _compile(args.key, args)
    schedule = build_static_schedule(compiled)
    if args.json:
        print(json.dumps({"benchmark": args.key, **schedule.as_dict()},
                         indent=2))
    else:
        print(schedule.describe())
    return 0 if schedule.admissible else 1


def cmd_energy(args: argparse.Namespace) -> int:
    from .machine import ManyCoreChip, anneal_placement, estimate_energy

    bench, compiled = _compile(args.key, args)
    result = simulate(compiled, SimulationOptions(frames=args.frames))
    placement = None
    if args.place:
        chip = ManyCoreChip(cols=args.mesh, rows=args.mesh,
                            processor=compiled.processor)
        placement = anneal_placement(
            compiled.mapping, compiled.dataflow, chip, seed=0
        )
        print(f"annealed placement: {placement.improvement:.2f}x better "
              "than row-major")
    report = estimate_energy(
        result, compiled.mapping, compiled.dataflow,
        processor=compiled.processor, placement=placement,
    )
    print(report.describe())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .sim import gantt

    bench, compiled = _compile(args.key, args)
    result = simulate(
        compiled, SimulationOptions(frames=args.frames, trace=True)
    )
    if not result.trace:
        # An empty Gantt renders as blank rows and looks like success;
        # say why there is nothing to chart and fail loudly instead.
        print(
            f"error: benchmark {bench.key!r} recorded no firings with "
            f"--frames {args.frames}; nothing to chart",
            file=sys.stderr,
        )
        return 1
    print(gantt(result.trace, width=args.width))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import (
        analyze_critical_path,
        timeline,
        write_perfetto,
        write_spans_jsonl,
    )

    bench, compiled = _compile(args.key, args)
    fault_spec = _fault_spec(args)
    noc = _noc_model(args, compiled)
    result = simulate(
        compiled,
        SimulationOptions(frames=args.frames, faults=fault_spec,
                          telemetry=True, noc=noc),
    )
    tele = result.telemetry
    report = analyze_critical_path(tele)
    if args.perfetto:
        write_perfetto(tele, args.perfetto, app=bench.key)
    if args.spans:
        write_spans_jsonl(tele, args.spans)
    if args.json:
        payload = {
            "benchmark": bench.key,
            "frames": args.frames,
            "makespan_s": result.makespan_s,
            "telemetry": tele.as_dict(),
            "critical_path": report.as_dict(),
        }
        if result.noc_stats is not None:
            payload["noc"] = result.noc_stats.as_dict(result.makespan_s)
        print(json.dumps(payload, indent=2))
        return 0
    counts = tele.span_counts()
    print(
        f"benchmark {bench.key} ({bench.title}): "
        f"{result.makespan_s * 1e3:.3f} ms makespan, "
        + ", ".join(f"{v} {k}" for k, v in counts.items())
    )
    if result.noc_stats is not None:
        print(result.noc_stats.describe())
    rows = [
        (labels.get("kernel", ""), h)
        for name, labels, h in tele.metrics.histograms()
        if name == "firing_latency_s"
    ]
    rows.sort(key=lambda kv: (-kv[1].total, kv[0]))
    if rows:
        print("kernel firing latency (firings / mean / p99):")
        for kernel, h in rows[:8]:
            print(f"  {kernel:<24} {h.count:>7} / {h.mean * 1e6:9.2f} us "
                  f"/ {h.quantile(0.99) * 1e6:9.2f} us")
    print()
    print(report.describe())
    if args.timeline:
        print()
        print(timeline(tele, width=args.width))
    if args.perfetto:
        print(f"wrote Perfetto trace to {args.perfetto}")
    if args.spans:
        print(f"wrote span stream to {args.spans}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    as_json = getattr(args, "json", False)
    if not as_json:
        print(f"{'bench':>6} | {'1:1 util':>9} | {'GM util':>9} | gain | meets")
    gains = []
    rows = []
    for bench in benchmark_suite():
        utils = {}
        counts = {}
        meets = True
        for mapping in ("1:1", "greedy"):
            compiled = compile_application(
                bench.application(), _processor(args),
                CompileOptions(mapping=mapping),
            )
            result = simulate(compiled, SimulationOptions(frames=bench.frames))
            verdict = result.verdict(
                bench.output, rate_hz=bench.rate_hz,
                chunks_per_frame=bench.chunks_per_frame, frames=bench.frames,
            )
            utils[mapping] = result.utilization.average_utilization
            counts[mapping] = compiled.processor_count
            meets = meets and verdict.meets
        gain = utils["greedy"] / utils["1:1"]
        gains.append(gain)
        if as_json:
            rows.append({
                "benchmark": bench.key,
                "title": bench.title,
                "rate_hz": bench.rate_hz,
                "utilization_1to1": utils["1:1"],
                "utilization_greedy": utils["greedy"],
                "processors_1to1": counts["1:1"],
                "processors_greedy": counts["greedy"],
                "gain": gain,
                "meets": meets,
            })
        else:
            print(f"{bench.key:>6} | {utils['1:1']:>9.1%} | "
                  f"{utils['greedy']:>9.1%} | {gain:.2f}x | "
                  f"{'yes' if meets else 'NO'}")
    geomean = statistics.geometric_mean(gains)
    if as_json:
        print(json.dumps({"rows": rows, "geometric_mean_gain": geomean},
                         indent=2))
    else:
        print(f"geometric-mean improvement: {geomean:.2f}x")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from .explore import (
        ResultCache,
        ResultStore,
        SweepOptions,
        load_spec,
        render_event,
        run_sweep,
    )

    spec = load_spec(args.spec)
    jobs = spec.jobs()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = ResultStore(args.store) if args.store else None
    resume = None
    if args.resume:
        from .explore import completed_records

        # Resume from a previous run's JSONL store: every fingerprint
        # with a successful record there is skipped, exactly like a
        # cache hit — the same logic the service applies (see
        # docs/serving.md on resumable sweeps).
        resume = completed_records(ResultStore(args.resume))
    quiet = args.json or args.quiet
    result = run_sweep(
        jobs,
        cache=cache,
        store=store,
        options=SweepOptions(workers=args.workers, retries=args.retries),
        on_event=None if quiet else render_event,
        resume=resume,
    )
    report = result.report()
    if args.json:
        print(json.dumps({
            "sweep": result.sweep,
            "jobs": len(jobs),
            "elapsed_s": result.elapsed_s,
            "cache_hits": result.cache_hits,
            **report.as_dict(),
        }, indent=2))
    else:
        print()
        print(report.describe())
    return 0 if result.failed == 0 else 1


def _serve_client(args: argparse.Namespace):
    from .serve import ServiceClient

    return ServiceClient(args.url)


#: Envelope types after which the watch progress line is re-printed
#: (the job-terminal events plus the run's own terminal event).
_PROGRESS_EVENTS = frozenset(
    {"JobCacheHit", "JobFinished", "JobFailed", "RunFinished"}
)


def _stream_run(client, run_id: str, as_json: bool) -> int:
    """Render a run's event stream; exit 0 iff it ends ``succeeded``.

    Uses the self-healing :meth:`ServiceClient.watch`: a connection
    reset mid-run resumes from the last envelope seen instead of
    silently truncating the stream (and misreporting the exit code).
    Human output folds the same envelopes through the dashboard's
    :class:`~repro.dash.MetricsAggregator` and prints a progress line
    (``done/total jobs, pct, jobs/s``) after each terminal job event —
    the fold, not raw envelope arithmetic, decides the numbers.
    """
    from .serve import decode_event

    aggregator = None
    if not as_json:
        from .dash import MetricsAggregator

        aggregator = MetricsAggregator()
    started = time.monotonic()
    status = None
    for envelope in client.watch(run_id):
        if as_json:
            print(json.dumps(envelope))
        else:
            aggregator.envelope(envelope)
            try:
                print(decode_event(envelope).describe())
            except ValueError:
                # Newer service, unknown event type: show, don't die.
                print(json.dumps(envelope))
            if envelope.get("event") in _PROGRESS_EVENTS:
                line = aggregator.progress_line(
                    run_id, elapsed_s=time.monotonic() - started,
                )
                if line is not None:
                    print(f"  {line}")
        if envelope.get("event") == "RunFinished":
            status = envelope.get("status")
    return 0 if status == "succeeded" else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServiceConfig, run_service

    chaos = None
    if args.chaos is not None:
        from .chaos import load_chaos_spec

        chaos = load_chaos_spec(args.chaos)
        if args.chaos_seed is not None:
            chaos = chaos.with_seed(args.chaos_seed)
    return run_service(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        config=ServiceConfig(
            workers=args.workers,
            retries=args.retries,
            retry_timeouts=args.retry_timeouts,
            heartbeat_s=args.heartbeat_s,
            quarantine_after=args.quarantine_after,
        ),
        chaos=chaos,
        dashboard=args.dashboard,
    )


def cmd_dash(args: argparse.Namespace) -> int:
    from .dash import MetricsAggregator, serve_dashboard

    if args.snapshot:
        aggregator = MetricsAggregator.from_data_dir(args.data_dir)
        print(aggregator.snapshot().canonical())
        return 0
    return serve_dashboard(args.data_dir, host=args.host, port=args.port)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos scenario matrix against live service instances."""
    # Lazy: the suite drives the full serve stack and is only needed
    # here (keeping ``import repro.chaos`` cheap and cycle-free).
    from .chaos.suite import run_matrix, write_report

    names = args.scenarios.split(",") if args.scenarios else None
    try:
        report = run_matrix(
            args.data_dir, seed=args.seed, names=names,
            announce=None if args.json else print,
        )
    except ValueError as exc:  # unknown scenario name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report is not None:
        write_report(report, args.report)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, default=str))
    else:
        print()
        print(report.describe())
    return 0 if report.ok else 1


def cmd_submit(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as fh:
        try:
            spec = json.load(fh)
        except json.JSONDecodeError as exc:
            print(f"error: sweep spec {args.spec!r} is not JSON: {exc}",
                  file=sys.stderr)
            return 2
    client = _serve_client(args)
    run = client.submit(spec, priority=args.priority, tenant=args.tenant)
    if args.json:
        # With --watch the stream itself is the machine-readable
        # output (it opens with the RunAccepted envelope).
        if not args.watch:
            print(json.dumps({"run": run}, indent=2))
            return 0
    else:
        print(f"accepted run {run['run']} ({run['name']!r}, "
              f"{run['total']} job(s), priority {run['priority']})")
    if args.watch:
        return _stream_run(client, run["run"], args.json)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    return _stream_run(_serve_client(args), args.run, args.json)


def cmd_jobs(args: argparse.Namespace) -> int:
    runs = _serve_client(args).runs()
    if args.json:
        print(json.dumps({"runs": runs}, indent=2))
        return 0
    if not runs:
        print("no runs")
        return 0
    print(f"{'run':>12} | {'name':>16} | {'state':>9} | {'status':>9} "
          f"| done | cached")
    for run in runs:
        print(f"{run['run']:>12} | {run['name']:>16} "
              f"| {run['state']:>9} | {run.get('status') or '-':>9} "
              f"| {run['done']}/{run['total']} | {run['cache_hits']}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    run = _serve_client(args).cancel(args.run)
    if args.json:
        print(json.dumps({"run": run}, indent=2))
    else:
        print(f"run {run['run']}: {run['state']}"
              + (f" ({run['status']})" if run.get("status") else ""))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Block-parallel compiler and simulator (ICPP 2010 repro)",
    )
    parser.add_argument("--clock-mhz", type=float, default=20.0,
                        help="processing-element clock (MHz)")
    parser.add_argument("--memory-words", type=int,
                        default=BENCHMARK_PROCESSOR.memory_words,
                        help="processing-element local store (words)")
    parser.add_argument("--mapping", choices=("greedy", "1:1"),
                        default="greedy")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Figure 13 benchmarks")

    p = sub.add_parser("describe", help="print a benchmark's logical graph")
    p.add_argument("key")

    p = sub.add_parser("compile", help="compile a benchmark and report")
    p.add_argument("key")

    p = sub.add_parser("simulate", help="compile and simulate a benchmark")
    p.add_argument("key")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--bench", action="store_true",
                   help="print simulator timing (wall, events/s, peak heap)")
    p.add_argument("--replay", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="detect the periodic steady state and replay whole "
                        "periods as a quasi-static schedule (bit-identical "
                        "results; see docs/performance.md)")
    p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="with --replay, execute a period's vectorizable "
                        "kernel firings as one batched call per kernel "
                        "(bit-identical results; --no-batch forces "
                        "per-firing replay)")
    p.add_argument("--faults", default=None, metavar="FILE",
                   help="inject a fault scenario (JSON FaultSpec file; "
                        "see docs/robustness.md)")
    p.add_argument("--fault-seed", type=int, default=None, dest="fault_seed",
                   help="override the fault spec's seed")
    p.add_argument("--spares", type=int, default=0,
                   help="spare processing elements reserved for migration")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on real-time violations or "
                        "unrecovered faults (CI gate)")
    p.add_argument("--perfetto", default=None, metavar="OUT",
                   help="record telemetry and write a Perfetto/Chrome "
                        "trace_event JSON file (load at ui.perfetto.dev)")
    p.add_argument("--spans", default=None, metavar="OUT",
                   help="record telemetry and write the span stream "
                        "as JSON lines")
    p.add_argument("--critical-path", action="store_true",
                   dest="critical_path",
                   help="record telemetry and report the critical path")
    _add_noc_args(p)

    p = sub.add_parser("dot", help="export a benchmark graph as Graphviz dot")
    p.add_argument("key")
    p.add_argument("--compiled", action="store_true",
                   help="export the compiled (transformed) graph")
    p.add_argument("--mapped", action="store_true",
                   help="cluster kernels by processing element (Figure 12)")

    p = sub.add_parser("schedule",
                       help="static SDF-style schedule and admission test")
    p.add_argument("key")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")

    p = sub.add_parser("energy", help="energy estimate for a benchmark")
    p.add_argument("key")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--place", action="store_true",
                   help="anneal a placement first (network energy uses it)")
    p.add_argument("--mesh", type=int, default=8, help="mesh side length")

    p = sub.add_parser("trace",
                       help="simulate and print a text Gantt chart")
    p.add_argument("key")
    p.add_argument("--frames", type=int, default=1)
    p.add_argument("--width", type=int, default=100)

    p = sub.add_parser(
        "profile",
        help="simulate with full telemetry: metrics, critical path, hints",
    )
    p.add_argument("key")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--perfetto", default=None, metavar="OUT",
                   help="write a Perfetto/Chrome trace_event JSON file")
    p.add_argument("--spans", default=None, metavar="OUT",
                   help="write the span stream as JSON lines")
    p.add_argument("--timeline", action="store_true",
                   help="print the text Gantt + channel occupancy view")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--faults", default=None, metavar="FILE",
                   help="inject a fault scenario (JSON FaultSpec file)")
    p.add_argument("--fault-seed", type=int, default=None, dest="fault_seed",
                   help="override the fault spec's seed")
    p.add_argument("--spares", type=int, default=0,
                   help="spare processing elements reserved for migration")
    _add_noc_args(p)

    p = sub.add_parser("suite", help="run the Figure 13 table")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")

    p = sub.add_parser(
        "explore",
        help="run a design-space sweep spec through the parallel engine",
    )
    p.add_argument("spec", help="path to a sweep spec JSON file")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = serial in-process, "
                        "-1 = one per CPU)")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts for transient job failures")
    p.add_argument("--cache-dir", default=".explore-cache",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="execute every job even when cached")
    p.add_argument("--store", default=None,
                   help="append terminal records to this JSONL file")
    p.add_argument("--resume", default=None, metavar="STORE",
                   help="skip jobs with a successful record in this "
                        "JSONL store from an earlier run (failures "
                        "retry); composes with the cache")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress events")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary output")

    from .serve import DEFAULT_PORT

    p = sub.add_parser(
        "serve",
        help="run the resident multi-tenant sweep service "
             "(see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help="listening port (0 = ephemeral)")
    p.add_argument("--data-dir", default=".repro-serve", dest="data_dir",
                   help="durable state: sharded cache, JSONL store, "
                        "run registry, event logs")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent jobs across all runs (each in its "
                        "own crash-isolated worker process)")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts for transient job failures")
    p.add_argument("--retry-timeouts", action="store_true",
                   dest="retry_timeouts",
                   help="retry timed-out jobs (default: terminal)")
    p.add_argument("--heartbeat-s", type=float, default=None,
                   dest="heartbeat_s", metavar="SECONDS",
                   help="watchdog: kill workers whose heartbeat file goes "
                        "stale for this long (default: off)")
    p.add_argument("--quarantine-after", type=int, default=3,
                   dest="quarantine_after", metavar="N",
                   help="park a job fingerprint after N consecutive "
                        "crashes instead of retrying forever (0 = off)")
    p.add_argument("--chaos", default=None, metavar="FILE",
                   help="arm deterministic fault injection from a "
                        "ChaosSpec JSON file (see docs/chaos.md)")
    p.add_argument("--chaos-seed", type=int, default=None,
                   dest="chaos_seed", metavar="N",
                   help="override the chaos spec's seed")
    p.add_argument("--dashboard", action="store_true",
                   help="aggregate live metrics and serve GET /v1/metrics "
                        "+ the /v1/dashboard web page (see "
                        "docs/dashboard.md)")

    p = sub.add_parser(
        "dash",
        help="serve the metrics dashboard over a sweep data dir, "
             "no scheduler needed (see docs/dashboard.md)",
    )
    p.add_argument("--data-dir", default=".repro-serve", dest="data_dir",
                   help="service data dir to aggregate (event logs + "
                        "JSONL store)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (0 = ephemeral)")
    p.add_argument("--snapshot", action="store_true",
                   help="print the canonical JSON metrics snapshot and "
                        "exit instead of serving")

    p = sub.add_parser(
        "chaos",
        help="run the fault-injection scenario matrix against live "
             "service instances (see docs/chaos.md)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="chaos seed; the whole matrix is bit-reproducible "
                        "per (scenario, seed)")
    p.add_argument("--scenarios", default="",
                   help="comma-separated scenario names (default: all)")
    p.add_argument("--data-dir", default=".repro-chaos", dest="data_dir",
                   help="scratch root; each scenario gets a subdirectory "
                        "with its service data dir and event logs")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="also write the full report as JSON to FILE")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")

    def _client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                       help="service base URL")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p = sub.add_parser("submit", help="submit a sweep spec to the service")
    p.add_argument("spec", help="path to a sweep spec JSON file")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first on the shared queue")
    p.add_argument("--tenant", default="",
                   help="tenant label recorded on the run and its records")
    p.add_argument("--watch", action="store_true",
                   help="stream the run's events until its terminal event")
    _client_args(p)

    p = sub.add_parser("watch", help="stream a run's typed progress events")
    p.add_argument("run", help="run id (from submit or jobs)")
    _client_args(p)

    p = sub.add_parser("jobs", help="list the service's runs")
    _client_args(p)

    p = sub.add_parser("cancel", help="cancel a run on the service")
    p.add_argument("run", help="run id (from submit or jobs)")
    _client_args(p)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "describe": cmd_describe,
    "compile": cmd_compile,
    "simulate": cmd_simulate,
    "dot": cmd_dot,
    "schedule": cmd_schedule,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "energy": cmd_energy,
    "suite": cmd_suite,
    "explore": cmd_explore,
    "serve": cmd_serve,
    "dash": cmd_dash,
    "chaos": cmd_chaos,
    "submit": cmd_submit,
    "watch": cmd_watch,
    "jobs": cmd_jobs,
    "cancel": cmd_cancel,
}


def main(argv: list[str] | None = None) -> int:
    from .errors import BlockParallelError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:  # unknown benchmark key
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into head/less and closed
        return 0
    except (OSError, BlockParallelError) as exc:
        # unreadable sweep spec, malformed spec, cache I/O failure, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
