"""``repro.dash`` — live metrics aggregation and the web dashboard.

The first consumer that composes the explore, serve, obs, faults, and
NoC surfaces in one place: :class:`MetricsAggregator` folds the typed
event stream (live via the scheduler's observer seam, or offline from a
data dir's NDJSON logs and JSONL store) into a deterministic
:class:`DashSnapshot`; :mod:`~.page` renders snapshots as a single-file
stdlib-only HTML dashboard; :mod:`~.standalone` serves both over a
completed (or still-growing) data dir without a scheduler.

The live wiring is ``repro serve --dashboard`` (``GET /v1/metrics`` and
``GET /v1/dashboard`` on the service's own HTTP front end, gated behind
the same ``is not None`` seam as faults/telemetry/chaos); the offline
wiring is ``repro dash``.  See ``docs/dashboard.md``.
"""

from .aggregate import MetricsAggregator, telemetry_drilldown
from .page import dashboard_page
from .snapshot import DASH_SCHEMA, DashSnapshot, canonical_json
from .standalone import DashServer, serve_dashboard

__all__ = [
    "DASH_SCHEMA",
    "DashSnapshot",
    "MetricsAggregator",
    "canonical_json",
    "dashboard_page",
    "telemetry_drilldown",
    "DashServer",
    "serve_dashboard",
]
