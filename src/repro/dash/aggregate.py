"""Fold the typed event stream and terminal records into snapshots.

:class:`MetricsAggregator` is a **pure consumer** with two inlets, both
mirroring seams that already exist:

* :meth:`envelope` — one wire envelope (``{"seq", "run", **event}``),
  exactly what :meth:`RunHandle.emit` appends to the per-run NDJSON
  event log.  Live, the aggregator is handed to
  :class:`~repro.serve.scheduler.SweepService` as its ``observer`` and
  sees each envelope right after it is persisted; offline,
  :meth:`from_data_dir` replays the same logs from disk.
* :meth:`record` — one terminal job record, exactly what lands in
  ``results.jsonl``.  Live it arrives from ``RunHandle.finish_job`` (the
  one-terminal-record-per-job narrowest point, in store-append order);
  offline it is read back from the store.

Counting rules match :class:`RunHandle` accounting bit for bit: a cache
hit is a success *and* a cache hit, a ``cancelled`` failure is counted
apart from other failures, and a ``quarantined`` failure counts as both
quarantined and failed.  ``RunFinished`` carries the authoritative final
counters and overwrites the incremental tallies, so a log truncated of
intermediate events still folds to the right terminal state.

Nothing in the fold reads a clock — see :mod:`.snapshot` — which is
what makes the live-terminal and offline-replay snapshots identical
(the acceptance test compares their canonical JSON).  The live snapshot
covers the current service lifetime; an offline fold covers everything
the data dir remembers, including previous lives.
"""

from __future__ import annotations

import os
from typing import Any

from .snapshot import DashSnapshot

__all__ = ["MetricsAggregator", "telemetry_drilldown"]

#: Events that close a job (exactly one per job per run).
_TERMINAL_JOB_EVENTS = ("JobCacheHit", "JobFinished", "JobFailed")


def _fresh_run(run_id: str) -> dict[str, Any]:
    return {
        "run": run_id,
        "name": "",
        "tenant": "",
        "priority": 0,
        "total": 0,
        "state": "unknown",
        "status": None,
        "done": 0,
        "succeeded": 0,
        "failed": 0,
        "cancelled": 0,
        "cache_hits": 0,
        "quarantined": 0,
        "retries": 0,
        "last_seq": 0,
        "elapsed_s": None,
        "jobs": {},
        "drilldown": [],
    }


def _reduce_record(record: dict[str, Any]) -> dict[str, Any]:
    """The deterministic subset of a terminal record the snapshot needs.

    Reducing on *both* inlets (live record dicts carry no ``schema``
    key; store lines do) normalizes away every transport difference, so
    the same record folds identically wherever it came from.
    """
    stats = record.get("stats") or {}
    reduced: dict[str, Any] = {
        "kind": record.get("kind", ""),
        "label": record.get("label", ""),
        "run": record.get("run", ""),
        "job": {"app": (record.get("job") or {}).get("app", "?")},
        "stats": {
            "meets": bool(stats.get("meets")),
            "rate_hz": stats.get("rate_hz") or 0.0,
            "processor_count": int(stats.get("processor_count") or 0),
            "avg_utilization": float(stats.get("avg_utilization") or 0.0),
        },
    }
    if record.get("cache_hit"):
        reduced["cache_hit"] = True
    if record.get("chaos"):
        reduced["chaos"] = True
    return reduced


def _drill_row(record: dict[str, Any]) -> dict[str, Any]:
    """One per-run drill-down row: the job's result axes plus whatever
    :mod:`repro.obs`/NoC accounting rode along on its record."""
    row: dict[str, Any] = {
        "label": record.get("label", ""),
        "kind": record.get("kind", ""),
        "cache_hit": bool(record.get("cache_hit")),
    }
    if record.get("kind") == "result":
        stats = record.get("stats") or {}
        row.update(
            processor_count=int(stats.get("processor_count") or 0),
            rate_hz=stats.get("rate_hz") or 0.0,
            meets=bool(stats.get("meets")),
            avg_utilization=float(stats.get("avg_utilization") or 0.0),
            makespan_s=stats.get("makespan_s"),
        )
        telemetry = stats.get("telemetry")
        if isinstance(telemetry, dict):
            row["critical_path"] = telemetry.get("critical_path")
        noc = stats.get("noc")
        if isinstance(noc, dict):
            row["noc"] = {
                "placement": noc.get("placement", ""),
                "mean_link_utilization": noc.get(
                    "mean_link_utilization", 0.0
                ),
                "worst_link": noc.get("worst_link"),
            }
    else:
        failure = record.get("failure") or {}
        row["failure"] = {
            "kind": failure.get("kind", "?"),
            "message": failure.get("message", ""),
        }
    return row


class MetricsAggregator:
    """Deterministic fold of envelopes + records into a snapshot.

    The two fold methods match the observer protocol the scheduler's
    ``observer`` seam calls (``envelope(dict)``, ``record(dict)``); the
    whole class is also usable offline via :meth:`from_data_dir`.  All
    live calls happen on the service's single event-loop thread, so no
    locking is needed; :meth:`snapshot` builds fresh dicts and may be
    called from the HTTP handler at any point between folds.
    """

    def __init__(self) -> None:
        self._runs: dict[str, dict[str, Any]] = {}
        #: Reduced terminal records, in store-append order.
        self._records: list[dict[str, Any]] = []

    # -- the two inlets ------------------------------------------------

    def envelope(self, envelope: dict[str, Any]) -> None:
        """Fold one wire envelope; duplicate/stale seqs are ignored."""
        run_id = str(envelope.get("run") or "")
        if not run_id:
            return
        entry = self._runs.setdefault(run_id, _fresh_run(run_id))
        try:
            seq = int(envelope.get("seq", 0))
        except (TypeError, ValueError):
            return
        if seq <= entry["last_seq"]:
            return  # replayed overlap (e.g. a reconnecting watch)
        entry["last_seq"] = seq
        name = envelope.get("event")
        label = envelope.get("label", "")
        if name == "RunAccepted":
            entry["name"] = envelope.get("label", entry["name"])
            entry["total"] = int(envelope.get("total") or 0)
            entry["tenant"] = envelope.get("tenant", "")
            entry["priority"] = int(envelope.get("priority") or 0)
            entry["state"] = "accepted"
        elif name == "RunStateChanged":
            entry["state"] = envelope.get("state", entry["state"])
        elif name == "JobScheduled":
            entry["jobs"][label] = "queued"
        elif name == "JobStarted":
            entry["jobs"][label] = "running"
        elif name == "JobRetried":
            entry["retries"] += 1
            entry["jobs"][label] = "retrying"
        elif name == "JobCacheHit":
            entry["jobs"][label] = "cached"
            entry["done"] += 1
            entry["succeeded"] += 1
            entry["cache_hits"] += 1
        elif name == "JobFinished":
            entry["jobs"][label] = "done"
            entry["done"] += 1
            entry["succeeded"] += 1
        elif name == "JobFailed":
            kind = envelope.get("kind", "error")
            entry["done"] += 1
            if kind == "cancelled":
                entry["jobs"][label] = "cancelled"
                entry["cancelled"] += 1
            elif kind == "quarantined":
                entry["jobs"][label] = "quarantined"
                entry["quarantined"] += 1
                entry["failed"] += 1
            else:
                entry["jobs"][label] = "failed"
                entry["failed"] += 1
        elif name == "RunFinished":
            # Authoritative terminal counters overwrite the tallies.
            entry["state"] = "terminal"
            entry["status"] = envelope.get("status")
            entry["total"] = int(envelope.get("total") or entry["total"])
            entry["succeeded"] = int(envelope.get("succeeded") or 0)
            entry["failed"] = int(envelope.get("failed") or 0)
            entry["cancelled"] = int(envelope.get("cancelled") or 0)
            entry["cache_hits"] = int(envelope.get("cache_hits") or 0)
            entry["done"] = (entry["succeeded"] + entry["failed"]
                             + entry["cancelled"])
            elapsed = envelope.get("elapsed_s")
            entry["elapsed_s"] = (float(elapsed)
                                  if elapsed is not None else None)
        # Unknown event types still advanced last_seq: forward compat.

    def record(self, record: dict[str, Any]) -> None:
        """Fold one terminal job record (store line or live dict)."""
        self._records.append(_reduce_record(record))
        run_id = str(record.get("run") or "")
        if run_id:
            # Cache-hit records keep the run id of the execution that
            # produced them, so a hit served across runs drills down
            # under the primary — the run whose worker did the work.
            entry = self._runs.setdefault(run_id, _fresh_run(run_id))
            entry["drilldown"].append(_drill_row(record))

    # -- offline construction ------------------------------------------

    @classmethod
    def from_data_dir(cls, data_dir: str | os.PathLike[str],
                      ) -> "MetricsAggregator":
        """Replay a service data dir: every per-run NDJSON event log,
        then the result store, through the same two inlets."""
        from ..serve.storage import ServiceStorage

        storage = ServiceStorage(data_dir)
        aggregator = cls()
        log_paths = sorted(storage.events_dir.glob("*.ndjson"))
        for path in log_paths:
            for envelope in storage.read_events(path.stem):
                aggregator.envelope(envelope)
        for record in storage.store:
            aggregator.record(record)
        return aggregator

    # -- products ------------------------------------------------------

    def snapshot(self) -> DashSnapshot:
        from ..explore.store import SweepReport

        runs = []
        totals = {
            "runs": len(self._runs),
            "active": 0,
            "jobs": 0,
            "done": 0,
            "succeeded": 0,
            "failed": 0,
            "cancelled": 0,
            "cache_hits": 0,
            "quarantined": 0,
            "retries": 0,
            "events": 0,
        }
        for run_id in sorted(self._runs):
            entry = self._runs[run_id]
            view = {**entry, "jobs": dict(entry["jobs"]),
                    "drilldown": list(entry["drilldown"])}
            elapsed = entry["elapsed_s"]
            if elapsed is not None and elapsed > 0:
                view["jobs_per_s"] = entry["done"] / elapsed
                view["events_per_s"] = entry["last_seq"] / elapsed
            else:
                view["jobs_per_s"] = None
                view["events_per_s"] = None
            runs.append(view)
            if entry["state"] not in ("terminal", "unknown"):
                totals["active"] += 1
            totals["jobs"] += entry["total"]
            for key in ("done", "succeeded", "failed", "cancelled",
                        "cache_hits", "quarantined", "retries"):
                totals[key] += entry[key]
            totals["events"] += entry["last_seq"]
        totals["cache_hit_ratio"] = (
            totals["cache_hits"] / totals["done"]
            if totals["done"] > 0 else None
        )
        report = SweepReport(records=self._records)
        totals["records"] = {
            "total": len(self._records),
            "results": len(report.results),
            "failures": len(report.failures),
            "cache_hits": report.cache_hits,
            "chaos": sum(1 for r in self._records if r.get("chaos")),
        }
        return DashSnapshot(
            runs=runs,
            totals=totals,
            frontier=report.frontier(),
            utilization_by_processors=report.utilization_by_processors(),
        )

    def progress(self, run_id: str) -> dict[str, Any] | None:
        """Progress counters of one run — the ``repro watch`` fold."""
        entry = self._runs.get(run_id)
        if entry is None:
            return None
        total = entry["total"]
        done = entry["done"]
        return {
            "done": done,
            "total": total,
            "pct": (100.0 * done / total) if total > 0 else 0.0,
            "elapsed_s": entry["elapsed_s"],
        }

    def progress_line(self, run_id: str, *,
                      elapsed_s: float | None = None) -> str | None:
        """Human progress line: ``[done/total jobs, pct, jobs/s]``.

        The rate uses the run's own terminal ``elapsed_s`` when it has
        one (deterministic, travels in the event stream) and the
        caller-supplied wall-clock ``elapsed_s`` while the run is still
        live; with neither, the rate is omitted.
        """
        progress = self.progress(run_id)
        if progress is None:
            return None
        elapsed = progress["elapsed_s"]
        if elapsed is None:
            elapsed = elapsed_s
        head = (f"[{progress['done']}/{progress['total']} jobs, "
                f"{progress['pct']:.0f}%")
        if elapsed is not None and elapsed > 0:
            return f"{head}, {progress['done'] / elapsed:.2f} jobs/s]"
        return f"{head}]"


def telemetry_drilldown(telemetry: Any) -> dict[str, Any]:
    """Per-run drill-down views from one simulation's full telemetry.

    Composes the :mod:`repro.obs` surfaces into the three panels the
    dashboard's deep view draws: structured timeline rows (who ran when,
    per processing element), the reconstructed critical path with its
    full segment list, and the NoC link heatmap (per-link busy seconds
    and utilization from the link-occupancy intervals the NoC model
    reported).  Pure function of the telemetry — identical telemetry
    yields identical JSON.
    """
    from ..obs import analyze_critical_path, timeline_rows

    path = analyze_critical_path(telemetry)
    makespan = telemetry.makespan_s
    busy_by_link: dict[str, float] = {}
    for label, start, end in telemetry.link_occupancy:
        busy_by_link[label] = busy_by_link.get(label, 0.0) + (end - start)
    links = [
        {
            "link": label,
            "busy_s": busy,
            "utilization": busy / makespan if makespan > 0 else 0.0,
        }
        for label, busy in sorted(busy_by_link.items())
    ]
    return {
        "makespan_s": makespan,
        "timeline": timeline_rows(telemetry),
        "critical_path": {
            **path.as_dict(),
            "segments": path.segments_as_dicts(),
        },
        "noc_links": links,
    }
