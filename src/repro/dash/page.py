"""The single-file dashboard page — stdlib-served, zero dependencies.

One self-contained HTML document (inline CSS + vanilla JS, no external
assets, no CDN) that renders ``GET /v1/metrics`` snapshots: a KPI row,
the runs table with progress meters, the Figure 11 frontier scatter and
Figure 13 utilization bars on ``<canvas>``, and a per-run drill-down
table.  It polls the metrics endpoint and — against a live ``repro
serve --dashboard`` — additionally subscribes to active runs' SSE event
streams (the existing ``/v1/runs/<id>/events`` endpoint) to refresh the
instant something happens, falling back to polling alone against the
standalone ``repro dash`` server, which has no event streams.

Charts follow the repo's dataviz conventions: the first three slots of
the validated categorical palette (all-pairs CVD-safe in both modes)
identify apps on the scatter with a legend plus a gray "other" fold
past three; utilization is a single-hue sequential ramp; run/job states
use the reserved status palette and always pair the color with a text
label.  Light and dark palettes are both explicit (``prefers-color-
scheme``), not an automatic flip.
"""

from __future__ import annotations

__all__ = ["dashboard_page"]

_PAGE = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dash</title>
<style>
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --other: #898781;
  --seq-150: #b7d3f6; --seq-300: #6da7ec; --seq-450: #2a78d6;
  --seq-600: #184f95;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --seq-150: #0d366b; --seq-300: #1c5cab; --seq-450: #3987e5;
    --seq-600: #86b6ef;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header {
  display: flex; align-items: baseline; gap: 12px;
  padding: 14px 20px 4px;
}
header h1 { font-size: 18px; margin: 0; font-weight: 650; }
#conn { color: var(--muted); font-size: 12px; }
main { padding: 8px 20px 28px; max-width: 1180px; margin: 0 auto; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 0 16px; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 132px; flex: 1;
}
.tile .k { color: var(--ink-2); font-size: 12px; }
.tile .v { font-size: 26px; font-weight: 650; margin-top: 2px; }
.tile .s { color: var(--muted); font-size: 12px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; margin-bottom: 16px;
}
.card h2 { font-size: 13px; color: var(--ink-2); margin: 0 0 8px;
  font-weight: 600; }
.charts { display: grid; grid-template-columns: 1fr 1fr; gap: 16px; }
@media (max-width: 900px) { .charts { grid-template-columns: 1fr; } }
canvas { width: 100%; height: 240px; display: block; }
table { border-collapse: collapse; width: 100%; font-variant-numeric:
  tabular-nums; }
th, td { text-align: left; padding: 5px 10px 5px 0; }
th { color: var(--muted); font-size: 12px; font-weight: 500;
  border-bottom: 1px solid var(--grid); }
td { border-bottom: 1px solid var(--grid); }
tr.sel td { background: color-mix(in srgb, var(--series-1) 8%,
  transparent); }
#runs tbody tr { cursor: pointer; }
.meter {
  height: 8px; border-radius: 4px; background: var(--grid);
  min-width: 90px; overflow: hidden;
}
.meter > i { display: block; height: 100%; border-radius: 4px;
  background: var(--seq-450); }
.st { display: inline-flex; align-items: center; gap: 6px; }
.st::before {
  content: ""; width: 8px; height: 8px; border-radius: 50%;
  background: var(--dot, var(--muted)); flex: none;
}
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin-top: 6px;
  color: var(--ink-2); font-size: 12px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
#tip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface); color: var(--ink);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 5px 9px; font-size: 12px;
  box-shadow: 0 2px 10px rgba(0, 0, 0, 0.18);
}
.empty { color: var(--muted); padding: 14px 0; }
</style>
</head>
<body>
<header>
  <h1>repro dash</h1>
  <span id="conn">connecting…</span>
</header>
<main>
  <div class="tiles" id="tiles"></div>
  <div class="card">
    <h2>Runs</h2>
    <div id="runs"></div>
  </div>
  <div class="charts">
    <div class="card">
      <h2>Best-rate frontier (meets real-time)</h2>
      <canvas id="frontier"></canvas>
      <div class="legend" id="frontier-legend"></div>
    </div>
    <div class="card">
      <h2>Mean utilization vs processor count</h2>
      <canvas id="util"></canvas>
    </div>
  </div>
  <div class="card">
    <h2 id="drill-title">Run drill-down</h2>
    <div id="drill"></div>
  </div>
</main>
<div id="tip"></div>
<script>
"use strict";
const METRICS_URL = "/v1/metrics";
const POLL_MS = 2500;
const css = (name) =>
  getComputedStyle(document.documentElement).getPropertyValue(name).trim();
const esc = (s) => String(s).replace(/[&<>"]/g, (c) =>
  ({"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[c]));

let snapshot = null;
let selectedRun = null;
let lastPoll = null;       // {t, done} for the client-side live rate
let liveRate = null;
const streams = new Map(); // run id -> EventSource

// -- status palette: color + label together, never color alone --------
const RUN_STATUS = {
  succeeded: ["--good", "succeeded"], failed: ["--critical", "failed"],
  cancelled: ["--serious", "cancelled"],
};
const RUN_STATE = {
  accepted: ["--muted", "accepted"], queued: ["--warning", "queued"],
  executing: ["--series-1", "executing"],
  draining: ["--serious", "draining"], unknown: ["--muted", "recorded"],
};
const JOB_STATE = {
  queued: ["--warning", "queued"], running: ["--series-1", "running"],
  retrying: ["--serious", "retrying"], cached: ["--good", "cached"],
  done: ["--good", "done"], failed: ["--critical", "failed"],
  cancelled: ["--serious", "cancelled"],
  quarantined: ["--critical", "quarantined"],
};
function badge(map, key) {
  const [color, label] = map[key] || ["--muted", key || "?"];
  return `<span class="st" style="--dot: var(${color})">${esc(label)}`
    + `</span>`;
}

// -- KPI tiles --------------------------------------------------------
function tile(k, v, s) {
  return `<div class="tile"><div class="k">${k}</div>` +
    `<div class="v">${v}</div><div class="s">${s || "&nbsp;"}</div></div>`;
}
function renderTiles(t) {
  const ratio = t.cache_hit_ratio;
  const rate = liveRate != null ? liveRate.toFixed(2) + " jobs/s"
    : "&mdash;";
  document.getElementById("tiles").innerHTML =
    tile("Runs", t.runs, `${t.active} active`) +
    tile("Jobs", `${t.done}<span style="color: var(--muted); ` +
      `font-size: 16px">/${t.jobs}</span>`,
      `${t.succeeded} ok · ${t.failed} failed`) +
    tile("Cache hit ratio",
      ratio == null ? "&mdash;" : (100 * ratio).toFixed(0) + "%",
      `${t.cache_hits} hit(s)`) +
    tile("Throughput", rate, `${t.events} event(s)`) +
    tile("Retries", t.retries, `${t.quarantined} quarantined`);
}

// -- runs table -------------------------------------------------------
function renderRuns(runs) {
  const el = document.getElementById("runs");
  if (!runs.length) {
    el.innerHTML = '<div class="empty">No runs yet — submit one with ' +
      '<code>repro submit</code>.</div>';
    return;
  }
  const rows = runs.map((r) => {
    const pct = r.total > 0 ? (100 * r.done / r.total) : 0;
    const stat = r.status ? badge(RUN_STATUS, r.status)
      : badge(RUN_STATE, r.state);
    const rate = r.jobs_per_s != null ? r.jobs_per_s.toFixed(2) : "–";
    const sel = r.run === selectedRun ? ' class="sel"' : "";
    return `<tr data-run="${esc(r.run)}"${sel}>` +
      `<td><code>${esc(r.run)}</code></td><td>${esc(r.name)}</td>` +
      `<td>${stat}</td>` +
      `<td><div class="meter"><i style="width: ${pct}%"></i></div></td>` +
      `<td>${r.done}/${r.total}</td><td>${r.cache_hits}</td>` +
      `<td>${r.retries}</td><td>${rate}</td></tr>`;
  }).join("");
  el.innerHTML = "<table><thead><tr><th>run</th><th>name</th>" +
    "<th>status</th><th>progress</th><th>jobs</th><th>cached</th>" +
    "<th>retries</th><th>jobs/s</th></tr></thead><tbody>" + rows +
    "</tbody></table>";
  el.querySelectorAll("tbody tr").forEach((tr) => {
    tr.addEventListener("click", () => {
      selectedRun = tr.dataset.run;
      render();
    });
  });
}

// -- canvas plumbing --------------------------------------------------
function setupCanvas(canvas) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr;
  canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, w, h);
  return {ctx, w, h};
}
function axes(ctx, area, xTicks, yTicks, fmtX, fmtY) {
  ctx.strokeStyle = css("--grid");
  ctx.fillStyle = css("--muted");
  ctx.font = "11px system-ui, sans-serif";
  ctx.lineWidth = 1;
  yTicks.forEach(({v, y}) => {
    ctx.beginPath();
    ctx.moveTo(area.x0, y);
    ctx.lineTo(area.x1, y);
    ctx.stroke();
    ctx.textAlign = "right";
    ctx.textBaseline = "middle";
    ctx.fillText(fmtY(v), area.x0 - 6, y);
  });
  xTicks.forEach(({v, x}) => {
    ctx.textAlign = "center";
    ctx.textBaseline = "top";
    ctx.fillText(fmtX(v), x, area.y1 + 6);
  });
  ctx.strokeStyle = css("--axis");
  ctx.beginPath();
  ctx.moveTo(area.x0, area.y1);
  ctx.lineTo(area.x1, area.y1);
  ctx.stroke();
}
function niceTicks(max, count) {
  if (!(max > 0)) return [1];
  const step = Math.pow(10, Math.floor(Math.log10(max / count)));
  const err = max / count / step;
  const mult = err >= 5 ? 10 : err >= 2 ? 5 : err >= 1 ? 2 : 1;
  const s = step * mult;
  const out = [];
  for (let v = 0; v <= max + 1e-9; v += s) out.push(v);
  return out;
}

const tipEl = document.getElementById("tip");
function hover(canvas, targets) {
  canvas.onmousemove = (ev) => {
    const rect = canvas.getBoundingClientRect();
    const mx = ev.clientX - rect.left, my = ev.clientY - rect.top;
    let best = null, bestD = 18 * 18;  // hit target bigger than mark
    targets.forEach((t) => {
      const d = (t.x - mx) * (t.x - mx) + (t.y - my) * (t.y - my);
      if (d < bestD) { best = t; bestD = d; }
    });
    if (best) {
      tipEl.innerHTML = best.text;
      tipEl.style.display = "block";
      tipEl.style.left = (ev.clientX + 12) + "px";
      tipEl.style.top = (ev.clientY + 12) + "px";
    } else tipEl.style.display = "none";
  };
  canvas.onmouseleave = () => { tipEl.style.display = "none"; };
}

// -- frontier scatter: categorical per app, capped at three -----------
function renderFrontier(points) {
  const canvas = document.getElementById("frontier");
  const {ctx, w, h} = setupCanvas(canvas);
  const legend = document.getElementById("frontier-legend");
  if (!points.length) {
    ctx.fillStyle = css("--muted");
    ctx.font = "12px system-ui, sans-serif";
    ctx.fillText("no meeting points yet", 12, 24);
    legend.innerHTML = "";
    hover(canvas, []);
    return;
  }
  const apps = [...new Set(points.map((p) => p.app))].sort();
  const slots = ["--series-1", "--series-2", "--series-3"];
  const colorOf = (app) => {
    const i = apps.indexOf(app);
    return css(i < slots.length ? slots[i] : "--other");
  };
  const area = {x0: 46, x1: w - 10, y0: 12, y1: h - 26};
  const maxX = Math.max(...points.map((p) => p.processor_count)) * 1.08;
  const maxY = Math.max(...points.map((p) => p.rate_hz)) * 1.12;
  const X = (v) => area.x0 + (v / maxX) * (area.x1 - area.x0);
  const Y = (v) => area.y1 - (v / maxY) * (area.y1 - area.y0);
  axes(ctx, area,
    niceTicks(maxX, 6).map((v) => ({v, x: X(v)})),
    niceTicks(maxY, 4).map((v) => ({v, y: Y(v)})),
    (v) => v.toFixed(0), (v) => v.toFixed(0));
  const targets = [];
  const surface = css("--surface");
  points.forEach((p) => {
    const x = X(p.processor_count), y = Y(p.rate_hz);
    ctx.beginPath();                       // 2px surface ring on marks
    ctx.arc(x, y, 6, 0, 2 * Math.PI);
    ctx.fillStyle = surface;
    ctx.fill();
    ctx.beginPath();
    ctx.arc(x, y, 4.5, 0, 2 * Math.PI);
    ctx.fillStyle = colorOf(p.app);
    ctx.fill();
    targets.push({x, y, text: `<b>${esc(p.app)}</b> · ` +
      `${esc(p.label)}<br>${p.processor_count} PEs · ` +
      `${p.rate_hz.toFixed(1)} Hz`});
  });
  hover(canvas, targets);
  legend.innerHTML = apps.map((app, i) => {
    const color = i < slots.length ? `var(${slots[i]})` : "var(--other)";
    const name = i < slots.length ? esc(app) : esc(app) + " (other)";
    return `<span><span class="sw" style="background: ${color}"></span>` +
      `${name}</span>`;
  }).join("");
}

// -- utilization bars: one sequential hue -----------------------------
function renderUtil(rows) {
  const canvas = document.getElementById("util");
  const {ctx, w, h} = setupCanvas(canvas);
  if (!rows.length) {
    ctx.fillStyle = css("--muted");
    ctx.font = "12px system-ui, sans-serif";
    ctx.fillText("no results yet", 12, 24);
    hover(canvas, []);
    return;
  }
  const area = {x0: 46, x1: w - 10, y0: 12, y1: h - 26};
  const Y = (v) => area.y1 - v * (area.y1 - area.y0);
  axes(ctx, area, [],
    [0, 0.25, 0.5, 0.75, 1].map((v) => ({v, y: Y(v)})),
    (v) => v, (v) => (100 * v).toFixed(0) + "%");
  const n = rows.length;
  const span = (area.x1 - area.x0) / n;
  const bw = Math.min(44, Math.max(8, span - 2));  // 2px surface gap
  const targets = [];
  rows.forEach((r, i) => {
    const x = area.x0 + span * i + (span - bw) / 2;
    const y = Y(r.mean_utilization);
    ctx.fillStyle = css("--seq-450");
    ctx.beginPath();                // rounded data end, flat baseline
    ctx.roundRect(x, y, bw, area.y1 - y, [4, 4, 0, 0]);
    ctx.fill();
    ctx.fillStyle = css("--muted");
    ctx.font = "11px system-ui, sans-serif";
    ctx.textAlign = "center";
    ctx.textBaseline = "top";
    ctx.fillText(String(r.processor_count), x + bw / 2, area.y1 + 6);
    targets.push({x: x + bw / 2, y,
      text: `<b>${r.processor_count} PEs</b><br>` +
        `${(100 * r.mean_utilization).toFixed(1)}% mean over ` +
        `${r.points} point(s)`});
  });
  hover(canvas, targets);
}

// -- per-run drill-down -----------------------------------------------
function heatCell(u) {
  if (u == null) return "<td>–</td>";
  const steps = ["--seq-150", "--seq-300", "--seq-450", "--seq-600"];
  const step = steps[Math.min(3, Math.floor(u * 4))];
  return `<td><span class="sw" style="background: var(${step})"></span>` +
    `${(100 * u).toFixed(0)}%</td>`;
}
function renderDrill(runs) {
  const el = document.getElementById("drill");
  const title = document.getElementById("drill-title");
  const run = runs.find((r) => r.run === selectedRun) || runs[0];
  if (!run) {
    title.textContent = "Run drill-down";
    el.innerHTML = '<div class="empty">No run selected.</div>';
    return;
  }
  selectedRun = run.run;
  title.textContent = `Run drill-down — ${run.run} (${run.name})`;
  const byLabel = new Map(run.drilldown.map((d) => [d.label, d]));
  const labels = Object.keys(run.jobs);
  if (!labels.length) {
    el.innerHTML = '<div class="empty">No job events yet.</div>';
    return;
  }
  const rows = labels.map((label) => {
    const d = byLabel.get(label);
    const state = badge(JOB_STATE, run.jobs[label]);
    if (!d || d.kind !== "result") {
      const why = d && d.failure
        ? esc(`${d.failure.kind}: ${d.failure.message}`) : "";
      return `<tr><td>${esc(label)}</td><td>${state}</td>` +
        `<td colspan="4" style="color: var(--muted)">${why}</td>` +
        `<td>–</td></tr>`;
    }
    const meets = d.meets
      ? `<span class="st" style="--dot: var(--good)">meets</span>`
      : `<span class="st" style="--dot: var(--critical)">misses</span>`;
    const bound = d.critical_path ? esc(d.critical_path.bound) : "–";
    const worst = d.noc && d.noc.worst_link
      ? d.noc.worst_link.utilization : null;
    return `<tr><td>${esc(label)}${d.cache_hit ? " ⤺" : ""}</td>` +
      `<td>${state}</td><td>${d.processor_count}</td>` +
      `<td>${d.rate_hz.toFixed(1)}</td>` +
      `<td>${(100 * d.avg_utilization).toFixed(1)}%</td>` +
      `<td>${meets} · ${bound}</td>${heatCell(worst)}</tr>`;
  }).join("");
  el.innerHTML = "<table><thead><tr><th>job</th><th>state</th>" +
    "<th>PEs</th><th>rate Hz</th><th>util</th>" +
    "<th>verdict · bound</th><th>worst link</th></tr></thead><tbody>" +
    rows + "</tbody></table>";
}

// -- refresh loop: poll + SSE nudges ----------------------------------
function render() {
  if (!snapshot) return;
  renderTiles(snapshot.totals);
  renderRuns(snapshot.runs);
  renderFrontier(snapshot.frontier);
  renderUtil(snapshot.utilization_by_processors);
  renderDrill(snapshot.runs);
}
async function refresh() {
  try {
    const res = await fetch(METRICS_URL, {cache: "no-store"});
    if (!res.ok) throw new Error("HTTP " + res.status);
    snapshot = await res.json();
    const now = performance.now();
    if (lastPoll && snapshot.totals.done > lastPoll.done) {
      liveRate = (snapshot.totals.done - lastPoll.done) /
        ((now - lastPoll.t) / 1000);
    } else if (!snapshot.totals.active) {
      liveRate = null;
    }
    lastPoll = {t: now, done: snapshot.totals.done};
    document.getElementById("conn").textContent =
      `live · ${snapshot.totals.events} events`;
    syncStreams();
    render();
  } catch (err) {
    document.getElementById("conn").textContent =
      "disconnected (" + err.message + ")";
  }
}
let nudge = null;
function onStreamEvent() {
  if (nudge) return;  // debounce bursts into one refresh
  nudge = setTimeout(() => { nudge = null; refresh(); }, 200);
}
let streamsAvailable = null;
async function detectStreams() {
  try {
    const res = await fetch("/healthz", {cache: "no-store"});
    const health = await res.json();
    // The live service reports its queue; standalone `repro dash`
    // reports mode "dash" and has no event streams to subscribe to.
    streamsAvailable = health.mode !== "dash";
  } catch (err) {
    streamsAvailable = false;
  }
}
function syncStreams() {
  if (!streamsAvailable || !snapshot || !window.EventSource) return;
  const active = new Set(snapshot.runs
    .filter((r) => r.state !== "terminal" && r.state !== "unknown")
    .map((r) => r.run));
  for (const [id, es] of streams) {
    if (!active.has(id)) { es.close(); streams.delete(id); }
  }
  for (const id of active) {
    if (streams.has(id)) continue;
    const es = new EventSource(`/v1/runs/${id}/events`);
    es.onmessage = onStreamEvent;
    streams.set(id, es);
  }
}
window.addEventListener("resize", render);
document.addEventListener("visibilitychange", () => {
  if (!document.hidden) refresh();
});
detectStreams().then(refresh);
setInterval(() => { if (!document.hidden) refresh(); }, POLL_MS);
</script>
</body>
</html>
"""


def dashboard_page() -> str:
    """The dashboard HTML document, ready to serve as ``text/html``."""
    return _PAGE
