"""The deterministic product of metrics aggregation.

A :class:`DashSnapshot` is everything the dashboard (or a CI assertion)
needs to render one moment of a service's life: per-run job states and
counters, throughput, cache economics, the Figure 11 frontier, and the
Figure 13 utilization bars.  It is **plain data by construction** — no
wall-clock reads, no object references — so the same event stream folds
to the same snapshot whether it was observed live (the in-process
subscriber seam on :class:`~repro.serve.scheduler.SweepService`) or
replayed offline from the data dir's NDJSON event logs.  The acceptance
test pins exactly that: live terminal snapshot == offline replay,
compared as canonical JSON.

Throughput is derived from ``RunFinished.elapsed_s`` — the one duration
that travels *in* the event stream — never from the aggregator's own
clock, which is what keeps live and offline folds bit-identical.  A run
that has not finished reports ``null`` rates; live progress rates (the
``repro watch`` progress line) are computed by the *caller* against its
own wall clock via :meth:`~repro.dash.aggregate.MetricsAggregator.progress`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["DASH_SCHEMA", "DashSnapshot", "canonical_json"]

#: Version of the snapshot payload served at ``GET /v1/metrics``.
DASH_SCHEMA = 1


def canonical_json(data: Any) -> str:
    """One canonical serialization: sorted keys, no whitespace.

    Two snapshots are *the same* iff their canonical JSON matches —
    the comparison form of the live-equals-offline acceptance test and
    of the CI smoke job's artifact.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      default=str)


@dataclass(slots=True)
class DashSnapshot:
    """One deterministic moment of aggregated service state."""

    #: Per-run summaries, sorted by run id (see ``MetricsAggregator``).
    runs: list[dict[str, Any]] = field(default_factory=list)
    #: Fleet-wide counters summed over every run.
    totals: dict[str, Any] = field(default_factory=dict)
    #: Best achieved rate per (app, processor count) — Figure 11 axes.
    frontier: list[dict[str, Any]] = field(default_factory=list)
    #: Mean utilization per processor count — Figure 13 axes.
    utilization_by_processors: list[dict[str, Any]] = field(
        default_factory=list
    )

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe payload of ``GET /v1/metrics``."""
        return {
            "dash_schema": DASH_SCHEMA,
            "totals": self.totals,
            "runs": self.runs,
            "frontier": self.frontier,
            "utilization_by_processors": self.utilization_by_processors,
        }

    def canonical(self) -> str:
        return canonical_json(self.as_dict())

    def run(self, run_id: str) -> dict[str, Any] | None:
        for entry in self.runs:
            if entry.get("run") == run_id:
                return entry
        return None

    def describe(self) -> str:
        """Terminal-friendly one-screen summary (``repro dash --text``)."""
        t = self.totals
        lines = [
            f"{t.get('runs', 0)} run(s), {t.get('active', 0)} active | "
            f"jobs {t.get('done', 0)}/{t.get('jobs', 0)}: "
            f"{t.get('succeeded', 0)} ok, {t.get('failed', 0)} failed, "
            f"{t.get('cancelled', 0)} cancelled, "
            f"{t.get('cache_hits', 0)} from cache"
        ]
        ratio = t.get("cache_hit_ratio")
        if ratio is not None:
            lines.append(f"cache hit ratio: {ratio:.1%}")
        for entry in self.runs:
            status = entry.get("status") or entry.get("state") or "?"
            rate = entry.get("jobs_per_s")
            rate_text = f", {rate:.2f} jobs/s" if rate else ""
            lines.append(
                f"  {entry['run']:>12} | {entry.get('name', '?'):>16} "
                f"| {status:>9} | {entry.get('done', 0)}"
                f"/{entry.get('total', 0)} job(s){rate_text}"
            )
        return "\n".join(lines)
