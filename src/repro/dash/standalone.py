"""Standalone dashboard server over a service data dir.

``repro dash`` serves the same ``/v1/metrics`` + ``/v1/dashboard``
surface as ``repro serve --dashboard``, but with no scheduler behind it:
every metrics request re-folds the data dir (per-run NDJSON event logs
plus ``results.jsonl``) through :class:`~.aggregate.MetricsAggregator`.
That makes it useful both post-mortem — point it at a completed sweep's
directory — and quasi-live, watching a directory another ``repro
serve``/``repro explore`` process is still writing, without touching
that process at all.

Built on ``http.server.ThreadingHTTPServer`` (stdlib, blocking, one
thread per request) because there is no asyncio service to share a loop
with here.  The live path stays on the asyncio front end in
:mod:`repro.serve.http`.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .aggregate import MetricsAggregator
from .page import dashboard_page

__all__ = ["DashServer", "serve_dashboard"]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Set by :class:`DashServer` on the handler class it instantiates.
    data_dir: str = "."

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
        self._send(status, "application/json", body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                from .. import __version__

                self._send_json(200, {
                    "ok": True,
                    "mode": "dash",
                    "version": __version__,
                    "data_dir": str(self.data_dir),
                })
            elif path == "/v1/metrics":
                # Re-fold per request: the dir may still be growing.
                aggregator = MetricsAggregator.from_data_dir(self.data_dir)
                self._send_json(200, aggregator.snapshot().as_dict())
            elif path in ("/", "/v1/dashboard"):
                self._send(200, "text/html; charset=utf-8",
                           dashboard_page().encode("utf-8"))
            else:
                self._send_json(404, {"error": f"no route GET {path}"})
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - boundary
            try:
                self._send_json(500, {
                    "error": f"{type(exc).__name__}: {exc}",
                })
            except OSError:
                pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # no per-request stderr chatter


class DashServer:
    """A standalone dashboard server bound to one data dir."""

    def __init__(self, data_dir: str | os.PathLike[str], *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("_BoundHandler", (_Handler,),
                       {"data_dir": str(data_dir)})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._serving = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`/SIGINT."""
        self._serving = True
        self._httpd.serve_forever(poll_interval=0.2)

    def start(self) -> "DashServer":
        """Serve on a background daemon thread; returns ``self``."""
        self._serving = True
        threading.Thread(target=self._httpd.serve_forever,
                         kwargs={"poll_interval": 0.2},
                         daemon=True).start()
        return self

    def close(self) -> None:
        # shutdown() deadlocks unless serve_forever ran; a server that
        # only ever bound its socket just closes it.
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()


def serve_dashboard(data_dir: str | os.PathLike[str], *,
                    host: str = "127.0.0.1", port: int = 0,
                    announce: Callable[[str], None] | None = print) -> int:
    """Blocking entry point behind ``repro dash``.

    Serves until SIGINT; returns 0 on a clean keyboard interrupt.
    """
    server = DashServer(data_dir, host=host, port=port)
    if announce is not None:
        announce(f"repro dash: dashboard at {server.url}/v1/dashboard "
                 f"(data dir {data_dir})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0
