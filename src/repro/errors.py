"""Exception hierarchy for the block-parallel programming system.

Every error raised by the language frontend, the compiler analyses and
transformations, and the simulator derives from :class:`BlockParallelError`,
so callers can catch the whole family with one clause while tests can assert
on precise subclasses.
"""

from __future__ import annotations

__all__ = [
    "BlockParallelError",
    "GraphError",
    "PortError",
    "MethodError",
    "AnalysisError",
    "AlignmentError",
    "RateError",
    "TransformError",
    "ParallelizationError",
    "MappingError",
    "PlacementError",
    "SimulationError",
    "FiringError",
    "FaultSpecError",
    "ChaosSpecError",
    "RealTimeViolation",
    "ChannelOverflow",
    "ResourceError",
]


class BlockParallelError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(BlockParallelError):
    """Malformed application graph (dangling ports, duplicate names, ...)."""


class PortError(GraphError):
    """Invalid port parameterization or port lookup failure."""


class MethodError(GraphError):
    """Invalid method registration (unknown inputs, duplicate triggers...)."""


class AnalysisError(BlockParallelError):
    """A static analysis could not complete on the given graph."""


class AlignmentError(AnalysisError):
    """Multi-input method receives data with mismatched extents or insets.

    Raised by the alignment checker when the automatic inset/pad transform
    has not been run (or cannot reconcile the inputs).
    """


class RateError(AnalysisError):
    """Inconsistent rates reach a kernel (e.g. mismatched input frame rates)."""


class TransformError(BlockParallelError):
    """A compiler transformation could not be applied."""


class ParallelizationError(TransformError):
    """Kernel cannot be parallelized to the required degree.

    For example a kernel whose single-iteration cost already exceeds one
    processing element's per-iteration budget, or a data-dependency edge that
    caps parallelism below the degree required to sustain the input rate.
    """


class MappingError(TransformError):
    """Kernel-to-processor mapping failure (e.g. capacity exceeded)."""


class PlacementError(TransformError):
    """Placement onto the chip grid failed (e.g. more PEs than tiles)."""


class SimulationError(BlockParallelError):
    """Generic simulator failure."""


class FiringError(SimulationError):
    """A kernel method misbehaved at runtime (wrong output shape, ...)."""


class FaultSpecError(SimulationError):
    """A fault-injection specification is malformed (see :mod:`repro.faults`).

    Carries the offending field in the message so sweep authors can fix
    the spec without reading the validator.
    """


class ChaosSpecError(BlockParallelError):
    """An infrastructure chaos specification is malformed (see
    :mod:`repro.chaos`).

    Deliberately *not* a :class:`SimulationError`: chaos strikes the
    host-side fleet (workers, cache, store, HTTP), never the simulated
    machine — that is :class:`FaultSpecError`'s domain.  Carries the
    offending field in the message, like its faults counterpart.
    """


class RealTimeViolation(SimulationError):
    """The application failed to keep up with its real-time input rate.

    Carries the simulation time of the first violation and the offending
    element so benchmark harnesses can report *where* the pipeline fell
    behind.
    """

    def __init__(self, message: str, *, time: float | None = None,
                 element: str | None = None) -> None:
        super().__init__(message)
        self.time = time
        self.element = element


class ChannelOverflow(SimulationError):
    """Data arrived at a full channel that is not allowed to backpressure."""


class ResourceError(BlockParallelError):
    """Declared kernel resources are invalid (negative cycles, zero memory)."""
