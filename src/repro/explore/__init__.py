"""Parallel design-space exploration with content-addressed caching.

The paper's headline results are design-space sweeps: the same
application compiled and simulated across sizes, rates, and mapping
options (Figures 11–13).  This package turns each sweep point into a
schedulable, cacheable, fault-tolerant job:

* :mod:`~repro.explore.spec` — declarative grid/list sweeps expanded
  into immutable, fingerprinted :class:`Job`\\ s;
* :mod:`~repro.explore.executor` — a process-pool scheduler with
  per-job timeouts, bounded retries, and exactly one terminal record
  per job, no matter what a job does;
* :mod:`~repro.explore.cache` / :mod:`~repro.explore.store` — a
  content-addressed result cache (re-running a sweep only executes
  changed points) and an append-only JSONL history;
* :mod:`~repro.explore.events` — typed progress events feeding the CLI
  renderer and any other observer;
* :mod:`~repro.explore.rate_probe` — cached accept/reject decisions for
  the maximum-rate search.

See ``docs/explore.md`` for the spec format, caching semantics, and
failure model; ``repro explore`` is the CLI entry point.
"""

from .cache import CACHE_SCHEMA, SHARD_WIDTH, ResultCache
from .events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    EventLog,
    JobCacheHit,
    JobFailed,
    JobFinished,
    JobRetried,
    JobScheduled,
    JobStarted,
    SweepEvent,
    SweepFinished,
    SweepStarted,
    render_event,
)
from .executor import (
    SweepOptions,
    SweepResult,
    execute_job,
    run_job_isolated,
    run_sweep,
)
from .rate_probe import DiskProbeCache, find_max_rate_cached
from .spec import (
    APP_TEMPLATES,
    AppTemplate,
    ExploreError,
    Job,
    SweepSpec,
    compute_fingerprint,
    expand,
    load_spec,
)
from .store import (
    STORE_SCHEMA,
    ResultStore,
    SweepReport,
    aggregate,
    completed_records,
)

__all__ = [
    "CACHE_SCHEMA",
    "SHARD_WIDTH",
    "ResultCache",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventLog",
    "JobCacheHit",
    "JobFailed",
    "JobFinished",
    "JobRetried",
    "JobScheduled",
    "JobStarted",
    "SweepEvent",
    "SweepFinished",
    "SweepStarted",
    "render_event",
    "SweepOptions",
    "SweepResult",
    "execute_job",
    "run_job_isolated",
    "run_sweep",
    "DiskProbeCache",
    "find_max_rate_cached",
    "APP_TEMPLATES",
    "AppTemplate",
    "ExploreError",
    "Job",
    "SweepSpec",
    "compute_fingerprint",
    "expand",
    "load_spec",
    "STORE_SCHEMA",
    "ResultStore",
    "SweepReport",
    "aggregate",
    "completed_records",
]
