"""Content-addressed on-disk result cache.

One JSON file per fingerprint under a cache root.  Entries are immutable
by construction — the fingerprint covers everything that determines the
result, so a hit is always valid for the job that computed the key.
Failures are deliberately *not* cached: a failed point retries on the
next sweep instead of pinning a transient error forever.

Writes are atomic (temp file + ``os.replace``) so a killed sweep never
leaves a truncated entry; a corrupt or schema-mismatched file reads as a
miss and is overwritten by the next store.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CACHE_SCHEMA", "ResultCache"]

CACHE_SCHEMA = 1


class ResultCache:
    """A directory of ``<fingerprint>.json`` result records."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, fingerprint: str) -> Path:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The cached record for ``fingerprint``, or None on miss.

        Unreadable or wrong-schema entries are misses, never errors — the
        cache must not be able to take a sweep down.
        """
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        record = entry.get("record")
        return record if isinstance(record, dict) else None

    def put(self, fingerprint: str, record: dict[str, Any]) -> None:
        """Atomically store ``record`` under ``fingerprint``."""
        path = self._path(fingerprint)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "record": record,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, default=str)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def fingerprints(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        count = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            count += 1
        return count
