"""Content-addressed on-disk result cache.

One JSON file per fingerprint under a cache root.  Entries are immutable
by construction — the fingerprint covers everything that determines the
result, so a hit is always valid for the job that computed the key.
Failures are deliberately *not* cached: a failed point retries on the
next sweep instead of pinning a transient error forever.

Entries are **sharded by fingerprint prefix** — ``root/ab/abcdef….json``
— so a long-lived multi-tenant store never concentrates every write in
one directory: concurrent workers (and eventually machines) land in
different shards, and directory listings stay proportional to one shard.
Flat pre-sharding layouts (``root/abcdef….json``) are still read
transparently, so existing caches keep every entry without migration;
new writes always go to the sharded path.

Writes are atomic (temp file + ``os.replace``) so a killed sweep never
leaves a truncated entry, and every entry carries a **sha256 trailer**
over its record, so bit rot *after* the write is detected too: an entry
that fails to parse or fails its checksum reads as a miss, is moved to
``root/quarantine/`` for post-mortems, and the job simply recomputes —
corrupt data is never returned and never crashes a sweep.  Entries
written before the trailer existed (no ``sha256`` key) still read.

The optional ``chaos`` injector (see :mod:`repro.chaos`) corrupts or
truncates entries at write time to prove exactly that recovery path;
``chaos=None`` (the default) takes none of these branches.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CACHE_SCHEMA", "SHARD_WIDTH", "QUARANTINE_DIR", "ResultCache"]

CACHE_SCHEMA = 1

#: Fingerprint-prefix characters naming a shard directory.  Two hex
#: characters → 256 shards, which keeps per-directory entry counts
#: small up to millions of cached results.
SHARD_WIDTH = 2

#: Corrupt entries are moved here (relative to the cache root) instead
#: of deleted, so an operator can diff what the disk did to them.  The
#: name is longer than ``SHARD_WIDTH``, so shard globs never match it.
QUARANTINE_DIR = "quarantine"


def _record_digest(record: dict[str, Any]) -> str:
    """Canonical sha256 of a cached record — the entry's checksum."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """A sharded directory of ``<prefix>/<fingerprint>.json`` records."""

    def __init__(self, root: str | os.PathLike[str], *,
                 chaos: Any | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._chaos = chaos

    def _validate(self, fingerprint: str) -> str:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return fingerprint

    def _sharded_path(self, fingerprint: str) -> Path:
        self._validate(fingerprint)
        return self.root / fingerprint[:SHARD_WIDTH] / f"{fingerprint}.json"

    def _flat_path(self, fingerprint: str) -> Path:
        """Pre-sharding layout: still readable, never written."""
        self._validate(fingerprint)
        return self.root / f"{fingerprint}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; never let the move itself fail
        a read (two readers may race to quarantine the same file)."""
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:  # pragma: no cover - lost the race; same outcome
            pass

    def _read(self, path: Path, fingerprint: str) -> dict[str, Any] | None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # The file exists but is not the JSON we wrote: disk
            # corruption or a torn write.  Park it and recompute.
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        record = entry.get("record")
        if not isinstance(record, dict):
            return None
        digest = entry.get("sha256")
        if digest is not None and digest != _record_digest(record):
            # Parses, but the payload is not what was written: the
            # worst corruption class, and exactly what the trailer is
            # for — without it this would be served as a valid result.
            self._quarantine(path)
            return None
        return record

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The cached record for ``fingerprint``, or None on miss.

        Unreadable, wrong-schema, or checksum-failing entries are
        misses, never errors — the cache must not be able to take a
        sweep down, and must never return corrupt data.
        """
        record = self._read(self._sharded_path(fingerprint), fingerprint)
        if record is not None:
            return record
        return self._read(self._flat_path(fingerprint), fingerprint)

    def put(self, fingerprint: str, record: dict[str, Any]) -> None:
        """Atomically store ``record`` under ``fingerprint``."""
        path = self._sharded_path(fingerprint)
        path.parent.mkdir(exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "record": record,
            "sha256": _record_digest(record),
        }
        data = json.dumps(entry, default=str).encode("utf-8")
        if self._chaos is not None:
            mutated = self._chaos.mutate_cache_entry(fingerprint, data)
            if mutated is not None:
                data = mutated
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def _entry_paths(self) -> Iterator[Path]:
        yield from self.root.glob("*.json")
        yield from self.root.glob(f"{'?' * SHARD_WIDTH}/*.json")

    def __len__(self) -> int:
        return len({p.stem for p in self._entry_paths()})

    def fingerprints(self) -> Iterator[str]:
        yield from sorted({p.stem for p in self._entry_paths()})

    def quarantined(self) -> list[str]:
        """Fingerprints of entries parked as corrupt, sorted."""
        return sorted(
            p.stem for p in (self.root / QUARANTINE_DIR).glob("*.json")
        ) if (self.root / QUARANTINE_DIR).is_dir() else []

    def migrate_flat_entries(self) -> int:
        """Move pre-sharding flat entries into their shards; returns how
        many moved.  Purely an optimization — reads work either way."""
        moved = 0
        for path in list(self.root.glob("*.json")):
            target = self._sharded_path(path.stem)
            target.parent.mkdir(exist_ok=True)
            os.replace(path, target)
            moved += 1
        return moved

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        count = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            count += 1
        return count
