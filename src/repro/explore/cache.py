"""Content-addressed on-disk result cache.

One JSON file per fingerprint under a cache root.  Entries are immutable
by construction — the fingerprint covers everything that determines the
result, so a hit is always valid for the job that computed the key.
Failures are deliberately *not* cached: a failed point retries on the
next sweep instead of pinning a transient error forever.

Entries are **sharded by fingerprint prefix** — ``root/ab/abcdef….json``
— so a long-lived multi-tenant store never concentrates every write in
one directory: concurrent workers (and eventually machines) land in
different shards, and directory listings stay proportional to one shard.
Flat pre-sharding layouts (``root/abcdef….json``) are still read
transparently, so existing caches keep every entry without migration;
new writes always go to the sharded path.

Writes are atomic (temp file + ``os.replace``) so a killed sweep never
leaves a truncated entry; a corrupt or schema-mismatched file reads as a
miss and is overwritten by the next store.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CACHE_SCHEMA", "SHARD_WIDTH", "ResultCache"]

CACHE_SCHEMA = 1

#: Fingerprint-prefix characters naming a shard directory.  Two hex
#: characters → 256 shards, which keeps per-directory entry counts
#: small up to millions of cached results.
SHARD_WIDTH = 2


class ResultCache:
    """A sharded directory of ``<prefix>/<fingerprint>.json`` records."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _validate(self, fingerprint: str) -> str:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return fingerprint

    def _sharded_path(self, fingerprint: str) -> Path:
        self._validate(fingerprint)
        return self.root / fingerprint[:SHARD_WIDTH] / f"{fingerprint}.json"

    def _flat_path(self, fingerprint: str) -> Path:
        """Pre-sharding layout: still readable, never written."""
        self._validate(fingerprint)
        return self.root / f"{fingerprint}.json"

    def _read(self, path: Path, fingerprint: str) -> dict[str, Any] | None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        record = entry.get("record")
        return record if isinstance(record, dict) else None

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The cached record for ``fingerprint``, or None on miss.

        Unreadable or wrong-schema entries are misses, never errors — the
        cache must not be able to take a sweep down.
        """
        record = self._read(self._sharded_path(fingerprint), fingerprint)
        if record is not None:
            return record
        return self._read(self._flat_path(fingerprint), fingerprint)

    def put(self, fingerprint: str, record: dict[str, Any]) -> None:
        """Atomically store ``record`` under ``fingerprint``."""
        path = self._sharded_path(fingerprint)
        path.parent.mkdir(exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "record": record,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, default=str)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def _entry_paths(self) -> Iterator[Path]:
        yield from self.root.glob("*.json")
        yield from self.root.glob(f"{'?' * SHARD_WIDTH}/*.json")

    def __len__(self) -> int:
        return len({p.stem for p in self._entry_paths()})

    def fingerprints(self) -> Iterator[str]:
        yield from sorted({p.stem for p in self._entry_paths()})

    def migrate_flat_entries(self) -> int:
        """Move pre-sharding flat entries into their shards; returns how
        many moved.  Purely an optimization — reads work either way."""
        moved = 0
        for path in list(self.root.glob("*.json")):
            target = self._sharded_path(path.stem)
            target.parent.mkdir(exist_ok=True)
            os.replace(path, target)
            moved += 1
        return moved

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        count = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            count += 1
        return count
