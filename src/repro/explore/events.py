"""Typed progress events for design-space sweeps.

The executor narrates a sweep through these events rather than printing:
every scheduling decision, cache hit, retry, failure, and completion is
one immutable event handed to an ``on_event`` callback.  The CLI renders
them as progress lines; tests assert on them; :mod:`repro.serve` ships
them over a wire as NDJSON — which is why every event type round-trips
through ``as_dict`` → :meth:`SweepEvent.from_dict` and carries a schema
version consumers can check.

Invariants (mirrored by the executor and checked by the test suite):

* exactly one terminal event — :class:`JobCacheHit`, :class:`JobFinished`,
  or :class:`JobFailed` — per job per sweep;
* no job events after :class:`SweepFinished`;
* :class:`JobRetried` always precedes another :class:`JobStarted` for the
  same job.
"""

from __future__ import annotations

from dataclasses import MISSING, asdict, dataclass, field, fields
from typing import Callable, Mapping

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "SweepEvent",
    "SweepStarted",
    "JobScheduled",
    "JobStarted",
    "JobCacheHit",
    "JobRetried",
    "JobFailed",
    "JobFinished",
    "SweepFinished",
    "EventLog",
    "render_event",
]

EVENT_SCHEMA_VERSION = "1.0"

#: Concrete event classes by name — the wire-decoding registry.  Filled
#: by ``__init_subclass__`` so a new event type can never forget to
#: register itself (the round-trip test iterates this mapping).
EVENT_TYPES: dict[str, type["SweepEvent"]] = {}


@dataclass(frozen=True, slots=True)
class SweepEvent:
    """Base class for all sweep progress events."""

    #: Short human label of the job (empty for sweep-level events).
    label: str

    def __init_subclass__(cls, **kwargs) -> None:
        # Explicit super: ``@dataclass(slots=True)`` recreates the class,
        # which orphans the zero-argument form's ``__class__`` cell.
        super(SweepEvent, cls).__init_subclass__(**kwargs)
        EVENT_TYPES[cls.__name__] = cls

    def as_dict(self) -> dict:
        data = asdict(self)
        data["event"] = type(self).__name__
        data["schema"] = EVENT_SCHEMA_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepEvent":
        """Rebuild the typed event an ``as_dict`` payload came from.

        Unknown event names and missing *required* fields raise
        ``ValueError`` (a wire consumer must not silently mistype an
        event); a missing field that declares a default takes the
        default, so adding an optional field never breaks decoding of
        payloads written by older producers.  Extra keys — ``schema``,
        transport envelopes like ``seq`` — are ignored so the format
        can grow without breaking old decoders.
        """
        name = data.get("event")
        event_cls = EVENT_TYPES.get(name)
        if event_cls is None:
            raise ValueError(f"unknown sweep event type {name!r}")
        kwargs = {}
        for field_info in fields(event_cls):
            if field_info.name in data:
                kwargs[field_info.name] = data[field_info.name]
            elif (field_info.default is MISSING
                    and field_info.default_factory is MISSING):
                raise ValueError(
                    f"event {name!r} payload is missing field "
                    f"{field_info.name!r}"
                )
        return event_cls(**kwargs)

    def describe(self) -> str:  # pragma: no cover - subclasses override
        return f"{type(self).__name__} {self.label}"


@dataclass(frozen=True, slots=True)
class SweepStarted(SweepEvent):
    """The sweep accepted ``total`` jobs for execution."""

    total: int
    workers: int

    def describe(self) -> str:
        return (f"sweep {self.label!r}: {self.total} jobs on "
                f"{self.workers} worker(s)")


@dataclass(frozen=True, slots=True)
class JobScheduled(SweepEvent):
    """A job entered the run queue (it missed the cache)."""

    fingerprint: str

    def describe(self) -> str:
        return f"  queued   {self.label} [{self.fingerprint[:12]}]"


@dataclass(frozen=True, slots=True)
class JobStarted(SweepEvent):
    """A worker began executing a job attempt."""

    attempt: int

    def describe(self) -> str:
        tag = f" (attempt {self.attempt})" if self.attempt > 1 else ""
        return f"  running  {self.label}{tag}"


@dataclass(frozen=True, slots=True)
class JobCacheHit(SweepEvent):
    """A previously stored result satisfied the job — terminal."""

    fingerprint: str

    def describe(self) -> str:
        return f"  cached   {self.label} [{self.fingerprint[:12]}]"


@dataclass(frozen=True, slots=True)
class JobRetried(SweepEvent):
    """A transient failure; the job will run again after ``delay_s``."""

    attempt: int
    reason: str
    delay_s: float

    def describe(self) -> str:
        return (f"  retry    {self.label}: {self.reason} "
                f"(attempt {self.attempt} failed; backing off "
                f"{self.delay_s:.2g}s)")


@dataclass(frozen=True, slots=True)
class JobFailed(SweepEvent):
    """The job exhausted its attempts — terminal."""

    kind: str  # "timeout" | "crash" | "error" | "compile-error"
    message: str
    attempts: int

    def describe(self) -> str:
        return (f"  FAILED   {self.label}: {self.kind} after "
                f"{self.attempts} attempt(s): {self.message}")


@dataclass(frozen=True, slots=True)
class JobFinished(SweepEvent):
    """The job produced a result — terminal."""

    elapsed_s: float
    meets: bool
    processor_count: int

    def describe(self) -> str:
        verdict = "meets" if self.meets else "MISSES"
        return (f"  done     {self.label}: {self.processor_count} PEs, "
                f"{verdict} real-time ({self.elapsed_s:.2f}s)")


@dataclass(frozen=True, slots=True)
class SweepFinished(SweepEvent):
    """The sweep completed; every job has exactly one terminal event."""

    total: int
    succeeded: int
    failed: int
    cache_hits: int
    elapsed_s: float

    def describe(self) -> str:
        return (f"sweep {self.label!r} finished in {self.elapsed_s:.2f}s: "
                f"{self.succeeded} ok, {self.failed} failed, "
                f"{self.cache_hits} from cache")


@dataclass(slots=True)
class EventLog:
    """A callback that records every event — the test observability hook."""

    events: list[SweepEvent] = field(default_factory=list)

    def __call__(self, event: SweepEvent) -> None:
        self.events.append(event)

    def of_type(self, cls: type) -> list[SweepEvent]:
        return [e for e in self.events if isinstance(e, cls)]


def render_event(event: SweepEvent,
                 write: Callable[[str], None] = print) -> None:
    """The CLI renderer: one line per event."""
    write(event.describe())
