"""Parallel sweep execution: compile→simulate→measure as fault-isolated jobs.

Jobs run in :class:`concurrent.futures.ProcessPoolExecutor` workers so a
crashing or hanging design point cannot take the sweep (or the parent
interpreter) down.  Each in-flight job gets its own *single-worker* pool:
a broken pool then identifies its crasher exactly, and terminating a hung
worker touches nothing else — no collateral blame, no requeue storms.
(Worker processes are consequently per-job; with the ``fork`` start
method that costs milliseconds against jobs that compile and simulate
for hundreds.)

The executor holds at most ``workers`` jobs in flight, tracks a
wall-clock deadline per job, and guarantees **exactly one terminal
record per job**:

* a normal completion records a ``result``;
* a Python exception in the worker is classified — deterministic compile
  errors (:class:`~repro.errors.BlockParallelError`) fail immediately,
  anything else retries with exponential backoff up to ``retries`` times
  before recording a ``failure`` of kind ``error``;
* a worker that dies (segfault, ``os._exit``) breaks its pool and is
  charged a ``crash`` attempt (retryable: transient infrastructure kills
  exist), terminal after ``retries``;
* a job past its deadline is recorded as kind ``timeout`` (terminal by
  default — a deterministic hang only wastes the budget again; opt into
  ``retry_timeouts`` for flaky-infrastructure setups) and its worker
  process is terminated.

Results are stored through the content-addressed cache (hits skip
execution entirely) and appended to the JSONL store.  ``workers=0``
selects in-process serial execution — no isolation and best-effort
timeouts, but trivially debuggable.

Supervision (opt-in, from :mod:`repro.chaos`):

* ``heartbeat_s`` arms a **watchdog**: workers touch a heartbeat file
  on a short interval, and a worker silent past the deadline is killed
  and charged a retryable ``crash`` — a wedged process then costs one
  heartbeat window, not its full wall-clock timeout.
* ``quarantine_after`` arms **poison-job quarantine**: a fingerprint
  that crashes that many consecutive times is parked with a terminal
  ``quarantined`` record instead of burning the whole retry budget.
* Retry backoff is **bounded** at ``backoff_max_s`` with deterministic
  fingerprint-keyed jitter (see :func:`repro.chaos.backoff_delay`), so
  shared-cause failures do not synchronize into retry herds.

A :class:`~repro.chaos.ChaosInjector` passed as ``chaos`` injects
worker crashes/hangs/slowdowns per ``(fingerprint, attempt)`` in the
pooled path (the serial path has no worker process to break and runs
clean).  All of this sits behind ``None``/``0`` defaults: a chaos-free
sweep takes none of these branches.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..chaos.inject import ChaosInjector
from ..chaos.watchdog import (
    QuarantineLedger,
    backoff_delay,
    heartbeat_stale,
    start_heartbeat,
)
from ..errors import BlockParallelError
from ..sim.simulator import SimulationOptions, simulate
from ..transform.compile import compile_application
from .cache import ResultCache
from .events import (
    JobCacheHit,
    JobFailed,
    JobFinished,
    JobRetried,
    JobScheduled,
    JobStarted,
    SweepEvent,
    SweepFinished,
    SweepStarted,
)
from .spec import Job
from .store import ResultStore, SweepReport, aggregate

__all__ = [
    "SweepOptions",
    "SweepResult",
    "run_sweep",
    "execute_job",
    "run_job_isolated",
]

#: Results/failures written by this executor.
RESULT_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class SweepOptions:
    """Execution knobs for one sweep run."""

    #: Worker processes; 0 means serial in-process execution.
    workers: int = 0
    #: Extra attempts after the first failure of a retryable kind.
    retries: int = 2
    #: Base of the exponential retry backoff, seconds.
    backoff_s: float = 0.1
    #: Cap on the exponential backoff, seconds (jittered below it).
    backoff_max_s: float = 5.0
    #: Whether a timed-out job is retried (default: terminal).
    retry_timeouts: bool = False
    #: Deadline-check granularity of the scheduler loop, seconds.
    tick_s: float = 0.05
    #: Watchdog heartbeat deadline, seconds; None disarms the watchdog.
    heartbeat_s: float | None = None
    #: Consecutive crashes before a fingerprint is quarantined; 0 = off
    #: (the historical behaviour: crashes spend the retry budget).
    quarantine_after: int = 0

    def resolved_workers(self) -> int:
        if self.workers < 0:
            return max(1, (os.cpu_count() or 2) - 1)
        return self.workers


@dataclass(slots=True)
class SweepResult:
    """Terminal records for every job, in job order."""

    sweep: str
    records: list[dict[str, Any]]
    elapsed_s: float

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.records if r["kind"] == "result")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r["kind"] == "failure")

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.get("cache_hit"))

    def report(self) -> SweepReport:
        return aggregate(self.records)

    def describe(self) -> str:
        return self.report().describe()


# ---------------------------------------------------------------------------
# Job execution (runs inside workers; also the serial path)


def _apply_injection(job: Job) -> None:
    """Test/ops failure hooks; a no-op for real jobs."""
    inject = job.inject_dict
    mode = inject.get("mode")
    if not mode:
        return
    if mode == "hang":
        time.sleep(float(inject.get("sleep_s", 3600.0)))
    elif mode == "crash":
        os._exit(int(inject.get("exit_code", 13)))
    elif mode == "error":
        raise RuntimeError(inject.get("message", "injected failure"))
    elif mode == "flaky":
        # Fail the first ``fail_times`` attempts, succeed afterwards.
        # Attempts are counted through marker files because each attempt
        # may land in a different worker process.
        marker_dir = inject["marker_dir"]
        fail_times = int(inject.get("fail_times", 1))
        os.makedirs(marker_dir, exist_ok=True)
        prefix = job.fingerprint[:16]
        seen = sum(1 for f in os.listdir(marker_dir)
                   if f.startswith(prefix))
        if seen < fail_times:
            with open(os.path.join(marker_dir, f"{prefix}.{seen}"),
                      "w", encoding="utf-8"):
                pass
            raise RuntimeError(
                f"injected flaky failure {seen + 1}/{fail_times}"
            )
    else:
        raise RuntimeError(f"unknown injection mode {mode!r}")


def _noc_model(job: Job, compiled) -> Any:
    """Build the job's :class:`~repro.machine.noc.NocModel`, or None."""
    if not job.noc:
        return None
    from ..machine import (
        NocModel,
        anneal_placement,
        fit_chip,
        row_major_placement,
    )

    knobs = dict(job.noc)
    chip = fit_chip(
        compiled.mapping.processor_count
        + len(getattr(compiled.mapping, "spares", ())),
        compiled.processor,
        mesh=knobs.get("mesh"),
    )
    strategy = job.placement or "row-major"
    if strategy == "row-major":
        placement = row_major_placement(compiled.mapping, chip)
    else:
        placement = anneal_placement(
            compiled.mapping, compiled.dataflow, chip,
            seed=0, objective=strategy,
        )
    return NocModel(
        placement=placement,
        per_hop_cycles=knobs["per_hop_cycles"],
        serialization_cycles_per_element=(
            knobs["serialization_cycles_per_element"]
        ),
    )


def execute_job(job: Job) -> dict[str, Any]:
    """Compile, simulate, and measure one design point.

    Returns the plain-data ``stats`` payload of a result record.  Raises
    on failure; classification happens in the worker wrapper.
    """
    _apply_injection(job)
    started = time.perf_counter()
    app = job.build_app()
    compiled = compile_application(
        app, job.build_processor(), job.build_options()
    )
    fault_spec = job.fault_spec()
    noc = _noc_model(job, compiled)
    sim_started = time.perf_counter()
    result = simulate(
        compiled,
        SimulationOptions(frames=job.frames, faults=fault_spec,
                          telemetry=job.telemetry, noc=noc,
                          replay=job.replay),
    )
    sim_elapsed = time.perf_counter() - sim_started
    output, chunks_per_frame, rate_hz = job.measurement()
    shedding = fault_spec is not None and fault_spec.recovery.shed
    verdict = result.verdict(
        output, rate_hz=rate_hz, chunks_per_frame=chunks_per_frame,
        frames=job.frames, allow_shedding=shedding,
    )
    stats: dict[str, Any] = {
        "processor_count": compiled.processor_count,
        "kernel_count": compiled.kernel_count(),
        "avg_utilization": result.utilization.average_utilization,
        "components": result.utilization.component_fractions(),
        "meets": verdict.meets,
        "worst_interval_s": (
            None if verdict.worst_interval_s == float("inf")
            else verdict.worst_interval_s
        ),
        "input_overruns": verdict.input_overruns,
        "rate_hz": rate_hz,
        "frames": job.frames,
        "makespan_s": result.makespan_s,
        "elapsed_s": time.perf_counter() - started,
        # Simulator throughput, the BENCH_sim.json trajectory metric:
        # sweeps dominated by simulation surface regressions here first.
        "events": result.events_processed,
        "sim_elapsed_s": sim_elapsed,
        "events_per_s": (
            result.events_processed / sim_elapsed if sim_elapsed > 0 else 0.0
        ),
    }
    if fault_spec is not None and fault_spec.active():
        # Degradation accounting rides along, so fault scenarios sweep —
        # and report — like any other design axis.
        stats["faults"] = result.fault_stats.as_dict()
        stats["frames_shed"] = verdict.frames_shed
        stats["unrecovered_faults"] = result.fault_stats.unrecovered
    if result.noc_stats is not None:
        # Link-level congestion rides along like fault stats do, so the
        # placement/NoC axes report their effect next to the makespan.
        stats["noc"] = {
            "placement": job.placement or "row-major",
            **result.noc_stats.as_dict(result.makespan_s),
        }
    if result.replay is not None:
        # Execution-strategy accounting rides along so a replay axis
        # reports its engagement next to the events/s it bought.
        stats["replay"] = result.replay.as_dict()
    if result.telemetry is not None:
        from ..obs import analyze_critical_path

        path = analyze_critical_path(result.telemetry)
        stats["telemetry"] = {
            "spans": result.telemetry.span_counts(),
            "dropped_spans": result.telemetry.dropped_spans,
            "critical_path": path.as_dict(),
        }
    return stats


def _worker(job_dict: dict[str, Any],
            chaos_action: dict[str, Any] | None = None,
            heartbeat: str | None = None,
            heartbeat_interval_s: float = 0.0) -> dict[str, Any]:
    """Pool entry point: never raises, so every Python-level failure comes
    back as data (exceptions crossing the pool boundary are reserved for
    dead workers).

    ``chaos_action`` is a pre-drawn injector decision (the parent draws
    it so the worker stays deterministic); ``heartbeat`` is the watchdog
    file this worker must keep fresh while it is healthy.
    """
    action = chaos_action or {}
    if action.get("mode") == "hang":
        # A wedged worker heartbeats nothing: deliberately do NOT start
        # the heartbeat thread, so the parent's watchdog observes the
        # exact silence a real hang (stuck in C, SIGSTOP, swap death)
        # produces.
        while True:  # pragma: no cover - killed by parent
            time.sleep(3600.0)
    stop = None
    if heartbeat is not None and heartbeat_interval_s > 0.0:
        stop = start_heartbeat(heartbeat, heartbeat_interval_s)
    try:
        if action.get("mode") == "crash":
            os._exit(23)  # hard death: breaks the pool, blamed as crash
        if action.get("mode") == "slow":
            time.sleep(float(action.get("delay_s", 0.0)))
        job = Job.from_dict(job_dict)
        try:
            return {"ok": True, "stats": execute_job(job)}
        except BlockParallelError as exc:
            return {"ok": False, "kind": "compile-error",
                    "message": f"{type(exc).__name__}: {exc}",
                    "retryable": False}
        except BaseException as exc:  # noqa: BLE001 - isolation boundary
            return {"ok": False, "kind": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                    "retryable": True}
    finally:
        if stop is not None:
            stop.set()


# ---------------------------------------------------------------------------
# The scheduler


@dataclass(slots=True)
class _Attempt:
    job: Job
    index: int
    attempt: int = 1
    not_before: float = 0.0


@dataclass(slots=True)
class _Flight:
    task: _Attempt
    pool: ProcessPoolExecutor
    started: float
    deadline: float
    heartbeat: str | None = None


def _mp_context():
    # fork keeps worker startup at microseconds (no numpy re-import);
    # fall back to spawn where fork does not exist.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_init() -> None:
    """Reset signal state inherited over ``fork``.

    A forked worker inherits the parent's signal wakeup fd (asyncio's
    self-pipe when the parent is ``repro serve``) and its no-op Python
    handlers.  Left alone, terminating the worker would write SIGTERM
    into the *shared* pipe and the parent's event loop would dispatch
    its own shutdown handler; and the inherited no-op handler would let
    a hung worker shrug off ``terminate()``.  Detach the fd and restore
    default dispositions so signals stay within this process.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down even when workers are hung or dead.

    ``shutdown`` alone never interrupts a busy worker, so the worker
    processes are terminated explicitly; ``_processes`` is stdlib-private
    but stable across supported versions, and the fallback is merely a
    slower (blocking) shutdown.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass


def run_job_isolated(
    job: Job,
    *,
    timeout_s: float | None = None,
    cancel: threading.Event | None = None,
    poll_s: float = 0.05,
    heartbeat_s: float | None = None,
    chaos_action: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One job attempt in its own single-worker pool, cancellable.

    This is the blocking execution primitive :mod:`repro.serve` drives
    from worker threads: the same crash isolation and exact blame as
    :func:`run_sweep`'s pooled path, but for a single attempt with a
    cooperative ``cancel`` event.  Returns a payload shaped like the
    pool ``_worker``'s — ``{"ok": True, "stats": ...}`` or ``{"ok":
    False, "kind": ..., "message": ..., "retryable": ...}`` — with two
    additional failure kinds the in-process worker cannot produce:

    * ``"timeout"`` once ``timeout_s`` (default: the job's own
      ``timeout_s``) of wall clock elapses;
    * ``"cancelled"`` as soon as ``cancel`` is observed set (checked
      every ``poll_s``); the worker process is terminated either way.

    ``heartbeat_s`` arms the watchdog: the worker touches a heartbeat
    file every quarter-deadline, and a file stale past ``heartbeat_s``
    gets the worker killed and charged a retryable ``crash`` (the
    payload carries ``"watchdog": True``) — long before the wall-clock
    budget would have noticed.  ``chaos_action`` is a pre-drawn
    :meth:`~repro.chaos.ChaosInjector.worker_action` decision forwarded
    to the worker.

    The pool is always torn down before returning, so a crashed or hung
    worker never outlives its job.
    """
    budget = job.timeout_s if timeout_s is None else timeout_s
    if cancel is not None and cancel.is_set():
        return {"ok": False, "kind": "cancelled",
                "message": "cancelled before start", "retryable": False}
    hb_path: str | None = None
    hb_interval = 0.0
    if heartbeat_s is not None and heartbeat_s > 0.0:
        fd, hb_path = tempfile.mkstemp(prefix="repro-heartbeat-")
        os.close(fd)
        hb_interval = heartbeat_s / 4.0
    pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context(),
                           initializer=_worker_init)
    deadline = time.monotonic() + budget
    try:
        future = pool.submit(_worker, job.to_dict(), chaos_action,
                             hb_path, hb_interval)
        while True:
            try:
                return future.result(timeout=poll_s)
            except _FutureTimeout:
                pass
            except BrokenProcessPool:
                return {"ok": False, "kind": "crash",
                        "message": "worker process died", "retryable": True}
            if cancel is not None and cancel.is_set():
                return {"ok": False, "kind": "cancelled",
                        "message": "cancelled mid-flight",
                        "retryable": False}
            if (hb_path is not None
                    and heartbeat_stale(hb_path, heartbeat_s)):
                return {"ok": False, "kind": "crash",
                        "message": (f"watchdog: no heartbeat for "
                                    f"{heartbeat_s:g}s; worker killed"),
                        "retryable": True, "watchdog": True}
            if time.monotonic() >= deadline:
                return {"ok": False, "kind": "timeout",
                        "message": f"exceeded {budget:g}s wall clock",
                        "retryable": False}
    finally:
        _terminate_pool(pool)
        if hb_path is not None:
            try:
                os.unlink(hb_path)
            except OSError:  # pragma: no cover - already gone
                pass


def run_sweep(
    jobs: Sequence[Job] | Iterable[Job],
    *,
    cache: ResultCache | None = None,
    store: ResultStore | None = None,
    options: SweepOptions = SweepOptions(),
    on_event: Callable[[SweepEvent], None] | None = None,
    resume: Mapping[str, dict[str, Any]] | None = None,
    chaos: ChaosInjector | None = None,
) -> SweepResult:
    """Run every job to exactly one terminal record.

    ``cache`` short-circuits jobs whose fingerprint already has a stored
    result; ``store`` receives every terminal record as one JSONL line;
    ``on_event`` observes progress (see :mod:`repro.explore.events`);
    ``resume`` is a fingerprint → prior-result mapping (typically
    :func:`~repro.explore.store.completed_records` over an earlier
    store) whose entries short-circuit exactly like cache hits — the
    sweep then completes only the un-cached remainder.  ``chaos``
    injects worker faults into the pooled path (see the module
    docstring); ``None`` — the default — is observation-free.
    """
    jobs = list(jobs)
    emit = on_event or (lambda event: None)
    sweep_name = jobs[0].sweep if jobs else "empty"
    workers = options.resolved_workers()
    started = time.monotonic()
    emit(SweepStarted(sweep_name, total=len(jobs),
                      workers=workers or 1))

    terminal: dict[int, dict[str, Any]] = {}

    def finish(index: int, record: dict[str, Any]) -> None:
        if index in terminal:  # pragma: no cover - guarded by design
            raise RuntimeError(
                f"job {index} produced a second terminal record"
            )
        terminal[index] = record
        if store is not None:
            store.append(record)

    def base_record(job: Job) -> dict[str, Any]:
        return {
            "result_schema": RESULT_SCHEMA,
            "sweep": job.sweep,
            "kind": "",
            "label": job.label,
            "fingerprint": job.fingerprint,
            "job": job.to_dict(),
        }

    pending: list[_Attempt] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.fingerprint) if cache is not None else None
        if cached is None and resume is not None:
            cached = resume.get(job.fingerprint)
        if cached is not None:
            emit(JobCacheHit(job.label, fingerprint=job.fingerprint))
            finish(index, {**cached, "cache_hit": True})
        else:
            emit(JobScheduled(job.label, fingerprint=job.fingerprint))
            pending.append(_Attempt(job=job, index=index))

    quarantine = QuarantineLedger(options.quarantine_after)

    def succeed(task: _Attempt, stats: dict[str, Any]) -> None:
        quarantine.clear(task.job.fingerprint)
        record = base_record(task.job)
        record.update(kind="result", attempts=task.attempt, stats=stats)
        if cache is not None:
            cache.put(task.job.fingerprint, record)
        finish(task.index, record)
        emit(JobFinished(
            task.job.label,
            elapsed_s=stats.get("elapsed_s", 0.0),
            meets=bool(stats.get("meets")),
            processor_count=int(stats.get("processor_count", 0)),
        ))

    def fail_or_retry(task: _Attempt, kind: str, message: str,
                      retryable: bool) -> None:
        if kind == "crash":
            reason = quarantine.record_crash(task.job.fingerprint,
                                             message)
            if reason is not None:
                # Crash loop: park the fingerprint instead of spending
                # what is left of the retry budget on it.
                record = base_record(task.job)
                record.update(kind="failure", attempts=task.attempt,
                              quarantined=True, failure={
                                  "kind": "quarantined",
                                  "message": reason,
                              })
                finish(task.index, record)
                emit(JobFailed(task.job.label, kind="quarantined",
                               message=reason, attempts=task.attempt))
                return
        if retryable and task.attempt <= options.retries:
            delay = backoff_delay(task.attempt, options.backoff_s,
                                  options.backoff_max_s,
                                  key=task.job.fingerprint)
            emit(JobRetried(task.job.label, attempt=task.attempt,
                            reason=f"{kind}: {message}", delay_s=delay))
            task.attempt += 1
            task.not_before = time.monotonic() + delay
            pending.append(task)
            return
        record = base_record(task.job)
        record.update(kind="failure", attempts=task.attempt, failure={
            "kind": kind, "message": message,
        })
        finish(task.index, record)
        emit(JobFailed(task.job.label, kind=kind, message=message,
                       attempts=task.attempt))

    def handle_payload(task: _Attempt, payload: dict[str, Any]) -> None:
        if payload.get("ok"):
            succeed(task, payload["stats"])
        else:
            fail_or_retry(task, payload.get("kind", "error"),
                          payload.get("message", "unknown failure"),
                          bool(payload.get("retryable", True)))

    if workers == 0:
        _run_serial(pending, handle_payload, emit)
    else:
        _run_pooled(pending, workers, options, handle_payload,
                    fail_or_retry, emit, chaos=chaos)

    records = [terminal[i] for i in sorted(terminal)]
    elapsed = time.monotonic() - started
    result = SweepResult(sweep=sweep_name, records=records,
                         elapsed_s=elapsed)
    emit(SweepFinished(sweep_name, total=len(jobs),
                       succeeded=result.succeeded, failed=result.failed,
                       cache_hits=result.cache_hits, elapsed_s=elapsed))
    return result


def _run_serial(pending: list[_Attempt], handle_payload, emit) -> None:
    """In-process execution: no isolation, timeouts not enforced."""
    while pending:
        task = pending.pop(0)
        now = time.monotonic()
        if task.not_before > now:
            time.sleep(task.not_before - now)
        emit(JobStarted(task.job.label, attempt=task.attempt))
        handle_payload(task, _worker(task.job.to_dict()))


def _discard_heartbeat(path: str | None) -> None:
    if path is None:
        return
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone
        pass


def _run_pooled(pending: list[_Attempt], workers: int,
                options: SweepOptions, handle_payload, fail_or_retry,
                emit, chaos: ChaosInjector | None = None) -> None:
    """At most ``workers`` jobs in flight, each in a single-worker pool
    of its own so failure blame and termination are exact."""
    ctx = _mp_context()
    heartbeat_s = options.heartbeat_s
    in_flight: dict[Future, _Flight] = {}
    try:
        while pending or in_flight:
            now = time.monotonic()
            # Top up: launch ready tasks while worker slots are free.
            ready = [t for t in pending if t.not_before <= now]
            while ready and len(in_flight) < workers:
                task = ready.pop(0)
                pending.remove(task)
                emit(JobStarted(task.job.label, attempt=task.attempt))
                pool = ProcessPoolExecutor(
                    max_workers=1, mp_context=ctx,
                    initializer=_worker_init,
                )
                action = None
                if chaos is not None:
                    action = chaos.worker_action(
                        task.job.fingerprint, task.attempt,
                        task.job.label,
                    )
                hb_path = None
                hb_interval = 0.0
                if heartbeat_s is not None and heartbeat_s > 0.0:
                    fd, hb_path = tempfile.mkstemp(
                        prefix="repro-heartbeat-")
                    os.close(fd)
                    hb_interval = heartbeat_s / 4.0
                future = pool.submit(_worker, task.job.to_dict(),
                                     action, hb_path, hb_interval)
                in_flight[future] = _Flight(
                    task=task, pool=pool, started=now,
                    deadline=now + task.job.timeout_s,
                    heartbeat=hb_path,
                )
            if not in_flight:
                # Everything pending is backing off; sleep until the
                # earliest becomes ready.
                wake = min(t.not_before for t in pending)
                time.sleep(max(options.tick_s, wake - time.monotonic()))
                continue

            done, _ = wait(set(in_flight), timeout=options.tick_s,
                           return_when=FIRST_COMPLETED)
            for future in done:
                flight = in_flight.pop(future)
                error = future.exception()
                if error is None:
                    handle_payload(flight.task, future.result())
                elif isinstance(error, BrokenProcessPool):
                    # This job's own worker died mid-job (hard crash);
                    # single-worker pools make the attribution exact.
                    fail_or_retry(flight.task, "crash",
                                  "worker process died", True)
                else:  # pragma: no cover - _worker never raises
                    fail_or_retry(flight.task, "error", str(error), True)
                _terminate_pool(flight.pool)
                _discard_heartbeat(flight.heartbeat)

            # Watchdog scan: a worker silent past the heartbeat
            # deadline is reaped now, charged a retryable crash, and
            # its pool slot freed — queued jobs keep flowing instead of
            # waiting out the hung job's full wall-clock budget.
            if heartbeat_s is not None and heartbeat_s > 0.0:
                stale = [f for f, fl in in_flight.items()
                         if fl.heartbeat is not None
                         and heartbeat_stale(fl.heartbeat, heartbeat_s)]
                for future in stale:
                    flight = in_flight.pop(future)
                    fail_or_retry(
                        flight.task, "crash",
                        (f"watchdog: no heartbeat for {heartbeat_s:g}s; "
                         f"worker killed"),
                        True,
                    )
                    _terminate_pool(flight.pool)
                    _discard_heartbeat(flight.heartbeat)

            # Deadline scan: a hung job gets a timeout record (terminal
            # unless retry_timeouts) and only *its* worker is killed.
            now = time.monotonic()
            expired = [f for f, fl in in_flight.items()
                       if fl.deadline <= now]
            for future in expired:
                flight = in_flight.pop(future)
                fail_or_retry(
                    flight.task, "timeout",
                    f"exceeded {flight.task.job.timeout_s:g}s wall clock",
                    options.retry_timeouts,
                )
                _terminate_pool(flight.pool)
                _discard_heartbeat(flight.heartbeat)
    finally:
        for flight in in_flight.values():  # pragma: no cover - unwind
            _terminate_pool(flight.pool)
            _discard_heartbeat(flight.heartbeat)
