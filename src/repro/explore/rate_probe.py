"""Disk-backed probe cache for the maximum-rate search.

:func:`repro.transform.find_max_rate` compiles the application at every
probed rate; across repeated searches (design-space scripts, CI, a
benchmark re-run) most probes hit configurations that were already
decided.  This module persists those accept/reject decisions in the same
content-addressed cache the sweep executor uses, so a repeated search
recompiles nothing but its final answer.

The cached unit is a *decision* (does ``rate`` fit the budget?), not a
compiled artifact: decisions are tiny, JSON-safe, and sufficient — the
search only needs the winning rate compiled once, which
``find_max_rate`` does lazily when every accepted probe came from cache.
"""

from __future__ import annotations

import os
from typing import Callable

from ..graph.app import ApplicationGraph
from ..machine.processor import ProcessorSpec
from ..transform.rate_search import RateSearchResult, find_max_rate
from .cache import ResultCache

__all__ = ["DiskProbeCache", "find_max_rate_cached"]


class DiskProbeCache:
    """Adapts :class:`ResultCache` to the rate search's probe-cache
    protocol (``get_decision`` / ``put_decision``)."""

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def get_decision(self, key: str) -> bool | None:
        record = self.cache.get(key)
        if record is None or record.get("kind") != "rate-probe":
            self.misses += 1
            return None
        self.hits += 1
        return bool(record["accepted"])

    def put_decision(self, key: str, accepted: bool) -> None:
        self.cache.put(key, {"kind": "rate-probe", "accepted": accepted})


def find_max_rate_cached(
    build: Callable[[float], ApplicationGraph],
    processor: ProcessorSpec,
    *,
    cache_dir: str | os.PathLike[str],
    **kwargs,
) -> RateSearchResult:
    """:func:`find_max_rate` with decisions cached under ``cache_dir``.

    The first search over a configuration pays full price; repeats of the
    same configuration compile exactly once (the winning rate).
    """
    probe_cache = DiskProbeCache(ResultCache(cache_dir))
    return find_max_rate(build, processor, probe_cache=probe_cache,
                         **kwargs)
