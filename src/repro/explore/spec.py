"""Declarative sweep specifications and content-addressed jobs.

A sweep names an application and a set of axes; expansion takes the
cartesian product and yields one immutable :class:`Job` per point.  Each
job is a *plain-data* description — app name plus parameter dicts — so it
crosses process boundaries trivially and its identity can be computed
without running anything.

Axis keys route automatically by name:

* ``clock_mhz``, ``memory_words``, ``read_cycles_per_element``,
  ``write_cycles_per_element`` configure the
  :class:`~repro.machine.ProcessorSpec`;
* ``mapping``, ``parallelize``, ``fuse_pipelines``, ``utilization_target``,
  ``alignment_policy`` configure :class:`~repro.transform.CompileOptions`;
* ``frames`` configures the simulation; ``telemetry`` (bool) additionally
  collects :mod:`repro.obs` telemetry and carries a critical-path summary
  in the result record;
* ``noc`` (bool or ``{"per_hop_cycles", "serialization_cycles_per_element",
  "mesh"}``) attaches the :mod:`repro.machine.noc` timing model;
  ``placement`` (``"row-major"``/``"energy"``/``"makespan"``) selects how
  the NoC placement is produced and requires ``noc``;
* everything else is passed to the application builder (validated against
  its signature at expansion time, so typos fail before any job runs).

The **fingerprint** is the job's content address: a sha256 over the
canonical JSON of the *built application graph* (when it serializes —
see :func:`repro.graph.fingerprint`) plus the processor, compile, and
simulation configuration.  Changing any kernel parameter, wiring, or
config knob changes the fingerprint; re-running an identical point hits
the cache.  Graphs with procedural inputs fall back to hashing the
declarative spec alone (documented in ``docs/explore.md``).
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..apps import (
    build_bayer_app,
    build_buffer_test_app,
    build_filter_bank_app,
    build_histogram_app,
    build_image_pipeline,
    build_multi_conv_app,
    benchmark,
    benchmark_suite,
)
from ..errors import BlockParallelError, FaultSpecError, GraphError
from ..faults import FaultSpec
from ..graph.app import ApplicationGraph
from ..graph.serialize import FINGERPRINT_SCHEMA
from ..graph.serialize import fingerprint as graph_fingerprint
from ..machine.processor import ProcessorSpec
from ..transform.compile import CompileOptions

__all__ = [
    "ExploreError",
    "AppTemplate",
    "APP_TEMPLATES",
    "Job",
    "SweepSpec",
    "expand",
    "load_spec",
    "compute_fingerprint",
]


class ExploreError(BlockParallelError):
    """A malformed sweep specification or job."""


PROCESSOR_KEYS = frozenset({
    "clock_mhz", "memory_words",
    "read_cycles_per_element", "write_cycles_per_element",
})
OPTION_KEYS = frozenset({
    "mapping", "parallelize", "fuse_pipelines",
    "utilization_target", "alignment_policy", "spare_processors",
})
SIM_KEYS = frozenset({"frames"})
#: NoC knobs accepted by a ``noc`` axis mapping; ``mesh`` forces the
#: mesh side length (default: smallest square fitting the processors).
NOC_KEYS = frozenset({
    "per_hop_cycles", "serialization_cycles_per_element", "mesh",
})
#: Placement strategies for the ``placement`` axis.  ``row-major`` is the
#: naive fill; the other two run ``anneal_placement`` with that objective.
PLACEMENTS = ("row-major", "energy", "makespan")
#: ``faults`` takes a fault-spec dict (see :mod:`repro.faults`);
#: ``fault_seed`` overrides/sets its seed, letting a sweep hold one
#: scenario fixed while varying only the seed axis.
FAULT_KEYS = frozenset({"faults", "fault_seed"})


@dataclass(frozen=True, slots=True)
class AppTemplate:
    """A sweep-addressable application: builder plus measurement contract."""

    name: str
    build: Callable[..., ApplicationGraph]
    #: Application output kernel where real-time completion is measured.
    output: str
    #: Chunks completing one frame at that output, given builder params.
    chunks_per_frame: Callable[[Mapping[str, Any]], int]


def _w(params: Mapping[str, Any]) -> int:
    return int(params["width"])


def _h(params: Mapping[str, Any]) -> int:
    return int(params["height"])


APP_TEMPLATES: dict[str, AppTemplate] = {
    t.name: t for t in [
        AppTemplate("image_pipeline", build_image_pipeline,
                    "result", lambda p: 1),
        AppTemplate("histogram", build_histogram_app, "result", lambda p: 1),
        AppTemplate("bayer", build_bayer_app, "Video",
                    lambda p: (_w(p) // 2) * (_h(p) // 2)),
        AppTemplate("buffer_test", build_buffer_test_app, "Out",
                    lambda p: (_w(p) - 6) * (_h(p) - 6)),
        AppTemplate("multi_conv", build_multi_conv_app, "Out",
                    lambda p: (_w(p) - 4) * (_h(p) - 4)),
        AppTemplate("filter_bank", build_filter_bank_app, "Out",
                    lambda p: (_w(p) - 4) * (_h(p) - 4)),
    ]
}


@dataclass(frozen=True)
class Job:
    """One immutable design point: build, compile, simulate, measure.

    Plain data end to end — every field survives ``to_dict``/``from_dict``
    through JSON, which is how jobs travel to pool workers and into the
    result store.
    """

    #: Sweep name this job belongs to (labelling only).
    sweep: str
    #: Application: an :data:`APP_TEMPLATES` name or a Figure 13 key.
    app: str
    #: Builder keyword arguments (positional axes like width/height/rate).
    params: tuple[tuple[str, Any], ...] = ()
    #: ProcessorSpec overrides (``clock_mhz`` etc.).
    processor: tuple[tuple[str, Any], ...] = ()
    #: CompileOptions overrides (``mapping`` etc.).
    options: tuple[tuple[str, Any], ...] = ()
    frames: int = 3
    #: Per-job wall-clock ceiling, seconds.
    timeout_s: float = 300.0
    #: Failure injection for tests/ops drills: ``{"mode": "hang" | "crash"
    #: | "error" | "flaky", ...}``.  Never set by spec expansion.
    inject: tuple[tuple[str, Any], ...] = ()
    #: Canonical JSON of a :class:`repro.faults.FaultSpec`, or "" for a
    #: perfect substrate.  Canonical so equivalent scenarios share a
    #: fingerprint and hit the same cache entry.
    faults: str = ""
    #: Collect simulation telemetry (see :mod:`repro.obs`) and carry a
    #: critical-path summary in the result record.
    telemetry: bool = False
    #: Normalized NoC knobs (defaults filled), or () for the paper's
    #: free-communication substrate.  Non-empty iff the model is on.
    noc: tuple[tuple[str, Any], ...] = ()
    #: Placement strategy when ``noc`` is on ("" means row-major).
    placement: str = ""
    #: Run the simulator's quasi-static replay engine (bit-identical
    #: results by construction; sweeps use it purely for wall time).
    replay: bool = False
    _fingerprint: str = field(default="", compare=False, repr=False)

    # -- construction helpers ------------------------------------------

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def inject_dict(self) -> dict[str, Any]:
        return dict(self.inject)

    @property
    def label(self) -> str:
        bits = [f"{k}={v}" for k, v in self.params]
        bits += [f"{k}={v}" for k, v in self.processor]
        bits += [f"{k}={v}" for k, v in self.options]
        spec = self.fault_spec()
        if spec is not None:
            bits.append(f"faults[seed={spec.seed}]")
        if self.telemetry:
            bits.append("telemetry")
        if self.noc:
            knobs = dict(self.noc)
            noc_bits = [f"hop={knobs['per_hop_cycles']:g}",
                        f"ser={knobs['serialization_cycles_per_element']:g}"]
            if knobs.get("mesh") is not None:
                noc_bits.append(f"mesh={knobs['mesh']}")
            bits.append(f"noc[{', '.join(noc_bits)}]")
            if self.placement:
                bits.append(f"placement={self.placement}")
        if self.replay:
            bits.append("replay")
        return f"{self.app}({', '.join(bits)})" if bits else self.app

    def fault_spec(self) -> "FaultSpec | None":
        """The job's validated fault scenario, or None."""
        if not self.faults:
            return None
        return FaultSpec.from_json(self.faults)

    def build_app(self) -> ApplicationGraph:
        if self.app in APP_TEMPLATES:
            return APP_TEMPLATES[self.app].build(**self.param_dict)
        return benchmark(self.app).application()

    def build_processor(self) -> ProcessorSpec:
        overrides = dict(self.processor)
        clock_mhz = overrides.pop("clock_mhz", None)
        kwargs: dict[str, Any] = dict(overrides)
        if clock_mhz is not None:
            kwargs["clock_hz"] = float(clock_mhz) * 1e6
        base = ProcessorSpec(clock_hz=20e6, memory_words=512)
        return ProcessorSpec(**{
            "clock_hz": base.clock_hz,
            "memory_words": base.memory_words,
            "read_cycles_per_element": base.read_cycles_per_element,
            "write_cycles_per_element": base.write_cycles_per_element,
            **kwargs,
        })

    def build_options(self) -> CompileOptions:
        return CompileOptions(**dict(self.options))

    def measurement(self) -> tuple[str, int, float]:
        """(output kernel, chunks per frame, input rate) for the verdict."""
        if self.app in APP_TEMPLATES:
            template = APP_TEMPLATES[self.app]
            params = self.param_dict
            rate = params.get("rate_hz")
            if rate is None:  # builder default applies
                rate = inspect.signature(
                    template.build
                ).parameters["rate_hz"].default
            return template.output, template.chunks_per_frame(params), float(rate)
        bench = benchmark(self.app)
        return bench.output, bench.chunks_per_frame, bench.rate_hz

    # -- identity ------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content-addressed identity; see the module docstring."""
        if self._fingerprint:
            return self._fingerprint
        fp = compute_fingerprint(self)
        object.__setattr__(self, "_fingerprint", fp)
        return fp

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "sweep": self.sweep,
            "app": self.app,
            "params": self.param_dict,
            "processor": dict(self.processor),
            "options": dict(self.options),
            "frames": self.frames,
            "timeout_s": self.timeout_s,
            "inject": self.inject_dict,
            "faults": json.loads(self.faults) if self.faults else None,
            "telemetry": self.telemetry,
            "noc": dict(self.noc) if self.noc else None,
            "placement": self.placement,
            "replay": self.replay,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        return cls(
            sweep=data.get("sweep", ""),
            app=data["app"],
            params=_freeze(data.get("params", {})),
            processor=_freeze(data.get("processor", {})),
            options=_freeze(data.get("options", {})),
            frames=int(data.get("frames", 3)),
            timeout_s=float(data.get("timeout_s", 300.0)),
            inject=_freeze(data.get("inject", {})),
            faults=_canonical_faults(data.get("faults")),
            telemetry=bool(data.get("telemetry", False)),
            noc=_canonical_noc(data.get("noc")),
            placement=_canonical_placement(
                data.get("placement", ""), bool(data.get("noc"))
            ),
            replay=bool(data.get("replay", False)),
            _fingerprint=data.get("fingerprint", ""),
        )


def _freeze(mapping: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(mapping.items()))


def _canonical_faults(data: Any) -> str:
    """Validate + canonicalize a fault-spec value to its identity string."""
    if data is None or data == "":
        return ""
    if isinstance(data, FaultSpec):
        return data.canonical_json()
    if not isinstance(data, Mapping):
        raise ExploreError(
            f"'faults' must be a fault-spec object, got {type(data).__name__}"
        )
    try:
        return FaultSpec.from_dict(data).canonical_json()
    except FaultSpecError as exc:
        raise ExploreError(f"bad fault spec: {exc}") from None


def _canonical_noc(value: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize a ``noc`` axis value to its frozen, defaults-filled form.

    ``True`` and an explicit ``{"per_hop_cycles": 4.0, ...}`` of the same
    defaults normalize identically, so they share a fingerprint.
    """
    if value is None or value is False or value == ():
        return ()
    if value is True:
        value = {}
    if not isinstance(value, Mapping):
        raise ExploreError(
            "'noc' must be a bool or an object with keys "
            f"{sorted(NOC_KEYS)}, got {value!r}"
        )
    unknown = set(value) - NOC_KEYS
    if unknown:
        raise ExploreError(f"unknown 'noc' keys: {sorted(unknown)}")
    mesh = value.get("mesh")
    return _freeze({
        "per_hop_cycles": float(value.get("per_hop_cycles", 4.0)),
        "serialization_cycles_per_element": float(
            value.get("serialization_cycles_per_element", 1.0)
        ),
        "mesh": None if mesh is None else int(mesh),
    })


def _canonical_placement(value: Any, noc_on: bool) -> str:
    if value is None or value == "":
        return ""
    if value not in PLACEMENTS:
        raise ExploreError(
            f"'placement' must be one of {list(PLACEMENTS)}, got {value!r}"
        )
    if not noc_on:
        raise ExploreError(
            "'placement' only affects timing through the NoC model; "
            "add a 'noc' axis or fixed value"
        )
    return str(value)


def compute_fingerprint(job: Job) -> str:
    """sha256 over the built graph's canonical JSON plus job config."""
    payload: dict[str, Any] = {
        "schema": FINGERPRINT_SCHEMA,
        "app": job.app,
        "params": job.param_dict,
        "processor": dict(job.processor),
        "options": dict(job.options),
        "frames": job.frames,
        "inject": job.inject_dict,
        "faults": job.faults or None,
    }
    # Only when on: pre-telemetry fingerprints (and their cached
    # results) must stay valid for the default-off configuration.
    if job.telemetry:
        payload["telemetry"] = True
    # Same contract for the NoC axes: absent keys keep every pre-NoC
    # fingerprint (and its cached result) valid.
    if job.noc:
        payload["noc"] = dict(job.noc)
        if job.placement:
            payload["placement"] = job.placement
    # Replay is observably identical by construction, but the result
    # record differs (engagement stats, wall time), so replay-on jobs
    # get their own cache identity.  Only when on: pre-replay
    # fingerprints stay valid for the default-off configuration.
    if job.replay:
        payload["replay"] = True
    try:
        payload["graph"] = graph_fingerprint(job.build_app())
    except GraphError:
        # Procedural input patterns refuse to serialize; the declarative
        # spec alone is then the identity (stated in docs/explore.md).
        payload["graph"] = None
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """A declarative design-space sweep.

    JSON form::

        {
          "name": "fig11",
          "app": "image_pipeline",
          "axes": {
            "width": [24, 48], "height": [16, 32],
            "rate_hz": [100, 400],
            "mapping": ["greedy", "1:1"]
          },
          "fixed": {"clock_mhz": 20, "memory_words": 512},
          "frames": 3,
          "timeout_s": 120
        }

    ``axes`` values are lists (grid axes); ``fixed`` values are scalars
    applied to every point.  ``points`` may replace ``axes`` with an
    explicit list of parameter dicts (a *list sweep*).
    """

    name: str
    app: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    fixed: tuple[tuple[str, Any], ...] = ()
    points: tuple[tuple[tuple[str, Any], ...], ...] = ()
    frames: int = 3
    timeout_s: float = 300.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        unknown = set(data) - {"name", "app", "axes", "fixed", "points",
                               "frames", "timeout_s"}
        if unknown:
            raise ExploreError(
                f"unknown sweep spec keys: {sorted(unknown)}"
            )
        if "app" not in data:
            raise ExploreError("sweep spec needs an 'app'")
        axes = data.get("axes", {})
        for key, values in axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ExploreError(
                    f"axis {key!r} must be a non-empty list, got {values!r}"
                )
        return cls(
            name=data.get("name", "sweep"),
            app=data["app"],
            axes=tuple(sorted((k, tuple(v)) for k, v in axes.items())),
            fixed=_freeze(data.get("fixed", {})),
            points=tuple(_freeze(p) for p in data.get("points", ())),
            frames=int(data.get("frames", 3)),
            timeout_s=float(data.get("timeout_s", 300.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def jobs(self) -> list[Job]:
        return expand(self)


def _route(point: Mapping[str, Any], spec: SweepSpec) -> Job:
    params: dict[str, Any] = {}
    processor: dict[str, Any] = {}
    options: dict[str, Any] = {}
    frames = spec.frames
    telemetry = False
    noc: tuple[tuple[str, Any], ...] = ()
    placement_raw: Any = ""
    replay = False
    fault_base: Mapping[str, Any] | None = None
    fault_seed: int | None = None
    for key, value in point.items():
        if key in PROCESSOR_KEYS:
            processor[key] = value
        elif key in OPTION_KEYS:
            options[key] = value
        elif key in SIM_KEYS:
            frames = int(value)
        elif key == "telemetry":
            telemetry = bool(value)
        elif key == "replay":
            replay = bool(value)
        elif key == "noc":
            noc = _canonical_noc(value)
        elif key == "placement":
            placement_raw = value
        elif key == "faults":
            if value is not None and not isinstance(value, Mapping):
                raise ExploreError(
                    f"'faults' must be a fault-spec object, got {value!r}"
                )
            fault_base = value
        elif key == "fault_seed":
            fault_seed = int(value)
        else:
            params[key] = value
    _validate_builder_params(spec.app, params)
    faults = ""
    if fault_seed is not None and fault_base is None:
        raise ExploreError(
            "'fault_seed' needs a 'faults' scenario to seed "
            "(add a fixed 'faults' object)"
        )
    if fault_base is not None:
        merged = dict(fault_base)
        if fault_seed is not None:
            merged["seed"] = fault_seed
        faults = _canonical_faults(merged)
    return Job(
        sweep=spec.name,
        app=spec.app,
        params=_freeze(params),
        processor=_freeze(processor),
        options=_freeze(options),
        frames=frames,
        timeout_s=spec.timeout_s,
        faults=faults,
        telemetry=telemetry,
        noc=noc,
        placement=_canonical_placement(placement_raw, bool(noc)),
        replay=replay,
    )


def _validate_builder_params(app: str, params: Mapping[str, Any]) -> None:
    if app in APP_TEMPLATES:
        sig = inspect.signature(APP_TEMPLATES[app].build)
        try:
            sig.bind(**params)
        except TypeError as exc:
            raise ExploreError(
                f"app {app!r} rejects parameters {sorted(params)}: {exc}"
            ) from None
        return
    known = {b.key for b in benchmark_suite()}
    if app not in known:
        raise ExploreError(
            f"unknown app {app!r}: not a template "
            f"({sorted(APP_TEMPLATES)}) or benchmark key ({sorted(known)})"
        )
    if params:
        raise ExploreError(
            f"benchmark {app!r} takes no parameters, got {sorted(params)}"
        )


def expand(spec: SweepSpec) -> list[Job]:
    """Expand a sweep into its immutable job list, axes in sorted-key
    order so the expansion order is deterministic."""
    fixed = dict(spec.fixed)
    jobs: list[Job] = []
    if spec.points:
        for point in spec.points:
            jobs.append(_route({**fixed, **dict(point)}, spec))
    if spec.axes or not spec.points:
        keys = [k for k, _ in spec.axes]
        value_lists = [v for _, v in spec.axes]
        for combo in itertools.product(*value_lists):
            jobs.append(_route({**fixed, **dict(zip(keys, combo))}, spec))
    if not jobs:
        raise ExploreError(f"sweep {spec.name!r} expanded to zero jobs")
    return jobs


def load_spec(path: str) -> SweepSpec:
    """Load a sweep spec from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ExploreError(f"sweep spec {path!r} is not JSON: {exc}") \
                from None
    if not isinstance(data, Mapping):
        raise ExploreError(f"sweep spec {path!r} must be a JSON object")
    return SweepSpec.from_dict(data)
