"""Append-only JSONL result store and sweep-level aggregation.

Every terminal job record — result or failure — appends one line to a
JSONL file with a schema version, so a sweep's history survives crashes
mid-run (lines already written stay valid) and heterogeneous sweeps can
share one store.  ``load`` tolerates truncated final lines (the one
partial write a crash can produce) and skips foreign-schema lines rather
than failing.

Crash-mid-append is handled on *both* sides of the file.  Reading, a
torn tail is skipped.  Writing, ``append`` first checks that the file
ends in a newline and repairs it if not — without this, the first
record written after a crash would be glued onto the torn tail and
*both* lines would be lost, silently shrinking the resume index
(``completed_records``) and re-running work ``--resume`` should have
skipped.  ``compact`` then drops the torn bytes for good while keeping
every valid record.

The optional ``chaos`` injector (see :mod:`repro.chaos`) simulates
exactly that crash: a torn append writes only a prefix of the line with
no newline.  ``chaos=None`` (the default) takes none of these branches.

Aggregation turns raw records into the paper's design-space axes:
the best-rate frontier per processor count (Figure 11's rate/processor
trade-off) and utilization versus processor count (Figure 13's bars).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "STORE_SCHEMA",
    "ResultStore",
    "SweepReport",
    "aggregate",
    "completed_records",
]

STORE_SCHEMA = 1


class ResultStore:
    """An append-only JSONL file of terminal job records."""

    def __init__(self, path: str | os.PathLike[str], *,
                 chaos: Any | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._chaos = chaos

    def _tail_torn(self) -> bool:
        """Whether the file ends mid-line (a crashed writer's partial
        append).  Missing and empty files are fine."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except (OSError, ValueError):
            return False

    def append(self, record: dict[str, Any]) -> None:
        line = json.dumps({"schema": STORE_SCHEMA, **record}, default=str)
        data = (line + "\n").encode("utf-8")
        if self._chaos is not None and self._chaos.tear_store_line(
                str(record.get("fingerprint", ""))):
            # Injected crash-mid-append: a prefix of the line, no
            # newline — the write a lost fsync leaves behind.
            data = data[: max(1, len(data) // 2)]
        repair = self._tail_torn()
        with open(self.path, "ab") as fh:
            if repair:
                # Close the torn line first so this record is not glued
                # onto it (and lost with it) — see the module docstring.
                fh.write(b"\n")
            fh.write(data)
            fh.flush()

    def compact(self, *, rotate_to: str | os.PathLike[str] | None = None,
                ) -> dict[str, int]:
        """Drop superseded records so a long-lived store stays bounded.

        A record is superseded when a *later* line carries the same
        fingerprint: re-running a sweep point appends a fresh terminal
        record each time, and only the newest one matters to resume
        logic and reports.  Records without a fingerprint (foreign or
        hand-written lines that passed the schema check) are kept
        verbatim.  The survivors keep their relative order; the rewrite
        is atomic (temp file + ``os.replace``), so a crash mid-compact
        leaves the original store intact.

        ``rotate_to`` additionally moves the *pre-compaction* file to
        that path first (rotation for audit trails), compacting into a
        fresh file at :attr:`path`.

        Returns ``{"kept": n, "dropped": m}``.
        """
        records = self.load()
        newest: dict[str, int] = {}
        for index, record in enumerate(records):
            fingerprint = record.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                newest[fingerprint] = index
        survivors = [
            record for index, record in enumerate(records)
            if not isinstance(record.get("fingerprint"), str)
            or not record.get("fingerprint")
            or newest[record["fingerprint"]] == index
        ]
        if rotate_to is not None and self.path.exists():
            rotated = Path(rotate_to)
            rotated.parent.mkdir(parents=True, exist_ok=True)
            os.replace(self.path, rotated)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                for record in survivors:
                    fh.write(json.dumps(record, default=str) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return {"kept": len(survivors),
                "dropped": len(records) - len(survivors)}

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a crashed writer
                if (isinstance(record, dict)
                        and record.get("schema") == STORE_SCHEMA):
                    yield record

    def load(self) -> list[dict[str, Any]]:
        return list(self)


@dataclass(slots=True)
class SweepReport:
    """Aggregate view over terminal records (possibly several sweeps)."""

    records: list[dict[str, Any]] = field(default_factory=list)

    @property
    def results(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "result"]

    @property
    def failures(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == "failure"]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.get("cache_hit"))

    def frontier(self) -> list[dict[str, Any]]:
        """Best achieved rate per (app, processor count), meeting points
        only — the Figure 11 axes.  Sorted by app then processor count."""
        best: dict[tuple[str, int], dict[str, Any]] = {}
        for rec in self.results:
            stats = rec.get("stats", {})
            if not stats.get("meets"):
                continue
            rate = stats.get("rate_hz") or 0.0
            key = (rec.get("job", {}).get("app", "?"),
                   int(stats.get("processor_count", 0)))
            if key not in best or rate > best[key]["rate_hz"]:
                best[key] = {
                    "app": key[0],
                    "processor_count": key[1],
                    "rate_hz": rate,
                    "label": rec.get("label", ""),
                }
        return sorted(best.values(),
                      key=lambda r: (r["app"], r["processor_count"]))

    def utilization_by_processors(self) -> list[dict[str, Any]]:
        """Mean utilization grouped by processor count — Figure 13's
        x-axis.  Includes missing points so under-provisioned regions of
        the space stay visible."""
        groups: dict[int, list[float]] = {}
        for rec in self.results:
            stats = rec.get("stats", {})
            count = int(stats.get("processor_count", 0))
            groups.setdefault(count, []).append(
                float(stats.get("avg_utilization", 0.0))
            )
        return [
            {
                "processor_count": count,
                "mean_utilization": sum(vals) / len(vals),
                "points": len(vals),
            }
            for count, vals in sorted(groups.items())
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": STORE_SCHEMA,
            "total": len(self.records),
            "succeeded": len(self.results),
            "failed": len(self.failures),
            "cache_hits": self.cache_hits,
            "frontier": self.frontier(),
            "utilization_by_processors": self.utilization_by_processors(),
            "failures": [
                {
                    "label": r.get("label", ""),
                    "kind": r.get("failure", {}).get("kind", "?"),
                    "message": r.get("failure", {}).get("message", ""),
                }
                for r in self.failures
            ],
        }

    def describe(self) -> str:
        lines = [
            f"{len(self.records)} records: {len(self.results)} ok, "
            f"{len(self.failures)} failed, {self.cache_hits} from cache"
        ]
        frontier = self.frontier()
        if frontier:
            lines.append("best-rate frontier (meets real-time):")
            for row in frontier:
                lines.append(
                    f"  {row['app']:>16} | {row['processor_count']:3d} PEs "
                    f"| {row['rate_hz']:8.1f} Hz"
                )
        util = self.utilization_by_processors()
        if util:
            lines.append("utilization vs processor count:")
            for row in util:
                lines.append(
                    f"  {row['processor_count']:3d} PEs | "
                    f"{row['mean_utilization']:6.1%} mean over "
                    f"{row['points']} point(s)"
                )
        for row in self.failures:
            fail = row.get("failure", {})
            lines.append(
                f"  FAILED {row.get('label', '?')}: {fail.get('kind', '?')}"
                f" — {fail.get('message', '')}"
            )
        return "\n".join(lines)


def aggregate(records: Iterable[dict[str, Any]]) -> SweepReport:
    """Build a :class:`SweepReport` from raw store records."""
    return SweepReport(records=list(records))


def completed_records(
    records: Iterable[dict[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Successful terminal records keyed by fingerprint, newest wins.

    This is the resume index: a sweep resumed against a store skips
    every job whose fingerprint appears here, exactly as the cache
    would.  Failures are excluded on purpose — a resumed sweep retries
    failed points rather than pinning a transient error forever (the
    same policy the cache applies).
    """
    index: dict[str, dict[str, Any]] = {}
    for record in records:
        fingerprint = record.get("fingerprint")
        if (record.get("kind") == "result"
                and isinstance(fingerprint, str) and fingerprint):
            index[fingerprint] = record
    return index
