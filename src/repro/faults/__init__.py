"""Deterministic fault injection and recovery for the simulated substrate.

See :mod:`repro.faults.model` for the declarative scenario language and
``docs/robustness.md`` for the full story: fault model, recovery
policies (retry / migration / shedding), and degradation accounting.
"""

from .injector import FaultInjector
from .model import (
    ChannelFaults,
    FaultSpec,
    FaultStats,
    PEFailure,
    RecoveryPolicy,
    TransientFaults,
    load_fault_spec,
)

__all__ = [
    "ChannelFaults",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "PEFailure",
    "RecoveryPolicy",
    "TransientFaults",
    "load_fault_spec",
]
