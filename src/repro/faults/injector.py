"""Seeded fault-injection engine driven by a :class:`~repro.faults.FaultSpec`.

The injector is the only source of randomness in a faulted simulation.
It owns one :class:`random.Random` seeded from the spec, and every draw
happens at a point whose order is fixed by the simulator's deterministic
event ordering — so the whole degraded run is a pure function of
``(spec, seed)`` and can be replayed bit for bit.
"""

from __future__ import annotations

import random
from collections import Counter

from .model import FaultSpec, FaultStats

__all__ = ["FaultInjector"]


class FaultInjector:
    """Decides, deterministically, where faults strike during one run."""

    __slots__ = ("spec", "stats", "_rng", "_schedule", "_kernels",
                 "_p_fault", "_p_drop", "_p_dup")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.stats = FaultStats()
        self._rng = random.Random(spec.seed)
        # Multiset: repeating (kernel, index) faults that many attempts.
        self._schedule: Counter[tuple[str, int]] = Counter(
            spec.transient.schedule
        )
        self._kernels = frozenset(spec.transient.kernels)
        self._p_fault = spec.transient.probability
        self._p_drop = spec.channel.drop_probability
        self._p_dup = spec.channel.duplicate_probability

    def firing_faulted(self, kernel: str, index: int) -> bool:
        """Whether this firing attempt of ``kernel`` suffers a transient fault.

        ``index`` is the count of the kernel's successful firings so far,
        so retried attempts consult the same schedule entry again.
        """
        key = (kernel, index)
        if self._schedule.get(key, 0) > 0:
            self._schedule[key] -= 1
            self.stats.injected += 1
            return True
        if self._p_fault > 0.0 and (not self._kernels
                                    or kernel in self._kernels):
            if self._rng.random() < self._p_fault:
                self.stats.injected += 1
                return True
        return False

    def transfer_dropped(self) -> bool:
        if self._p_drop > 0.0 and self._rng.random() < self._p_drop:
            self.stats.transfers_dropped += 1
            return True
        return False

    def transfer_duplicated(self) -> bool:
        if self._p_dup > 0.0 and self._rng.random() < self._p_dup:
            self.stats.transfers_duplicated += 1
            return True
        return False
