"""Declarative, seed-deterministic fault specifications.

The paper targets real-time *embedded* deployments, where the substrate
degrades: processing elements die or slow down, firings suffer transient
upsets, transfers get lost or replayed on a flaky interconnect.  A
:class:`FaultSpec` describes such a scenario declaratively — plain data,
JSON round-trippable, validated on construction — and attaches to
:class:`~repro.sim.SimulationOptions`.  Everything the injected scenario
does is a pure function of ``(spec, seed)``: repeating a simulation with
the same spec reproduces the same faults, recoveries, and timings bit
for bit, which is what lets fault scenarios be swept and cached like any
other design axis (``repro.explore``).

Scope notes
-----------
* Faults strike **on-chip** kernels only.  Application inputs, constant
  sources, and outputs model off-chip I/O and are assumed reliable (the
  input's reliability is already a modelling axiom — it cannot be
  stalled).
* Control tokens are never dropped or duplicated: they ride the
  reliable control plane that end-of-frame resynchronization depends on.
  Channel faults apply to data transfers.
* A processing element fails *fail-stop at firing boundaries*: a firing
  in flight when the element dies completes, then the element never
  starts another.  This matches the firing being the atomic scheduling
  unit of the runtime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..errors import FaultSpecError

__all__ = [
    "TransientFaults",
    "PEFailure",
    "ChannelFaults",
    "RecoveryPolicy",
    "FaultSpec",
    "FaultStats",
    "load_fault_spec",
]


def _check_probability(name: str, value: float) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise FaultSpecError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 <= value <= 1.0:
        raise FaultSpecError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _check_non_negative(name: str, value: float) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise FaultSpecError(f"{name} must be a number, got {value!r}") from None
    if value < 0:
        raise FaultSpecError(f"{name} must be non-negative, got {value!r}")
    return value


def _reject_unknown(what: str, data: Mapping[str, Any], known: set[str]) -> None:
    unknown = set(data) - known
    if unknown:
        raise FaultSpecError(
            f"unknown {what} keys: {sorted(unknown)} (known: {sorted(known)})"
        )


@dataclass(frozen=True, slots=True)
class TransientFaults:
    """Transient (soft) firing faults on on-chip kernels.

    A faulted firing attempt wastes its processing element for the
    firing's declared cycles (the fault is detected at the end of the
    attempt), then the recovery policy decides what happens next.
    """

    #: Per-firing-attempt fault probability.
    probability: float = 0.0
    #: Restrict probabilistic faults to these kernels; empty = all.
    kernels: tuple[str, ...] = ()
    #: Deterministic injections at ``(kernel, firing_index)`` — the
    #: index counts that kernel's *successful* firings, so a retried
    #: attempt does not shift later schedule entries.  Repeating one
    #: entry faults that many consecutive attempts.
    schedule: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        _check_probability("transient.probability", self.probability)
        for entry in self.schedule:
            if (len(entry) != 2 or not isinstance(entry[0], str)
                    or int(entry[1]) < 0):
                raise FaultSpecError(
                    "transient.schedule entries must be "
                    f"(kernel, firing_index >= 0), got {entry!r}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "probability": self.probability,
            "kernels": list(self.kernels),
            "schedule": [list(e) for e in self.schedule],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TransientFaults":
        _reject_unknown("transient", data,
                        {"probability", "kernels", "schedule"})
        schedule = []
        for entry in data.get("schedule", ()):
            try:
                kernel, index = entry
            except (TypeError, ValueError):
                raise FaultSpecError(
                    "transient.schedule entries must be "
                    f"(kernel, firing_index) pairs, got {entry!r}"
                ) from None
            schedule.append((str(kernel), int(index)))
        return cls(
            probability=float(data.get("probability", 0.0)),
            kernels=tuple(data.get("kernels", ())),
            schedule=tuple(schedule),
        )


@dataclass(frozen=True, slots=True)
class PEFailure:
    """Permanent death of one processing element at a simulated time."""

    processor: int
    time_s: float

    def __post_init__(self) -> None:
        if int(self.processor) < 0:
            raise FaultSpecError(
                f"pe_failures.processor must be >= 0, got {self.processor!r}"
            )
        _check_non_negative("pe_failures.time_s", self.time_s)

    def to_dict(self) -> dict[str, Any]:
        return {"processor": self.processor, "time_s": self.time_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PEFailure":
        _reject_unknown("pe_failures", data, {"processor", "time_s"})
        if "processor" not in data or "time_s" not in data:
            raise FaultSpecError(
                "pe_failures entries need 'processor' and 'time_s', "
                f"got {dict(data)!r}"
            )
        return cls(processor=int(data["processor"]),
                   time_s=float(data["time_s"]))


@dataclass(frozen=True, slots=True)
class ChannelFaults:
    """Lost or replayed data transfers on the interconnect.

    Applies per data item delivered into a channel; control tokens are
    exempt (see the module docstring).  ``edges`` restricts the faults
    to specific channels, keyed like the capacity overrides of
    :class:`~repro.sim.SimulationOptions`.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Restrict to these ``(src, src_port, dst, dst_port)`` channels;
    #: empty = every channel.
    edges: tuple[tuple[str, str, str, str], ...] = ()

    def __post_init__(self) -> None:
        _check_probability("channel.drop_probability", self.drop_probability)
        _check_probability("channel.duplicate_probability",
                           self.duplicate_probability)
        for edge in self.edges:
            if len(edge) != 4 or not all(isinstance(e, str) for e in edge):
                raise FaultSpecError(
                    "channel.edges entries must be "
                    f"(src, src_port, dst, dst_port), got {edge!r}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "drop_probability": self.drop_probability,
            "duplicate_probability": self.duplicate_probability,
            "edges": [list(e) for e in self.edges],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChannelFaults":
        _reject_unknown(
            "channel", data,
            {"drop_probability", "duplicate_probability", "edges"},
        )
        return cls(
            drop_probability=float(data.get("drop_probability", 0.0)),
            duplicate_probability=float(data.get("duplicate_probability", 0.0)),
            edges=tuple(tuple(str(p) for p in e)
                        for e in data.get("edges", ())),
        )


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """What the runtime does when a fault strikes.

    Three escalating mechanisms, all accounted in simulated time:

    * **retry** — a faulted firing is re-attempted after ``backoff_cycles``
      times the attempt number, up to ``max_retries`` extra attempts;
    * **migration** — when a processing element dies, every kernel it
      hosted moves to a spare element reserved by the mapper
      (``CompileOptions.spare_processors``), paying ``migration_cycles``
      before the spare accepts work;
    * **shedding** — a firing whose retries are exhausted consumes its
      inputs but drops its *data* emissions (tokens still flow, so the
      frame structure resynchronizes); the frame degrades to an
      incomplete one instead of carrying wrong pixels downstream.

    With ``shed=False`` an unrecovered firing emits zeroed data instead —
    the silent-divergence baseline shedding exists to avoid.
    """

    max_retries: int = 0
    backoff_cycles: float = 0.0
    migrate: bool = False
    migration_cycles: float = 0.0
    shed: bool = False

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise FaultSpecError(
                f"recovery.max_retries must be >= 0, got {self.max_retries!r}"
            )
        _check_non_negative("recovery.backoff_cycles", self.backoff_cycles)
        _check_non_negative("recovery.migration_cycles", self.migration_cycles)

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_retries": self.max_retries,
            "backoff_cycles": self.backoff_cycles,
            "migrate": self.migrate,
            "migration_cycles": self.migration_cycles,
            "shed": self.shed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RecoveryPolicy":
        _reject_unknown(
            "recovery", data,
            {"max_retries", "backoff_cycles", "migrate", "migration_cycles",
             "shed"},
        )
        return cls(
            max_retries=int(data.get("max_retries", 0)),
            backoff_cycles=float(data.get("backoff_cycles", 0.0)),
            migrate=bool(data.get("migrate", False)),
            migration_cycles=float(data.get("migration_cycles", 0.0)),
            shed=bool(data.get("shed", False)),
        )


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A complete, validated fault scenario for one simulation."""

    seed: int = 0
    transient: TransientFaults = field(default_factory=TransientFaults)
    pe_failures: tuple[PEFailure, ...] = ()
    #: ``(processor, cycle_multiplier)`` pairs: the element still works
    #: but every firing takes ``multiplier`` times as long (aging,
    #: thermal throttling).  A multiplier of 1.0 is a no-op.
    slow_pes: tuple[tuple[int, float], ...] = ()
    channel: ChannelFaults = field(default_factory=ChannelFaults)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def __post_init__(self) -> None:
        int(self.seed)  # must be integral
        seen: set[int] = set()
        for proc, mult in self.slow_pes:
            if int(proc) < 0:
                raise FaultSpecError(
                    f"slow_pes processor must be >= 0, got {proc!r}"
                )
            if float(mult) <= 0:
                raise FaultSpecError(
                    f"slow_pes multiplier must be positive, got {mult!r}"
                )
            if proc in seen:
                raise FaultSpecError(
                    f"slow_pes lists processor {proc} twice"
                )
            seen.add(proc)
        dead: set[int] = set()
        for failure in self.pe_failures:
            if failure.processor in dead:
                raise FaultSpecError(
                    f"pe_failures lists processor {failure.processor} twice"
                )
            dead.add(failure.processor)

    def active(self) -> bool:
        """Whether this spec can inject anything at all.

        A spec that cannot (zero probabilities, empty schedules, no
        deaths, unit multipliers) leaves the simulator on its zero-fault
        path, observably identical to running with no spec.
        """
        return bool(
            self.transient.probability > 0.0
            or self.transient.schedule
            or self.pe_failures
            or any(mult != 1.0 for _, mult in self.slow_pes)
            or self.channel.drop_probability > 0.0
            or self.channel.duplicate_probability > 0.0
        )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=int(seed))

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "transient": self.transient.to_dict(),
            "pe_failures": [f.to_dict() for f in self.pe_failures],
            "slow_pes": [list(p) for p in self.slow_pes],
            "channel": self.channel.to_dict(),
            "recovery": self.recovery.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise FaultSpecError(
                f"fault spec must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown(
            "fault spec", data,
            {"seed", "transient", "pe_failures", "slow_pes", "channel",
             "recovery"},
        )
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultSpecError(
                f"seed must be an integer, got {data.get('seed')!r}"
            ) from None
        return cls(
            seed=seed,
            transient=TransientFaults.from_dict(data.get("transient", {})),
            pe_failures=tuple(
                PEFailure.from_dict(f) for f in data.get("pe_failures", ())
            ),
            slow_pes=tuple(
                (int(p), float(m)) for p, m in data.get("slow_pes", ())
            ),
            channel=ChannelFaults.from_dict(data.get("channel", {})),
            recovery=RecoveryPolicy.from_dict(data.get("recovery", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"fault spec is not JSON: {exc}") from None
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """Stable identity string: equivalent specs fingerprint equal."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def load_fault_spec(path: str) -> FaultSpec:
    """Load and validate a :class:`FaultSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        return FaultSpec.from_json(text)
    except FaultSpecError as exc:
        raise FaultSpecError(f"{path}: {exc}") from None


@dataclass(slots=True)
class FaultStats:
    """Degradation accounting for one simulation run.

    All counters are zero on the zero-fault path; the result's
    ``as_dict`` only carries the section when a fault spec was active,
    keeping the conformance surface of fault-free runs unchanged.
    """

    #: Transient firing faults injected (every faulted attempt).
    injected: int = 0
    #: Retry attempts consumed recovering from transient faults.
    retries: int = 0
    #: Transient faults that a retry eventually cleared.
    recovered: int = 0
    #: Faults past recovery: exhausted retries, or a dead element with
    #: no spare to migrate to.
    unrecovered: int = 0
    #: Unrecovered firings that emitted corrupted (zeroed) data because
    #: shedding was disabled.
    corrupted: int = 0
    #: Data emissions dropped by the shedding policy.
    data_shed: int = 0
    #: Processing elements that died.
    pe_deaths: int = 0
    #: Kernel-group migrations to a spare element.
    migrations: int = 0
    transfers_dropped: int = 0
    transfers_duplicated: int = 0
    #: Total simulated time from fault to restored service, summed over
    #: retry recoveries and migrations.
    recovery_latency_s: float = 0.0

    @property
    def activity(self) -> bool:
        return bool(
            self.injected or self.pe_deaths or self.transfers_dropped
            or self.transfers_duplicated or self.data_shed or self.corrupted
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "injected": self.injected,
            "retries": self.retries,
            "recovered": self.recovered,
            "unrecovered": self.unrecovered,
            "corrupted": self.corrupted,
            "data_shed": self.data_shed,
            "pe_deaths": self.pe_deaths,
            "migrations": self.migrations,
            "transfers_dropped": self.transfers_dropped,
            "transfers_duplicated": self.transfers_duplicated,
            "recovery_latency_s": self.recovery_latency_s,
        }

    def describe(self) -> str:
        return (
            f"faults: {self.injected} injected "
            f"({self.recovered} recovered via {self.retries} retries, "
            f"{self.unrecovered} unrecovered), "
            f"{self.pe_deaths} PE deaths / {self.migrations} migrations, "
            f"{self.transfers_dropped} transfers dropped / "
            f"{self.transfers_duplicated} duplicated, "
            f"{self.data_shed} emissions shed, {self.corrupted} corrupted, "
            f"recovery latency {self.recovery_latency_s * 1e3:.3f} ms"
        )
