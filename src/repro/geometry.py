"""Two-dimensional geometry for the block-parallel data model.

The language fixes a left-to-right, top-to-bottom scan-line order over
two-dimensional data (Section II-A of the paper).  Everything the compiler
needs to reason about — window sizes, steps, offsets, iteration counts,
insets, and data reuse — reduces to small amounts of integer/rational 2-D
arithmetic, collected here.

Conventions
-----------
* ``x`` indexes columns (width), ``y`` indexes rows (height).
* A *window* is the rectangular extent a port reads or writes per iteration.
* A *step* is how far the window advances per iteration in each dimension.
* An *offset* maps the window's upper-left corner to the logical position of
  the produced output; it may be fractional for downsampling kernels
  (footnote 2 of the paper).
* An *inset* measures how far a data region's upper-left corner sits from
  the upper-left corner of the original application input that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .errors import AnalysisError, PortError

__all__ = [
    "Size2D",
    "Step2D",
    "Offset2D",
    "Inset",
    "Region",
    "iteration_count",
    "iteration_grid",
    "output_extent",
    "halo",
    "steady_state_reuse",
    "window_positions",
]


@dataclass(frozen=True, slots=True)
class Size2D:
    """A strictly positive 2-D extent in elements (width x height)."""

    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise PortError(f"sizes must be positive, got {self.w}x{self.h}")

    @property
    def elements(self) -> int:
        """Total element count of the extent."""
        return self.w * self.h

    def __str__(self) -> str:  # matches the paper's "(WxH)" rendering
        return f"({self.w}x{self.h})"

    def __iter__(self):
        yield self.w
        yield self.h

    def fits_in(self, other: "Size2D") -> bool:
        """True when this extent fits inside ``other`` in both dimensions."""
        return self.w <= other.w and self.h <= other.h


@dataclass(frozen=True, slots=True)
class Step2D:
    """How far a window advances per iteration in each dimension."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x <= 0 or self.y <= 0:
            raise PortError(f"steps must be positive, got [{self.x},{self.y}]")

    def __str__(self) -> str:  # matches the paper's "[sx,sy]" rendering
        return f"[{self.x},{self.y}]"

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class Offset2D:
    """Offset from a window's upper-left corner to its logical output.

    Stored as exact rationals so fractional offsets used by downsampling
    kernels do not accumulate floating-point error during inset propagation.
    """

    x: Fraction
    y: Fraction

    def __init__(self, x: float | int | Fraction, y: float | int | Fraction) -> None:
        object.__setattr__(self, "x", Fraction(x).limit_denominator(1 << 16))
        object.__setattr__(self, "y", Fraction(y).limit_denominator(1 << 16))

    def __str__(self) -> str:  # matches the paper's "[x.y,x.y]" rendering
        return f"[{float(self.x):.1f},{float(self.y):.1f}]"

    def __add__(self, other: "Offset2D") -> "Offset2D":
        return Offset2D(self.x + other.x, self.y + other.y)

    def __iter__(self):
        yield self.x
        yield self.y

    @property
    def is_integral(self) -> bool:
        return self.x.denominator == 1 and self.y.denominator == 1


#: An inset is dimensionally identical to an offset: a (possibly fractional)
#: displacement from the original application input's origin.
Inset = Offset2D


@dataclass(frozen=True, slots=True)
class Region:
    """A rectangle of data positioned relative to an application input.

    ``extent`` is the size of the region; ``inset`` locates its upper-left
    corner relative to the origin of the application input whose data flowed
    into it.  Two regions feeding one multi-input method are *aligned* when
    both extent and inset agree.
    """

    extent: Size2D
    inset: Inset = Inset(0, 0)

    def __str__(self) -> str:
        return f"{self.extent}@{self.inset}"

    def aligned_with(self, other: "Region") -> bool:
        return self.extent == other.extent and self.inset == other.inset

    def intersection(self, other: "Region") -> "Region":
        """The overlapping region of two regions in input coordinates.

        Used by the alignment transform to decide how much to trim from the
        larger region (Figure 8: "3x3 and 5x5 Outputs Aligned").
        """
        left = max(self.inset.x, other.inset.x)
        top = max(self.inset.y, other.inset.y)
        right = min(self.inset.x + self.extent.w, other.inset.x + other.extent.w)
        bottom = min(self.inset.y + self.extent.h, other.inset.y + other.extent.h)
        if right <= left or bottom <= top:
            raise AnalysisError(f"regions {self} and {other} do not overlap")
        w, h = right - left, bottom - top
        if w.denominator != 1 or h.denominator != 1:
            raise AnalysisError(
                f"intersection of {self} and {other} has fractional extent"
            )
        return Region(Size2D(int(w), int(h)), Inset(left, top))

    def union_bound(self, other: "Region") -> "Region":
        """Smallest region covering both (used for padding decisions)."""
        left = min(self.inset.x, other.inset.x)
        top = min(self.inset.y, other.inset.y)
        right = max(self.inset.x + self.extent.w, other.inset.x + other.extent.w)
        bottom = max(self.inset.y + self.extent.h, other.inset.y + other.extent.h)
        w, h = right - left, bottom - top
        if w.denominator != 1 or h.denominator != 1:
            raise AnalysisError(f"union of {self} and {other} has fractional extent")
        return Region(Size2D(int(w), int(h)), Inset(left, top))

    def trim_margins(self, target: "Region") -> tuple[int, int, int, int]:
        """(left, top, right, bottom) margins to trim to reach ``target``.

        Raises when ``target`` is not contained in this region or margins
        would be fractional.
        """
        left = target.inset.x - self.inset.x
        top = target.inset.y - self.inset.y
        right = (self.inset.x + self.extent.w) - (target.inset.x + target.extent.w)
        bottom = (self.inset.y + self.extent.h) - (target.inset.y + target.extent.h)
        margins = (left, top, right, bottom)
        if any(m < 0 for m in margins):
            raise AnalysisError(f"target {target} is not contained in {self}")
        if any(m.denominator != 1 for m in margins):
            raise AnalysisError(f"trimming {self} to {target} needs fractional margins")
        return tuple(int(m) for m in margins)  # type: ignore[return-value]


def iteration_count(extent: int, window: int, step: int) -> int:
    """Number of window positions along one dimension.

    ``floor((extent - window) / step) + 1``; e.g. a 100-wide row through a
    5-wide window at step 1 yields 96 iterations (Section III-A).
    """
    if window > extent:
        raise AnalysisError(
            f"window of {window} does not fit in extent of {extent}"
        )
    return (extent - window) // step + 1


def iteration_grid(extent: Size2D, window: Size2D, step: Step2D) -> Size2D:
    """2-D iteration counts for a window scanned over an extent."""
    return Size2D(
        iteration_count(extent.w, window.w, step.x),
        iteration_count(extent.h, window.h, step.y),
    )


def output_extent(iterations: Size2D, out_size: Size2D) -> Size2D:
    """Extent produced by ``iterations`` firings each emitting ``out_size``.

    The output tiles of successive iterations abut (output step equals output
    size in this model), so the produced extent is the elementwise product.
    """
    return Size2D(iterations.w * out_size.w, iterations.h * out_size.h)


def halo(window: Size2D, step: Step2D) -> Size2D | tuple[int, int]:
    """Halo of a windowed input: ``window - step`` per dimension.

    The 5x5 step-(1,1) convolution has a 4x4 halo (Section III-A).  Returned
    as a plain tuple because a halo may legitimately be zero.
    """
    return (window.w - step.x, window.h - step.y)


def steady_state_reuse(window: Size2D, step: Step2D) -> Fraction:
    """Fraction of window elements reused between consecutive iterations.

    In steady state — previous rows resident in the buffer — only
    ``step_x * step_y`` elements of each window are new; everything else
    was already received.  A 5x5 window at step (1,1) therefore reuses
    24 of 25 elements (Figure 5(b)).
    """
    fresh = min(step.x * step.y, window.elements)
    return Fraction(window.elements - fresh, window.elements)


def window_positions(extent: Size2D, window: Size2D, step: Step2D):
    """Yield (x, y) upper-left window positions in scan-line order."""
    its = iteration_grid(extent, window, step)
    for iy in range(its.h):
        for ix in range(its.w):
            yield (ix * step.x, iy * step.y)

