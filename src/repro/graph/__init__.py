"""Language core: ports, methods, kernels, edges, and application graphs."""

from .app import ApplicationGraph
from .edges import DependencyEdge, StreamEdge
from .kernel import FiringContext, Kernel, TransferResult
from .methods import MethodCost, MethodSpec, TokenTrigger
from .ports import Direction, InputSpec, OutputSpec
from .serialize import (
    canonical_json,
    dumps,
    fingerprint,
    from_json,
    loads,
    to_json,
)

__all__ = [
    "ApplicationGraph",
    "DependencyEdge",
    "StreamEdge",
    "FiringContext",
    "Kernel",
    "TransferResult",
    "MethodCost",
    "MethodSpec",
    "TokenTrigger",
    "Direction",
    "InputSpec",
    "OutputSpec",
    "canonical_json",
    "dumps",
    "fingerprint",
    "from_json",
    "loads",
    "to_json",
]
