"""The application graph: kernels, stream channels, dependency edges.

An application is a directed graph of kernels connected by stream channels
(Section II), plus data-dependency edges that limit parallelism (Section
IV-B).  Application inputs declare their frame size and rate, which is the
source of every real-time constraint downstream.

The graph is a mutable container deliberately separate from the analyses:
compiler passes produce transformed copies, leaving the programmer's graph
untouched.
"""

from __future__ import annotations

import copy
from typing import Iterator, TYPE_CHECKING

import networkx as nx

from ..errors import GraphError
from .edges import DependencyEdge, StreamEdge
from .kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..kernels.sources import ApplicationInput, ApplicationOutput

__all__ = ["ApplicationGraph"]


class ApplicationGraph:
    """A block-parallel application under construction or transformation."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._kernels: dict[str, Kernel] = {}
        self._edges: list[StreamEdge] = []
        self._deps: list[DependencyEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_kernel(self, kernel: Kernel) -> Kernel:
        if kernel.name in self._kernels:
            raise GraphError(f"duplicate kernel name {kernel.name!r}")
        self._kernels[kernel.name] = kernel
        return kernel

    def add_input(
        self, name: str, width: int, height: int, rate_hz: float
    ) -> "ApplicationInput":
        """Declare an application input of ``width x height`` frames at
        ``rate_hz`` frames per second; data arrives one element at a time in
        scan-line order with end-of-line/end-of-frame tokens interleaved."""
        from ..kernels.sources import ApplicationInput  # circular at module load

        return self.add_kernel(
            ApplicationInput(name, width, height, rate_hz)
        )  # type: ignore[return-value]

    def add_output(self, name: str) -> "ApplicationOutput":
        """Declare an application output (a sink that records arrivals)."""
        from ..kernels.sources import ApplicationOutput

        return self.add_kernel(ApplicationOutput(name))  # type: ignore[return-value]

    def connect(
        self, src: str | Kernel, src_port: str, dst: str | Kernel, dst_port: str
    ) -> StreamEdge:
        """Connect ``src.src_port`` to ``dst.dst_port`` with a stream channel.

        Outputs may fan out to several inputs (the application input in
        Figure 1 feeds both filters); each input accepts exactly one channel.
        """
        src_name = src.name if isinstance(src, Kernel) else src
        dst_name = dst.name if isinstance(dst, Kernel) else dst
        src_k = self.kernel(src_name)
        dst_k = self.kernel(dst_name)
        src_k.output_spec(src_port)  # raises PortError on unknown ports
        dst_k.input_spec(dst_port)
        if self.edge_into(dst_name, dst_port) is not None:
            raise GraphError(
                f"input {dst_name}.{dst_port} already has an incoming channel"
            )
        edge = StreamEdge(src_name, src_port, dst_name, dst_port)
        self._edges.append(edge)
        return edge

    def add_dependency(self, src: str | Kernel, dst: str | Kernel) -> DependencyEdge:
        """Add a data-dependency edge limiting ``dst`` parallelism to ``src``'s."""
        src_name = src.name if isinstance(src, Kernel) else src
        dst_name = dst.name if isinstance(dst, Kernel) else dst
        self.kernel(src_name)
        self.kernel(dst_name)
        dep = DependencyEdge(src_name, dst_name)
        self._deps.append(dep)
        return dep

    def remove_edge(self, edge: StreamEdge) -> None:
        try:
            self._edges.remove(edge)
        except ValueError:
            raise GraphError(f"no such edge: {edge}") from None

    def remove_kernel(self, name: str) -> None:
        """Remove a kernel and every edge touching it."""
        self.kernel(name)
        del self._kernels[name]
        self._edges = [e for e in self._edges if name not in (e.src, e.dst)]
        self._deps = [d for d in self._deps if name not in (d.src, d.dst)]

    def rename_kernel(self, old: str, new: str) -> None:
        """Rename a kernel, rewriting all edges that reference it."""
        k = self.kernel(old)
        if new in self._kernels:
            raise GraphError(f"duplicate kernel name {new!r}")
        del self._kernels[old]
        k._name = new  # the graph owns kernel identity
        self._kernels[new] = k
        self._edges = [
            StreamEdge(
                new if e.src == old else e.src,
                e.src_port,
                new if e.dst == old else e.dst,
                e.dst_port,
            )
            for e in self._edges
        ]
        self._deps = [
            DependencyEdge(new if d.src == old else d.src,
                           new if d.dst == old else d.dst)
            for d in self._deps
        ]

    def insert_on_edge(
        self, edge: StreamEdge, kernel: Kernel, in_port: str, out_port: str
    ) -> tuple[StreamEdge, StreamEdge]:
        """Splice ``kernel`` into ``edge`` (used by buffer/inset insertion).

        The original channel is replaced by ``src -> kernel.in_port`` and
        ``kernel.out_port -> dst``.
        """
        if kernel.name not in self._kernels:
            self.add_kernel(kernel)
        self.remove_edge(edge)
        first = self.connect(edge.src, edge.src_port, kernel.name, in_port)
        second = self.connect(kernel.name, out_port, edge.dst, edge.dst_port)
        return first, second

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def kernel(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise GraphError(f"no kernel named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    @property
    def kernels(self) -> dict[str, Kernel]:
        return dict(self._kernels)

    @property
    def edges(self) -> list[StreamEdge]:
        return list(self._edges)

    @property
    def dependencies(self) -> list[DependencyEdge]:
        return list(self._deps)

    def in_edges(self, name: str) -> list[StreamEdge]:
        return [e for e in self._edges if e.dst == name]

    def out_edges(self, name: str) -> list[StreamEdge]:
        return [e for e in self._edges if e.src == name]

    def edge_into(self, name: str, port: str) -> StreamEdge | None:
        for e in self._edges:
            if e.dst == name and e.dst_port == port:
                return e
        return None

    def edges_from(self, name: str, port: str) -> list[StreamEdge]:
        return [e for e in self._edges if e.src == name and e.src_port == port]

    def predecessors(self, name: str) -> list[str]:
        seen: list[str] = []
        for e in self.in_edges(name):
            if e.src not in seen:
                seen.append(e.src)
        return seen

    def successors(self, name: str) -> list[str]:
        seen: list[str] = []
        for e in self.out_edges(name):
            if e.dst not in seen:
                seen.append(e.dst)
        return seen

    def application_inputs(self) -> list[Kernel]:
        from ..kernels.sources import ApplicationInput

        return [k for k in self._kernels.values() if isinstance(k, ApplicationInput)]

    def application_outputs(self) -> list[Kernel]:
        from ..kernels.sources import ApplicationOutput

        return [k for k in self._kernels.values() if isinstance(k, ApplicationOutput)]

    def dependency_sources(self, name: str) -> list[str]:
        return [d.src for d in self._deps if d.dst == name]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def to_networkx(self, *, include_dependencies: bool = False) -> nx.MultiDiGraph:
        """The stream topology as a networkx graph for generic algorithms."""
        g = nx.MultiDiGraph(name=self.name)
        for name, k in self._kernels.items():
            g.add_node(name, kernel=k)
        for e in self._edges:
            g.add_edge(e.src, e.dst, edge=e, kind="stream")
        if include_dependencies:
            for d in self._deps:
                g.add_edge(d.src, d.dst, edge=d, kind="dependency")
        return g

    def topological_order(self) -> list[str]:
        """Kernel names in dataflow order.

        Edges into kernels flagged ``breaks_cycle`` (feedback kernels,
        Section III-D) are ignored when ordering, which is exactly the
        "break the feedback loops using special feedback kernels" strategy
        the paper describes.
        """
        g = nx.DiGraph()
        g.add_nodes_from(self._kernels)
        for e in self._edges:
            if getattr(self._kernels[e.dst], "breaks_cycle", False):
                continue
            g.add_edge(e.src, e.dst)
        try:
            return list(nx.topological_sort(g))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(g)
            raise GraphError(
                "application graph has a cycle not broken by a feedback "
                f"kernel: {' -> '.join(u for u, _ in cycle)}"
            ) from None

    def iter_kernels(self) -> Iterator[Kernel]:
        return iter(self._kernels.values())

    # ------------------------------------------------------------------
    # Validation and utility
    # ------------------------------------------------------------------
    def check_connected(self) -> None:
        """Every input port must have a channel; every output at least one.

        Unconnected outputs are an error because data would silently vanish;
        sinks should be explicit ApplicationOutput kernels.
        """
        for name, k in self._kernels.items():
            for port in k.inputs:
                if self.edge_into(name, port) is None:
                    raise GraphError(f"unconnected input: {name}.{port}")
            for port in k.outputs:
                if not self.edges_from(name, port):
                    raise GraphError(f"unconnected output: {name}.{port}")

    def copy(self, name: str | None = None) -> "ApplicationGraph":
        """A deep copy (kernels cloned) for compiler passes to transform."""
        twin = ApplicationGraph(name or self.name)
        for k in self._kernels.values():
            twin.add_kernel(copy.deepcopy(k))
        twin._edges = list(self._edges)
        twin._deps = list(self._deps)
        return twin

    def fresh_name(self, base: str) -> str:
        """A kernel name not yet present, derived from ``base``."""
        if base not in self._kernels:
            return base
        i = 0
        while f"{base}_{i}" in self._kernels:
            i += 1
        return f"{base}_{i}"

    def describe(self) -> str:
        """Human-readable dump used by examples and reports."""
        lines = [f"application {self.name!r}:"]
        for name in self.topological_order():
            k = self._kernels[name]
            lines.append(f"  {name} [{type(k).__name__}]")
            for port, spec in k.inputs.items():
                src = self.edge_into(name, port)
                origin = f" <- {src.src}.{src.src_port}" if src else " (unconnected)"
                lines.append(f"    in  {spec.describe()}{origin}")
            for port, spec in k.outputs.items():
                dests = ", ".join(
                    f"{e.dst}.{e.dst_port}" for e in self.edges_from(name, port)
                )
                lines.append(f"    out {spec.describe()} -> {dests or '(unconnected)'}")
        for d in self._deps:
            lines.append(f"  {d}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ApplicationGraph {self.name!r}: {len(self._kernels)} kernels, "
            f"{len(self._edges)} channels, {len(self._deps)} dependencies>"
        )
