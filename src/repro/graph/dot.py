"""Graphviz export of application graphs, in the paper's visual idiom.

The figures of the paper draw computation kernels as boxes, buffers as
parallelograms, split/join kernels as diamonds, inset kernels as inverted
houses, replicated-input edges dashed, and data-dependency edges as thin
annotations.  :func:`to_dot` reproduces that styling so a compiled graph
rendered with ``dot -Tsvg`` looks like Figures 3/4/11.

No graphviz dependency: the output is plain dot text.
"""

from __future__ import annotations

from ..kernels.buffer import BufferKernel
from ..kernels.inset import InsetKernel, PadKernel
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..kernels.splitjoin import (
    ColumnSplit,
    CountedJoin,
    ReplicateKernel,
    RoundRobinJoin,
    RoundRobinSplit,
)
from .app import ApplicationGraph

__all__ = ["to_dot"]

_SPLITJOIN = (RoundRobinSplit, RoundRobinJoin, ColumnSplit, CountedJoin,
              ReplicateKernel)


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def _node_attrs(kernel) -> dict[str, str]:
    if isinstance(kernel, ApplicationInput):
        return {
            "shape": "oval",
            "label": f"{kernel.name}\\n{kernel.width}x{kernel.height}"
                     f" @ {kernel.rate_hz:g}Hz",
            "style": "bold",
        }
    if isinstance(kernel, ApplicationOutput):
        return {"shape": "oval", "label": kernel.name, "style": "bold"}
    if isinstance(kernel, ConstantSource):
        return {"shape": "oval", "label": kernel.name}
    if isinstance(kernel, BufferKernel):
        return {
            "shape": "parallelogram",
            "label": f"{kernel.name}\\n{kernel.describe_parameterization()}",
        }
    if isinstance(kernel, _SPLITJOIN):
        return {"shape": "diamond", "label": kernel.name,
                "color": "steelblue"}
    if isinstance(kernel, (InsetKernel, PadKernel)):
        detail = (
            f"trim {kernel.trim}" if isinstance(kernel, InsetKernel)
            else f"pad {kernel.pad}"
        )
        return {"shape": "invhouse", "label": f"{kernel.name}\\n{detail}"}
    return {"shape": "box", "label": kernel.name}


def to_dot(app: ApplicationGraph, *, rankdir: str = "LR",
           mapping=None) -> str:
    """Render ``app`` as Graphviz dot text.

    Passing a kernel-to-processor ``mapping`` (from
    :mod:`repro.transform.multiplex`) draws each processing element as a
    cluster box around its kernels — the Figure 12 view of which kernels
    run time-multiplexed together.
    """
    lines = [
        f"digraph {_quote(app.name)} {{",
        f"  rankdir={rankdir};",
        "  node [fontname=Helvetica fontsize=10];",
        "  edge [fontname=Helvetica fontsize=8];",
    ]

    def node_line(name: str, kernel, indent: str = "  ") -> str:
        attrs = _node_attrs(kernel)
        rendered = " ".join(f"{k}={_quote(v)}" for k, v in attrs.items())
        return f"{indent}{_quote(name)} [{rendered}];"

    if mapping is not None:
        for proc, members in mapping.processors().items():
            lines.append(f"  subgraph cluster_pe{proc} {{")
            lines.append(f'    label="PE{proc}"; style=rounded; color=gray;')
            for name in members:
                lines.append(node_line(name, app.kernel(name), indent="    "))
            lines.append("  }")
        for name, kernel in app.kernels.items():
            if mapping.processor_of(name) is None:
                lines.append(node_line(name, kernel))
    else:
        for name, kernel in app.kernels.items():
            lines.append(node_line(name, kernel))
    for edge in app.edges:
        spec = app.kernel(edge.dst).input_spec(edge.dst_port)
        style = " [style=dashed]" if spec.replicated else ""
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)}{style};"
        )
    for dep in app.dependencies:
        lines.append(
            f"  {_quote(dep.src)} -> {_quote(dep.dst)} "
            "[style=dotted color=gray constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)
