"""Graph edges: stream channels and data-dependency annotations.

Stream edges are the FIFO data channels of any stream language; the
block-parallel model adds *data-dependency edges* (Section IV-B) which carry
no data but cap the parallelism of their sink at the parallelism of their
source — the mechanism by which the histogram's serial merge is limited to
one instance per input frame in Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StreamEdge", "DependencyEdge"]


@dataclass(frozen=True, slots=True)
class StreamEdge:
    """A directed data channel from ``src.src_port`` to ``dst.dst_port``."""

    src: str
    src_port: str
    dst: str
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src}.{self.src_port} -> {self.dst}.{self.dst_port}"


@dataclass(frozen=True, slots=True)
class DependencyEdge:
    """A data-dependency edge limiting sink parallelism to source parallelism.

    The edge is an annotation on the application graph — no data flows along
    it.  Chains of dependency edges define pipelines whose internal stages
    replicate together with the head of the pipeline (Section IV-B).
    """

    src: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src} ~~> {self.dst} (dependency)"
