"""Kernel base class (Section II-B of the paper).

A kernel is defined by its input/output parameterizations, one or more
computation methods with declared resource costs, and the mappings between
inputs, methods, and outputs.  Subclasses implement :meth:`configure` to
register ports and methods (the Python analogue of the paper's
``configureKernel``, Figure 6) and provide the method bodies as ordinary
Python methods that use :meth:`read_input` / :meth:`write_output`.

Example (compare Figure 6)::

    class ConvolutionKernel(Kernel):
        def __init__(self, name, width, height):
            self.width, self.height = width, height
            super().__init__(name)

        def configure(self):
            self.add_input("in", self.width, self.height, 1, 1,
                           self.width // 2, self.height // 2)
            self.add_output("out", 1, 1)
            self.add_method("run_convolve", inputs=["in"], outputs=["out"],
                            cost=MethodCost(cycles=10 + 3 * self.width * self.height))
            self.add_input("coeff", self.width, self.height,
                           self.width, self.height, replicated=True)
            self.add_method("load_coeff", inputs=["coeff"],
                            cost=MethodCost(cycles=10 + 2 * self.width * self.height))
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Mapping

import numpy as np

from ..errors import FiringError, MethodError, PortError, RateError
from ..geometry import Inset, Region, Size2D, iteration_grid, output_extent
from ..streams import StreamInfo
from ..tokens import ControlToken, token_rate_per_frame
from .methods import MethodCost, MethodSpec, TokenTrigger
from .ports import InputSpec, OutputSpec, make_input, make_output

__all__ = ["TransferResult", "FiringContext", "Kernel"]


@dataclass(frozen=True, slots=True)
class TransferResult:
    """Result of a kernel's static dataflow transfer function.

    ``outputs`` maps output-port names to the streams they produce;
    ``firings_per_second`` maps method names to worst-case invocation rates,
    which the resource analysis multiplies by per-invocation costs to size
    parallelism (Section IV).
    """

    outputs: Mapping[str, StreamInfo]
    firings_per_second: Mapping[str, float]

    @property
    def total_firings_per_second(self) -> float:
        return sum(self.firings_per_second.values())


@dataclass(slots=True)
class FiringContext:
    """Per-firing state the runtime binds before invoking a method body."""

    method: MethodSpec
    inputs: dict[str, np.ndarray] = field(default_factory=dict)
    token: ControlToken | None = None
    writes: list[tuple[str, np.ndarray]] = field(default_factory=list)
    token_writes: list[tuple[str, ControlToken]] = field(default_factory=list)
    #: Data-dependent cycle charge reported by the body (Section VII's
    #: variable-work extension); None means the declared static cost.
    dynamic_cycles: float | None = None

    @property
    def elements_read(self) -> int:
        return sum(int(a.size) for a in self.inputs.values())

    @property
    def elements_written(self) -> int:
        return sum(int(a.size) for _, a in self.writes)


class Kernel:
    """Base class for all computation kernels.

    Subclass responsibilities:

    * call ``super().__init__(name)`` (which invokes :meth:`configure`);
    * register ports and methods in :meth:`configure`;
    * implement each registered method as an instance method of the same
      name, reading inputs with :meth:`read_input` / :meth:`read_token` and
      writing outputs with :meth:`write_output`;
    * override :meth:`reset` to clear any runtime state, chaining to super.

    Class attribute ``data_parallel`` declares whether the default
    replicate-and-round-robin parallelization is semantics preserving
    (Section IV-A); kernels carrying cross-iteration state (merges, buffers)
    set it False or provide :attr:`custom_parallelize` (Section IV-C).
    """

    #: Default parallelizability; see Section IV-B for how data-dependency
    #: edges further limit the degree of data-parallel kernels.
    data_parallel: bool = True

    #: Optional custom parallelization routine (Section IV-C); the
    #: parallelize transform calls it instead of the default replicate +
    #: split/join insertion.  Signature documented in
    #: :mod:`repro.transform.parallelize`.
    custom_parallelize: Callable[..., Any] | None = None

    #: True for kernels inserted by the compiler (buffers, split/join,
    #: inset); used by reports and the multiplexing pass.
    compiler_inserted: bool = False

    #: Structural chunk movers (split/join/replicate) forward control
    #: tokens verbatim — their "windows" are whole pre-cut chunks, not
    #: sliding windows over a region, so the end-of-line translation of
    #: :meth:`should_forward_token` must not apply.
    forwards_all_line_tokens: bool = False

    #: Computation kernels touch every element they read and write, so the
    #: machine model charges per-element access costs.  Pure routers
    #: (split/join/replicate) move chunk descriptors, not element copies —
    #: they charge one access per chunk, otherwise a split in front of a
    #: wide-window kernel would be a hard serial throughput ceiling no
    #: parallelization could lift.
    charges_element_io: bool = True

    #: Set by the reuse-optimized buffering transform (Figure 9): this
    #: instance receives *consecutive* window positions from a dedicated
    #: buffer, so each firing reads only the fresh ``step_x x window_h``
    #: column of its window instead of all ``w x h`` elements.
    sequential_input_reuse: bool = False

    #: Worst-case items one firing may emit on a single output channel
    #: (one data chunk plus one forwarded token for ordinary kernels).
    #: The simulator's backpressure gate requires this much free space on
    #: every output before a firing starts; kernels with bursty emissions
    #: (pad kernels synthesizing whole border rows) override it.
    max_emissions_per_firing: int = 2

    #: Registry of every Kernel subclass by class name, populated by
    #: ``__init_subclass__``; the serialization module reconstructs
    #: kernels from it.
    registry: dict[str, type["Kernel"]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        Kernel.registry[cls.__name__] = cls
        # Wrap the subclass constructor (when it defines one) so the
        # outermost call's arguments are captured for serialization.
        original = cls.__dict__.get("__init__")
        if original is not None:
            import functools

            @functools.wraps(original)
            def wrapper(self, *args, _orig=original, **kw):
                if not hasattr(self, "_ctor_args"):
                    self._ctor_args = (args, dict(kw))
                _orig(self, *args, **kw)

            cls.__init__ = wrapper  # type: ignore[method-assign]

    def __init__(self, name: str) -> None:
        if not name:
            raise PortError("kernel names must be non-empty")
        if not hasattr(self, "_ctor_args"):
            # Subclass without its own __init__: the name is everything.
            self._ctor_args = ((name,), {})
        self._name = name
        self._inputs: dict[str, InputSpec] = {}
        self._outputs: dict[str, OutputSpec] = {}
        self._methods: dict[str, MethodSpec] = {}
        self._init_methods: dict[str, MethodCost] = {}
        #: token methods whose token is re-emitted downstream after the
        #: handler runs (e.g. histogram forwards end-of-frame so a serial
        #: merge kernel can in turn detect frame boundaries).
        self._forwarding_token_methods: set[str] = set()
        #: Per-method end-of-line counters for token forwarding translation.
        self._eol_seen: dict[str, int] = {}
        self._ctx: FiringContext | None = None
        #: name -> (h, w) expected chunk shape, filled on first write.
        self._out_shapes: dict[str, tuple[int, int]] = {}
        self.configure()
        self._check_configuration()

    # ------------------------------------------------------------------
    # Configuration API (the paper's configureKernel vocabulary)
    # ------------------------------------------------------------------
    def configure(self) -> None:
        """Register ports and methods; override in subclasses."""
        raise NotImplementedError

    def add_input(
        self,
        name: str,
        width: int,
        height: int,
        step_x: int = 1,
        step_y: int = 1,
        offset_x: float | Fraction = 0,
        offset_y: float | Fraction = 0,
        *,
        replicated: bool = False,
    ) -> InputSpec:
        """Register an input port (paper: ``createInput``)."""
        if name in self._inputs or name in self._outputs:
            raise PortError(f"{self._name}: duplicate port name {name!r}")
        spec = make_input(
            name, width, height, step_x, step_y, offset_x, offset_y,
            replicated=replicated,
        )
        self._inputs[name] = spec
        return spec

    def add_output(self, name: str, width: int, height: int) -> OutputSpec:
        """Register an output port (paper: ``createOutput``)."""
        if name in self._inputs or name in self._outputs:
            raise PortError(f"{self._name}: duplicate port name {name!r}")
        spec = make_output(name, width, height)
        self._outputs[name] = spec
        return spec

    def add_method(
        self,
        name: str,
        *,
        inputs: list[str] | tuple[str, ...] = (),
        outputs: list[str] | tuple[str, ...] = (),
        cost: MethodCost | None = None,
        on_token: tuple[str, type[ControlToken]] | None = None,
        selector: str | None = None,
        forward_token: bool = False,
        source: bool = False,
    ) -> MethodSpec:
        """Register a computation method (paper: ``registerMethod`` plus the
        ``registerMethodInput``/``registerMethodOutput`` mappings).

        ``on_token=(input, TokenCls)`` registers a control method triggered
        by that token (Section II-C); ``forward_token=True`` re-emits the
        handled token to the method's outputs after the handler runs.
        """
        if name in self._methods:
            raise MethodError(f"{self._name}: duplicate method {name!r}")
        if not callable(getattr(self, name, None)):
            raise MethodError(
                f"{self._name}: no callable {name!r} on {type(self).__name__} "
                "for the registered method"
            )
        for port in inputs:
            if port not in self._inputs:
                raise MethodError(f"{self._name}: unknown input {port!r}")
        for port in outputs:
            if port not in self._outputs:
                raise MethodError(f"{self._name}: unknown output {port!r}")
        token = None
        if on_token is not None:
            port, token_cls = on_token
            if port not in self._inputs:
                raise MethodError(f"{self._name}: unknown input {port!r}")
            token = TokenTrigger(port, token_cls)
        if selector is not None and not callable(getattr(self, selector, None)):
            raise MethodError(f"{self._name}: unknown selector {selector!r}")
        spec = MethodSpec(
            name=name,
            data_inputs=tuple(inputs),
            outputs=tuple(outputs),
            cost=cost if cost is not None else MethodCost(cycles=0),
            token=token,
            selector=selector,
            is_source=source,
        )
        self._methods[name] = spec
        if forward_token:
            if token is None:
                raise MethodError(
                    f"{self._name}: forward_token applies to token methods"
                )
            self._forwarding_token_methods.add(name)
        return spec

    def update_method_cost(self, name: str, cost: MethodCost) -> None:
        """Replace a registered method's cost (profiling writes back here)."""
        import dataclasses

        if name not in self._methods:
            raise MethodError(f"{self._name}: no method {name!r}")
        self._methods[name] = dataclasses.replace(self._methods[name],
                                                  cost=cost)

    def add_init_method(self, name: str, cost: MethodCost) -> None:
        """Register a method invoked once at startup (paper: the histogram's
        ``init`` clearing its bins, charged ``numberOfBins*2+3`` cycles)."""
        if not callable(getattr(self, name, None)):
            raise MethodError(f"{self._name}: no callable {name!r} to init")
        self._init_methods[name] = cost

    def _check_configuration(self) -> None:
        if not self._methods:
            raise MethodError(f"{self._name}: kernels must register a method")
        # At most one *data* method may write each output (token methods may
        # share an output with a data method: a buffer's end-of-frame handler
        # forwards the token on the same port its store method writes).
        writers: dict[str, str] = {}
        for m in self._methods.values():
            if m.is_token_method:
                continue
            for out in m.outputs:
                if out in writers:
                    raise MethodError(
                        f"{self._name}: output {out!r} written by both data "
                        f"methods {writers[out]!r} and {m.name!r}"
                    )
                writers[out] = m.name
        # Every data input must trigger at most one data method (disjoint
        # trigger sets, Section II-B); token methods are keyed separately.
        data_triggers: dict[str, str] = {}
        for m in self._methods.values():
            if m.is_token_method:
                continue
            for port in m.data_inputs:
                if port in data_triggers:
                    raise MethodError(
                        f"{self._name}: input {port!r} triggers both "
                        f"{data_triggers[port]!r} and {m.name!r}"
                    )
                data_triggers[port] = m.name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def inputs(self) -> Mapping[str, InputSpec]:
        return dict(self._inputs)

    @property
    def outputs(self) -> Mapping[str, OutputSpec]:
        return dict(self._outputs)

    @property
    def methods(self) -> Mapping[str, MethodSpec]:
        return dict(self._methods)

    @property
    def init_methods(self) -> Mapping[str, MethodCost]:
        return dict(self._init_methods)

    def input_spec(self, name: str) -> InputSpec:
        try:
            return self._inputs[name]
        except KeyError:
            raise PortError(f"{self._name}: no input {name!r}") from None

    def output_spec(self, name: str) -> OutputSpec:
        try:
            return self._outputs[name]
        except KeyError:
            raise PortError(f"{self._name}: no output {name!r}") from None

    def mark_token_transparent(self, port: str) -> None:
        """Drop control tokens arriving on ``port`` (feedback-loop inputs).

        The loop stream lags the forward stream by one iteration, so its
        tokens can never pair with the forward input's; the forward path
        alone carries the frame structure (Section III-D).
        """
        import dataclasses

        spec = self.input_spec(port)
        self._inputs[port] = dataclasses.replace(spec, token_transparent=True)

    def data_method_for_input(self, port: str) -> MethodSpec | None:
        """The data method triggered by ``port``, if any."""
        for m in self._methods.values():
            if not m.is_token_method and port in m.data_inputs:
                return m
        return None

    def token_method_for(
        self, port: str, token_cls: type[ControlToken]
    ) -> MethodSpec | None:
        """The control method handling ``token_cls`` on ``port``, if any.

        The most specific registered handler wins (a handler for a token
        subclass shadows one for its base class).
        """
        best: MethodSpec | None = None
        for m in self._methods.values():
            if m.token is None or m.token.input_name != port:
                continue
            if issubclass(token_cls, m.token.token_cls):
                if best is None or issubclass(
                    m.token.token_cls, best.token.token_cls
                ):  # type: ignore[union-attr]
                    best = m
        return best

    def forwards_token(self, method: MethodSpec) -> bool:
        return method.name in self._forwarding_token_methods

    def on_token_forwarded(self, method: MethodSpec, token: ControlToken) -> None:
        """Hook called when the runtime auto-forwards an unhandled token.

        Structural kernels with distribution state (split/join FSMs) reset
        their counters at frame boundaries here; the default does nothing.
        ``method`` is the data method across whose inputs the token passed.
        """

    def should_forward_token(self, method: MethodSpec, token: ControlToken) -> bool:
        """Whether an unhandled token should be re-emitted downstream.

        Windowed kernels shrink the data region, so forwarding *every*
        end-of-line token would desynchronize token and data streams (the
        3x3 median's halo swallows two input lines; its output has two
        fewer lines).  The default translates end-of-line tokens to the
        output's line structure: the EOL of input line ``y`` is forwarded
        exactly when that line completes an output window row —
        ``y >= h-1`` and ``(y - (h-1)) % step_y == 0`` — which forwards
        precisely ``iteration_count`` EOLs per frame.  End-of-frame tokens
        always forward (and reset the per-frame line counters).
        """
        from ..tokens import EndOfFrame, EndOfLine

        if isinstance(token, EndOfFrame):
            self._eol_seen.pop(method.name, None)
            return True
        if (
            not isinstance(token, EndOfLine)
            or not method.data_inputs
            or self.forwards_all_line_tokens
        ):
            return True
        spec = self._inputs[method.data_inputs[0]]
        y = self._eol_seen.get(method.name, 0)
        self._eol_seen[method.name] = y + 1
        if y < spec.window.h - 1:
            return False
        return (y - (spec.window.h - 1)) % spec.step.y == 0

    def forwarding_outputs(self, port: str) -> tuple[str, ...]:
        """Outputs to which unhandled control tokens on ``port`` auto-forward.

        The paper specifies unhandled tokens pass on "to the appropriate
        outputs for the given input": the outputs of the data method the
        input triggers (Section II-C).  Inputs that trigger only control
        methods (e.g. coefficient loads) forward nowhere; their tokens are
        dropped after any handler runs.
        """
        m = self.data_method_for_input(port)
        return m.outputs if m is not None else ()

    def state_words(self) -> int:
        """Private memory words this kernel holds across invocations."""
        words = sum(m.cost.state_words for m in self._methods.values())
        words += sum(c.state_words for c in self._init_methods.values())
        return words + self.extra_state_words()

    def extra_state_words(self) -> int:
        """Additional state beyond declared method state (buffers override)."""
        return 0

    def port_buffer_words(self) -> int:
        """Implicit single-iteration double buffers on each port (Fig 5)."""
        words = sum(2 * p.window.elements for p in self._inputs.values())
        words += sum(2 * p.window.elements for p in self._outputs.values())
        return words

    # ------------------------------------------------------------------
    # Dataflow transfer function (Section III-A)
    # ------------------------------------------------------------------
    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        """Propagate stream information through this kernel.

        The default implements the windowed-kernel semantics of Section
        III-A: per data method, the iteration grid over each trigger input
        is ``floor((extent - window)/step) + 1`` per dimension; all grids,
        rates, and output insets must agree (misalignment is reported by
        the alignment analysis and repaired by the align transform).
        Structural kernels (buffers, split/join, inset) override this.
        """
        outputs: dict[str, StreamInfo] = {}
        firings: dict[str, float] = {}
        # Data methods first; token methods only describe outputs no data
        # method produces (e.g. the histogram's once-per-frame dump).
        for m in self._methods.values():
            if m.is_source:
                raise NotImplementedError(
                    f"{self._name}: source kernels must override transfer()"
                )
            if not m.is_token_method:
                self._transfer_data_method(m, inputs, outputs, firings)
        for m in self._methods.values():
            if m.is_token_method:
                self._transfer_token_method(m, inputs, outputs, firings)
        return TransferResult(outputs=outputs, firings_per_second=firings)

    def _transfer_data_method(
        self,
        m: MethodSpec,
        inputs: Mapping[str, StreamInfo],
        outputs: dict[str, StreamInfo],
        firings: dict[str, float],
    ) -> None:
        grids: list[Size2D] = []
        insets: list[Inset] = []
        rates: list[float] = []
        shares: list[Fraction] = []
        firing_counts: list[int] = []
        token_rates: dict[str, int] = {}
        for iname in m.data_inputs:
            if iname not in inputs:
                raise RateError(
                    f"{self._name}: input {iname!r} is unconnected or "
                    "upstream analysis failed"
                )
            s = inputs[iname]
            spec = self._inputs[iname]
            grids.append(iteration_grid(s.extent, spec.window, spec.step))
            if s.chunk == spec.window:
                # Whole-chunk consumption (post-buffering, or 1x1 streams):
                # one firing per chunk, whatever fraction of the logical
                # stream this branch carries.
                firing_counts.append(s.chunks_per_frame)
            else:
                # Logical windowing over an un-chunked region (the
                # pre-buffering graph): the iteration grid counts firings.
                firing_counts.append(int(grids[-1].elements * s.share))
            insets.append(Inset(s.inset.x + spec.offset.x, s.inset.y + spec.offset.y))
            rates.append(s.rate_hz)
            shares.append(s.share)
            for tok, rate in s.token_rates.items():
                token_rates[tok] = max(token_rates.get(tok, 0), rate)
        if len(set(grids)) != 1:
            raise RateError(
                f"{self._name}.{m.name}: iteration grids differ across inputs "
                f"({', '.join(map(str, grids))}); inputs are misaligned"
            )
        if len(set(firing_counts)) != 1:
            raise RateError(
                f"{self._name}.{m.name}: per-frame chunk counts differ "
                f"across inputs ({firing_counts}); inputs are misaligned"
            )
        if len(set(rates)) != 1:
            raise RateError(
                f"{self._name}.{m.name}: input rates differ ({rates})"
            )
        if len(set(shares)) != 1:
            raise RateError(
                f"{self._name}.{m.name}: input stream shares differ ({shares})"
            )
        grid = grids[0]
        rate = rates[0]
        share = shares[0]
        chunks = max(1, firing_counts[0])
        firings[m.name] = float(firing_counts[0]) * rate
        out_inset = insets[0]
        for oname in m.outputs:
            ospec = self._outputs[oname]
            outputs[oname] = StreamInfo(
                region=Region(output_extent(grid, ospec.window), out_inset),
                chunk=ospec.window,
                rate_hz=rate,
                chunks_per_frame=chunks,
                token_rates=token_rates,
                share=share,
            )

    def _transfer_token_method(
        self,
        m: MethodSpec,
        inputs: Mapping[str, StreamInfo],
        outputs: dict[str, StreamInfo],
        firings: dict[str, float],
    ) -> None:
        assert m.token is not None
        iname = m.token.input_name
        if iname not in inputs:
            raise RateError(
                f"{self._name}: token input {iname!r} is unconnected"
            )
        s = inputs[iname]
        per_frame = s.token_rate(m.token.token_cls)
        if per_frame == 0:
            # Fall back to the class-level declaration for custom tokens the
            # upstream analysis could not see (e.g. injected at runtime).
            try:
                per_frame = token_rate_per_frame(
                    m.token.token_cls, s.extent.h
                )
            except ValueError:
                per_frame = 0
        firings[m.name] = per_frame * s.rate_hz
        fires = max(per_frame, 1)
        for oname in m.outputs:
            if oname in outputs:  # a data method already produces this port
                continue
            ospec = self._outputs[oname]
            outputs[oname] = StreamInfo(
                region=Region(
                    Size2D(ospec.window.w, ospec.window.h * fires), Inset(0, 0)
                ),
                chunk=ospec.window,
                rate_hz=s.rate_hz,
                chunks_per_frame=fires,
                token_rates=dict(s.token_rates),
            )

    # ------------------------------------------------------------------
    # Execution context (used by method bodies at runtime)
    # ------------------------------------------------------------------
    def bind_context(self, ctx: FiringContext) -> None:
        self._ctx = ctx

    def release_context(self) -> FiringContext:
        assert self._ctx is not None
        ctx, self._ctx = self._ctx, None
        return ctx

    def read_input(self, name: str) -> np.ndarray:
        """The data chunk consumed from ``name`` for the current firing."""
        if self._ctx is None or name not in self._ctx.inputs:
            raise FiringError(
                f"{self._name}: read_input({name!r}) outside a firing that "
                "consumed that input"
            )
        return self._ctx.inputs[name]

    def consumed_input(self) -> tuple[str, np.ndarray]:
        """(name, chunk) of the single input consumed this firing.

        For selector methods (round-robin joins) the runtime consumes from
        exactly one of the candidate inputs; the body learns which here.
        """
        if self._ctx is None or len(self._ctx.inputs) != 1:
            raise FiringError(
                f"{self._name}: consumed_input() requires a single-input firing"
            )
        return next(iter(self._ctx.inputs.items()))

    def read_token(self) -> ControlToken:
        """The control token that triggered the current control method."""
        if self._ctx is None or self._ctx.token is None:
            raise FiringError(
                f"{self._name}: read_token() outside a token-triggered firing"
            )
        return self._ctx.token

    def write_output(self, name: str, data: np.ndarray) -> None:
        """Stage ``data`` for emission on output ``name``.

        The chunk shape must match the output parameterization; shape is
        checked here so a misbehaving kernel fails at the producing site.
        Arrays are row-major ``(h, w)`` as is idiomatic for numpy images.
        """
        ctx = self._ctx
        if ctx is None:
            raise FiringError(f"{self._name}: write_output outside a firing")
        shape = self._out_shapes.get(name)
        if shape is None:
            spec = self.output_spec(name)  # raises PortError when unknown
            shape = self._out_shapes[name] = (spec.window.h, spec.window.w)
        arr = np.asarray(data, dtype=np.float64)
        if arr.shape != shape:
            raise FiringError(
                f"{self._name}: output {name!r} expects shape "
                f"{shape}, got {arr.shape}"
            )
        if name not in ctx.method.outputs:
            raise FiringError(
                f"{self._name}: method {ctx.method.name!r} is not "
                f"registered to write output {name!r}"
            )
        ctx.writes.append((name, arr))

    def charge_cycles(self, cycles: float) -> None:
        """Report this firing's data-dependent cycle cost (Section VII).

        The paper's future-work extension: kernels like a motion-vector
        search whose processing time varies per invocation declare their
        *bound* statically (``MethodCost.cycles``) and charge actuals at
        runtime.  Charges accumulate within one firing; the simulator
        raises a runtime budget exception record whenever the accumulated
        charge exceeds the declared bound.
        """
        if self._ctx is None:
            raise FiringError(f"{self._name}: charge_cycles outside a firing")
        if cycles < 0:
            raise FiringError(f"{self._name}: negative cycle charge {cycles}")
        if self._ctx.dynamic_cycles is None:
            self._ctx.dynamic_cycles = 0.0
        self._ctx.dynamic_cycles += cycles

    def emit_token(self, name: str, token: ControlToken) -> None:
        """Stage a control token for emission on output ``name``.

        Used by kernels that manage token flow explicitly (inset and pad
        kernels re-shape the line structure of the data, so automatic
        forwarding would emit the wrong number of end-of-line tokens).
        """
        if self._ctx is None:
            raise FiringError(f"{self._name}: emit_token outside a firing")
        self.output_spec(name)
        self._ctx.token_writes.append((name, token))

    # ------------------------------------------------------------------
    # Batched execution protocol (quasi-static replay, repro.sim.batch)
    # ------------------------------------------------------------------
    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        """Whether ``method`` firings may execute batched across one period.

        The replay engine's batch compiler asks this once per compiled
        period.  ``others`` names every *other* kind of firing this kernel
        performs inside the period: token-method names, plus the sentinel
        ``"<forward>"`` when automatic token forwards occur.  A kernel must
        decline when any of those interacts with the state ``method`` reads
        (an ``end_frame`` that rewinds cursors mid-period invalidates a
        precomputed position sequence; a coefficient reload invalidates a
        precomputed convolution).  Token methods that only *read* state are
        safe: batched firings commit their state mutations one op at a
        time, in schedule order, so interleaved scalar firings observe
        exactly the state they would under sequential execution.

        The default is ``False``: kernels opt in by implementing
        :meth:`batched_apply` (usually via a shape base class —
        elementwise, windowed — rather than per subclass).
        """
        return False

    def batched_apply(self, method: str, inputs: Mapping[str, list]):
        """Execute a whole period's firings of ``method`` at once.

        ``inputs`` maps each consumed port to the list of chunks the n
        firings would pop, in firing order (all ``float64`` ndarrays of
        the port's window shape — the engine validates this).  Returns
        ``(emissions, commit)`` or ``None`` to fall back to per-firing
        execution for the period:

        * ``emissions``: one list per firing of ``(port, ndarray)`` pairs,
          byte-identical to what sequential execution would emit;
        * ``commit``: ``None``, or a callable ``commit(i)`` applying firing
          ``i``'s state mutation.  The engine invokes it when firing ``i``
          actually executes, so state stays sequentially exact even when
          the period demotes to the interpreter halfway through.

        Implementations must not mutate kernel state here — all mutation
        belongs in ``commit`` — because the engine may discard the batch
        (and re-execute per firing) at any point before a firing runs.
        """
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serialize_extra(self) -> dict[str, Any]:
        """Configuration applied after construction, for serialization.

        Most kernels are fully described by their constructor arguments;
        kernels that accept post-construction configuration (application
        inputs take a frame pattern) override this and its counterpart
        :meth:`apply_serialized_extra`.  Values must be JSON-encodable by
        the serializer (scalars, sequences, numpy arrays, Fractions).
        """
        return {}

    def apply_serialized_extra(self, extra: Mapping[str, Any]) -> None:
        """Re-apply :meth:`serialize_extra` state on a loaded kernel."""

    def reset(self) -> None:
        """Clear runtime state; subclasses chain to super."""
        self._ctx = None
        self._eol_seen = {}

    def clone(self, new_name: str) -> "Kernel":
        """A fresh copy under a new name (used when replicating kernels)."""
        twin = copy.deepcopy(self)
        twin._name = new_name
        twin.reset()
        return twin

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name!r}>"
