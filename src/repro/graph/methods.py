"""Kernel methods: triggers, input/output mappings, and resource costs.

A kernel may register multiple computation methods, each triggered by a
disjoint set of inputs (Section II-B).  A method either triggers on *data*
arriving on one or more inputs (all must have data for the method to fire)
or on a specific *control token* arriving on one input (Section II-C).
Methods declare the resources each invocation consumes — computation cycles
and private state words — which the compiler uses to size the parallelism
needed to meet the real-time input rate (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MethodError, ResourceError
from ..tokens import ControlToken

__all__ = ["MethodCost", "TokenTrigger", "MethodSpec"]


@dataclass(frozen=True, slots=True)
class MethodCost:
    """Resources consumed by one invocation of a method.

    ``cycles`` is the computation time in processor cycles (the paper's
    explicit per-method cycle counts, e.g. ``10 + 3*height*width`` for the
    convolution).  ``state_words`` is the private kernel memory the method
    needs live across invocations (e.g. histogram bin counts).  Time spent
    reading inputs and writing outputs is charged separately by the machine
    model from the element counts actually moved, which is what produces the
    run/read/write utilization breakdown of Figure 13.
    """

    cycles: int
    state_words: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ResourceError(f"negative cycle cost: {self.cycles}")
        if self.state_words < 0:
            raise ResourceError(f"negative state words: {self.state_words}")


@dataclass(frozen=True, slots=True)
class TokenTrigger:
    """A (input name, token class) pair that triggers a token method."""

    input_name: str
    token_cls: type[ControlToken]

    def __post_init__(self) -> None:
        if not issubclass(self.token_cls, ControlToken):
            raise MethodError(
                f"token trigger for {self.input_name!r} must be a "
                f"ControlToken subclass, got {self.token_cls!r}"
            )


@dataclass(frozen=True, slots=True)
class MethodSpec:
    """Registration record for one kernel method.

    Exactly one of the following trigger forms holds:

    * ``data_inputs`` non-empty and ``token`` is None — a data method that
      fires when every listed input has a data chunk at the head of its
      channel (the subtract kernel lists two inputs; both must have data).
    * ``token`` set — a control method that fires when the given token class
      arrives at the head of the given input (e.g. the histogram's
      ``finish_count`` on end-of-frame).

    ``selector`` names a kernel callable returning which *single* input to
    consume this firing; it is used by join kernels whose round-robin FSM
    decides the next input dynamically (Section IV-A).  When a selector is
    set, ``data_inputs`` lists the candidate inputs.
    """

    name: str
    data_inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    cost: MethodCost = field(default_factory=lambda: MethodCost(cycles=0))
    token: TokenTrigger | None = None
    selector: str | None = None
    #: Source methods have no trigger: the runtime drives them at the
    #: declared input rate (application inputs and constant sources only).
    is_source: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise MethodError("method names must be non-empty")
        if self.is_source and (self.data_inputs or self.token is not None):
            raise MethodError(
                f"method {self.name!r}: source methods take no triggers"
            )
        if self.token is not None and self.data_inputs:
            raise MethodError(
                f"method {self.name!r}: token methods may not also list "
                "data inputs; register a separate data method"
            )
        if self.token is None and not self.data_inputs and not self.is_source:
            raise MethodError(
                f"method {self.name!r} has no trigger: give it data inputs "
                "or a token trigger"
            )
        if self.selector is not None and self.token is not None:
            raise MethodError(
                f"method {self.name!r}: selectors apply to data methods only"
            )
        if len(set(self.data_inputs)) != len(self.data_inputs):
            raise MethodError(f"method {self.name!r}: duplicate data inputs")

    @property
    def is_token_method(self) -> bool:
        return self.token is not None

    @property
    def trigger_inputs(self) -> tuple[str, ...]:
        """All inputs that can cause this method to fire."""
        if self.token is not None:
            return (self.token.input_name,)
        return self.data_inputs
