"""Input/output port parameterization (Section II-A of the paper).

Each kernel input and output is parameterized by a two-dimensional *window*
size, a *step* size determining how far the window advances per iteration,
and (for inputs) an *offset* from the window's upper-left corner to the
logical position of the produced output.  Inputs may additionally be marked
*replicated*, meaning a parallelizing transform must copy — not distribute —
their data to every parallel instance (e.g. convolution coefficients).

The fixed scan-line data order plus this parameterization fully determines
data movement, reuse, and iteration counts (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction

from ..errors import PortError
from ..geometry import Offset2D, Size2D, Step2D, steady_state_reuse

__all__ = ["Direction", "PortSpec", "InputSpec", "OutputSpec"]


class Direction(enum.Enum):
    """Whether a port consumes or produces data."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True, slots=True)
class PortSpec:
    """Common parameterization shared by inputs and outputs."""

    name: str
    window: Size2D
    step: Step2D

    def __post_init__(self) -> None:
        if not self.name:
            raise PortError("port names must be non-empty")
        if self.step.x > self.window.w or self.step.y > self.window.h:
            # Steps larger than the window would skip data; the language
            # models decimation with downsampling kernels instead.
            raise PortError(
                f"port {self.name!r}: step {self.step} exceeds window "
                f"{self.window}; data would be skipped"
            )

    @property
    def elements(self) -> int:
        """Elements touched per iteration."""
        return self.window.elements

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``in (5x5)[1,1]``."""
        return f"{self.name} {self.window}{self.step}"


@dataclass(frozen=True, slots=True)
class InputSpec(PortSpec):
    """A kernel input: window, step, offset, and replication flag.

    ``offset`` maps the window origin to the logical output position; the
    5x5 convolution uses [2.0, 2.0] so each output lands two pixels over and
    down from the window's upper-left corner (Figure 5(a)).  ``replicated``
    inputs are copied, not split, during parallelization (dashed edges in
    the application graphs).
    """

    offset: Offset2D = field(default_factory=lambda: Offset2D(0, 0))
    replicated: bool = False
    #: Tokens arriving on this input are silently dropped and the input is
    #: excluded from multi-input token matching.  Used for feedback-loop
    #: inputs (Section III-D): the loop stream is offset by one iteration
    #: (the classic SDF delay), so its frame tokens can never line up with
    #: the forward input's — the forward path carries the frame structure.
    token_transparent: bool = False

    @property
    def direction(self) -> Direction:
        return Direction.INPUT

    @property
    def halo(self) -> tuple[int, int]:
        """(x, y) halo: data consumed beyond the produced grid per side pair."""
        return (self.window.w - self.step.x, self.window.h - self.step.y)

    @property
    def reuse_fraction(self) -> Fraction:
        """Steady-state fraction of window elements reused per iteration."""
        return steady_state_reuse(self.window, self.step)

    def describe(self) -> str:
        base = PortSpec.describe(self)
        tail = f" {self.offset}"
        if self.replicated:
            tail += " (replicated)"
        return base + tail


@dataclass(frozen=True, slots=True)
class OutputSpec(PortSpec):
    """A kernel output: the chunk produced per firing.

    Output tiles of successive iterations abut, so the step defaults to the
    window size; a distinct step is permitted only for equality with the
    window (kept as an explicit field to mirror the paper's notation, e.g.
    ``out (32x1)[32,1]`` for the histogram).
    """

    def __post_init__(self) -> None:
        PortSpec.__post_init__(self)
        if (self.step.x, self.step.y) != (self.window.w, self.window.h):
            raise PortError(
                f"output {self.name!r}: step {self.step} must equal window "
                f"{self.window}; outputs tile without overlap"
            )

    @property
    def direction(self) -> Direction:
        return Direction.OUTPUT


def make_input(
    name: str,
    width: int,
    height: int,
    step_x: int = 1,
    step_y: int = 1,
    offset_x: float | Fraction = 0,
    offset_y: float | Fraction = 0,
    *,
    replicated: bool = False,
) -> InputSpec:
    """Convenience constructor mirroring the paper's ``createInput``."""
    return InputSpec(
        name=name,
        window=Size2D(width, height),
        step=Step2D(step_x, step_y),
        offset=Offset2D(offset_x, offset_y),
        replicated=replicated,
    )


def make_output(name: str, width: int, height: int) -> OutputSpec:
    """Convenience constructor mirroring the paper's ``createOutput``."""
    return OutputSpec(
        name=name, window=Size2D(width, height), step=Step2D(width, height)
    )
