"""JSON serialization of application graphs.

An application is topology plus parameterized library kernels, so it
serializes naturally: each kernel records its class name and constructor
arguments (captured automatically at construction), and the graph records
channels, dependency edges, and per-input annotations.  Deserialization
reconstructs kernels through :attr:`Kernel.registry`.

Limits, stated loudly rather than discovered late:

* kernels must be importable classes (anything defined at module scope of
  an imported module registers itself); locally-defined classes load only
  if redefined before :func:`from_json` runs;
* constructor arguments must be JSON-encodable scalars, lists/tuples,
  numpy arrays, or Fractions — callables (e.g. procedural input patterns)
  raise immediately at :func:`to_json` time;
* runtime state (histogram counts, buffer fill) is *not* captured: a
  loaded graph is factory-fresh, exactly like a recompiled one.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any

import numpy as np

from ..errors import GraphError
from .app import ApplicationGraph
from .kernel import Kernel

__all__ = [
    "to_json",
    "from_json",
    "dumps",
    "loads",
    "canonical_json",
    "fingerprint",
    "FINGERPRINT_SCHEMA",
]

#: Bumped whenever the canonical form changes shape, so stale cached
#: results keyed on old fingerprints can never collide with new ones.
FINGERPRINT_SCHEMA = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": value.tolist(),
            "dtype": str(value.dtype),
        }
    if isinstance(value, Fraction):
        return {"__fraction__": [value.numerator, value.denominator]}
    if isinstance(value, (list, tuple)):
        return {"__seq__": [_encode_value(v) for v in value],
                "tuple": isinstance(value, tuple)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    raise GraphError(
        f"cannot serialize constructor argument of type {type(value).__name__}"
        " (callables and custom objects are not JSON-encodable)"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        if "__fraction__" in value:
            n, d = value["__fraction__"]
            return Fraction(n, d)
        if "__seq__" in value:
            seq = [_decode_value(v) for v in value["__seq__"]]
            return tuple(seq) if value.get("tuple") else seq
    return value


def to_json(app: ApplicationGraph) -> dict[str, Any]:
    """Serialize ``app`` to a JSON-compatible dictionary."""
    kernels = []
    for name, kernel in app.kernels.items():
        args, kwargs = kernel._ctor_args
        kernels.append(
            {
                "type": type(kernel).__name__,
                "name": name,
                "args": [_encode_value(a) for a in args],
                "kwargs": {k: _encode_value(v) for k, v in kwargs.items()},
                "token_transparent": sorted(
                    port for port, spec in kernel.inputs.items()
                    if spec.token_transparent
                ),
                "extra": {
                    k: _encode_value(v)
                    for k, v in sorted(kernel.serialize_extra().items())
                },
            }
        )
    return {
        "format": "repro-application",
        "version": 1,
        "name": app.name,
        "kernels": kernels,
        "channels": [
            [e.src, e.src_port, e.dst, e.dst_port] for e in app.edges
        ],
        "dependencies": [[d.src, d.dst] for d in app.dependencies],
    }


def from_json(data: dict[str, Any]) -> ApplicationGraph:
    """Reconstruct an application graph from :func:`to_json` output."""
    if data.get("format") != "repro-application":
        raise GraphError("not a serialized repro application")
    if data.get("version") != 1:
        raise GraphError(f"unsupported format version {data.get('version')}")
    app = ApplicationGraph(data["name"])
    for entry in data["kernels"]:
        cls = Kernel.registry.get(entry["type"])
        if cls is None:
            raise GraphError(
                f"unknown kernel class {entry['type']!r}; import the module "
                "defining it before loading"
            )
        args = [_decode_value(a) for a in entry["args"]]
        kwargs = {k: _decode_value(v) for k, v in entry["kwargs"].items()}
        kernel = cls(*args, **kwargs)
        if kernel.name != entry["name"]:
            # Names live in the first positional arg by convention; repair
            # defensively in case a kwargs-only constructor renamed it.
            kernel._name = entry["name"]
        for port in entry.get("token_transparent", ()):
            kernel.mark_token_transparent(port)
        extra = {
            k: _decode_value(v) for k, v in entry.get("extra", {}).items()
        }
        if extra:
            kernel.apply_serialized_extra(extra)
        app.add_kernel(kernel)
    for src, src_port, dst, dst_port in data["channels"]:
        app.connect(src, src_port, dst, dst_port)
    for src, dst in data["dependencies"]:
        app.add_dependency(src, dst)
    return app


def dumps(app: ApplicationGraph, **json_kwargs: Any) -> str:
    """Serialize to a JSON string."""
    json_kwargs.setdefault("indent", 2)
    return json.dumps(to_json(app), **json_kwargs)


def loads(text: str) -> ApplicationGraph:
    """Load an application graph from a JSON string."""
    return from_json(json.loads(text))


def canonical_json(app: ApplicationGraph) -> dict[str, Any]:
    """A canonical form of :func:`to_json`: identical graphs built in any
    insertion order produce byte-identical JSON once key-sorted.

    Kernels are ordered by name, channels and dependencies
    lexicographically, and a fingerprint schema tag is included so the
    canonical form is versioned independently of the wire format.
    """
    data = to_json(app)
    data["fingerprint_schema"] = FINGERPRINT_SCHEMA
    data["kernels"] = sorted(data["kernels"], key=lambda k: k["name"])
    data["channels"] = sorted(data["channels"])
    data["dependencies"] = sorted(data["dependencies"])
    return data


def fingerprint(app: ApplicationGraph) -> str:
    """Content-addressed identity of ``app``: a sha256 hex digest over the
    canonical, key-sorted JSON serialization.

    Two graphs fingerprint equal iff they serialize to the same canonical
    content — same kernels with the same constructor arguments, same
    wiring, same annotations.  Stable across process restarts (no ids,
    no insertion-order dependence); changes whenever any kernel parameter,
    connection, or the schema version changes.  Graphs that cannot
    serialize (callable constructor arguments) raise
    :class:`~repro.errors.GraphError`, exactly like :func:`to_json`.
    """
    text = json.dumps(canonical_json(app), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
