"""Kernel library: boundary, filter, structural, and application kernels."""

from .arithmetic import (
    AbsDiffKernel,
    AddKernel,
    BinaryElementwiseKernel,
    IdentityKernel,
    MultiplyKernel,
    ScaleKernel,
    SubtractKernel,
    ThresholdKernel,
    UnaryElementwiseKernel,
)
from .bayer import BayerDemosaicKernel, LuminanceKernel
from .buffer import BufferKernel
from .downsample import DownsampleKernel
from .dynamic import BlockMatchKernel, VariableWorkKernel
from .feedback import InitialValueKernel
from .filters import (
    ConvolutionKernel,
    GaussianKernel,
    MedianKernel,
    SobelKernel,
    WindowedKernel,
)
from .histogram import HistogramKernel, HistogramMergeKernel, default_bin_edges
from .inset import InsetKernel, PadKernel
from .morphology import DilateKernel, ErodeKernel, add_closing, add_opening
from .sources import ApplicationInput, ApplicationOutput, ConstantSource
from .splitjoin import (
    ColumnSplit,
    CountedJoin,
    ReplicateKernel,
    RoundRobinJoin,
    RoundRobinSplit,
)

__all__ = [
    "AbsDiffKernel",
    "AddKernel",
    "ApplicationInput",
    "ApplicationOutput",
    "BayerDemosaicKernel",
    "BinaryElementwiseKernel",
    "BufferKernel",
    "ColumnSplit",
    "ConstantSource",
    "ConvolutionKernel",
    "CountedJoin",
    "default_bin_edges",
    "DownsampleKernel",
    "BlockMatchKernel",
    "VariableWorkKernel",
    "DilateKernel",
    "ErodeKernel",
    "add_closing",
    "add_opening",
    "GaussianKernel",
    "HistogramKernel",
    "HistogramMergeKernel",
    "IdentityKernel",
    "InitialValueKernel",
    "InsetKernel",
    "LuminanceKernel",
    "MedianKernel",
    "MultiplyKernel",
    "PadKernel",
    "ReplicateKernel",
    "RoundRobinJoin",
    "RoundRobinSplit",
    "ScaleKernel",
    "SobelKernel",
    "SubtractKernel",
    "ThresholdKernel",
    "UnaryElementwiseKernel",
    "WindowedKernel",
]
