"""Elementwise kernels: subtract, add, absolute difference, scale, threshold.

The subtract kernel of Figure 1 is the canonical multi-input elementwise
kernel: both inputs are ``(1x1)[1,1]`` with offset ``[0,0]`` and one method
triggers on data arriving on *both*.  Control tokens reaching both inputs
are forwarded once to the output (Section II-C's two-input rule).
"""

from __future__ import annotations

import numpy as np

from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = [
    "BinaryElementwiseKernel",
    "SubtractKernel",
    "AddKernel",
    "AbsDiffKernel",
    "MultiplyKernel",
    "UnaryElementwiseKernel",
    "ScaleKernel",
    "ThresholdKernel",
    "IdentityKernel",
]


class BinaryElementwiseKernel(Kernel):
    """Base for two-input, one-output per-element kernels."""

    #: Per-iteration compute cost; cheap ALU work.
    cycles: int = 5

    def configure(self) -> None:
        self.add_input("in0", 1, 1, 1, 1, 0, 0)
        self.add_input("in1", 1, 1, 1, 1, 0, 0)
        self.add_output("out", 1, 1)
        self.add_method(
            "run",
            inputs=["in0", "in1"],
            outputs=["out"],
            cost=MethodCost(cycles=self.cycles),
        )

    def compute(self, a: float, b: float) -> float:
        raise NotImplementedError

    def compute_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`compute` over value vectors; bit-identical."""
        raise NotImplementedError

    def run(self) -> None:
        a = float(self.read_input("in0")[0, 0])
        b = float(self.read_input("in1")[0, 0])
        self.write_output("out", np.array([[self.compute(a, b)]]))

    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        # Stateless: forwards only touch token bookkeeping, never the math.
        return (
            method == "run"
            and others <= {"<forward>"}
            and type(self).compute_batch is not BinaryElementwiseKernel.compute_batch
        )

    def batched_apply(self, method, inputs):
        n = len(inputs["in0"])
        a = np.stack(inputs["in0"]).reshape(n)
        b = np.stack(inputs["in1"]).reshape(n)
        out = self.compute_batch(a, b).reshape(n, 1, 1)
        return [[("out", out[i])] for i in range(n)], None


class SubtractKernel(BinaryElementwiseKernel):
    """Per-pixel difference ``in0 - in1`` (Figure 1's Subtract)."""

    def compute(self, a: float, b: float) -> float:
        return a - b

    def compute_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a - b


class AddKernel(BinaryElementwiseKernel):
    """Per-pixel sum ``in0 + in1``."""

    def compute(self, a: float, b: float) -> float:
        return a + b

    def compute_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class AbsDiffKernel(BinaryElementwiseKernel):
    """Per-pixel absolute difference ``|in0 - in1|``."""

    def compute(self, a: float, b: float) -> float:
        return abs(a - b)

    def compute_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.abs(a - b)


class MultiplyKernel(BinaryElementwiseKernel):
    """Per-pixel product ``in0 * in1``."""

    def compute(self, a: float, b: float) -> float:
        return a * b

    def compute_batch(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b


class UnaryElementwiseKernel(Kernel):
    """Base for one-input, one-output per-element kernels."""

    cycles: int = 4

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1, 0, 0)
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"], cost=MethodCost(cycles=self.cycles)
        )

    def compute(self, value: float) -> float:
        raise NotImplementedError

    def compute_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`compute` over a value vector; bit-identical."""
        raise NotImplementedError

    def run(self) -> None:
        value = float(self.read_input("in")[0, 0])
        self.write_output("out", np.array([[self.compute(value)]]))

    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        return (
            method == "run"
            and others <= {"<forward>"}
            and type(self).compute_batch is not UnaryElementwiseKernel.compute_batch
        )

    def batched_apply(self, method, inputs):
        n = len(inputs["in"])
        values = np.stack(inputs["in"]).reshape(n)
        out = self.compute_batch(values).reshape(n, 1, 1)
        return [[("out", out[i])] for i in range(n)], None


class ScaleKernel(UnaryElementwiseKernel):
    """Affine per-pixel transform ``gain * x + bias``."""

    def __init__(self, name: str, gain: float = 1.0, bias: float = 0.0) -> None:
        self.gain = gain
        self.bias = bias
        super().__init__(name)

    def compute(self, value: float) -> float:
        return self.gain * value + self.bias

    def compute_batch(self, values: np.ndarray) -> np.ndarray:
        return self.gain * values + self.bias


class ThresholdKernel(UnaryElementwiseKernel):
    """Binary threshold: 1.0 where ``x >= level`` else 0.0."""

    def __init__(self, name: str, level: float) -> None:
        self.level = level
        super().__init__(name)

    def compute(self, value: float) -> float:
        return 1.0 if value >= self.level else 0.0

    def compute_batch(self, values: np.ndarray) -> np.ndarray:
        return (values >= self.level).astype(np.float64)


class IdentityKernel(UnaryElementwiseKernel):
    """Pass-through; useful as a pipeline stage anchor for dependency edges."""

    cycles = 1

    def compute(self, value: float) -> float:
        return value

    def compute_batch(self, values: np.ndarray) -> np.ndarray:
        return values
