"""Elementwise kernels: subtract, add, absolute difference, scale, threshold.

The subtract kernel of Figure 1 is the canonical multi-input elementwise
kernel: both inputs are ``(1x1)[1,1]`` with offset ``[0,0]`` and one method
triggers on data arriving on *both*.  Control tokens reaching both inputs
are forwarded once to the output (Section II-C's two-input rule).
"""

from __future__ import annotations

import numpy as np

from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = [
    "BinaryElementwiseKernel",
    "SubtractKernel",
    "AddKernel",
    "AbsDiffKernel",
    "MultiplyKernel",
    "UnaryElementwiseKernel",
    "ScaleKernel",
    "ThresholdKernel",
    "IdentityKernel",
]


class BinaryElementwiseKernel(Kernel):
    """Base for two-input, one-output per-element kernels."""

    #: Per-iteration compute cost; cheap ALU work.
    cycles: int = 5

    def configure(self) -> None:
        self.add_input("in0", 1, 1, 1, 1, 0, 0)
        self.add_input("in1", 1, 1, 1, 1, 0, 0)
        self.add_output("out", 1, 1)
        self.add_method(
            "run",
            inputs=["in0", "in1"],
            outputs=["out"],
            cost=MethodCost(cycles=self.cycles),
        )

    def compute(self, a: float, b: float) -> float:
        raise NotImplementedError

    def run(self) -> None:
        a = float(self.read_input("in0")[0, 0])
        b = float(self.read_input("in1")[0, 0])
        self.write_output("out", np.array([[self.compute(a, b)]]))


class SubtractKernel(BinaryElementwiseKernel):
    """Per-pixel difference ``in0 - in1`` (Figure 1's Subtract)."""

    def compute(self, a: float, b: float) -> float:
        return a - b


class AddKernel(BinaryElementwiseKernel):
    """Per-pixel sum ``in0 + in1``."""

    def compute(self, a: float, b: float) -> float:
        return a + b


class AbsDiffKernel(BinaryElementwiseKernel):
    """Per-pixel absolute difference ``|in0 - in1|``."""

    def compute(self, a: float, b: float) -> float:
        return abs(a - b)


class MultiplyKernel(BinaryElementwiseKernel):
    """Per-pixel product ``in0 * in1``."""

    def compute(self, a: float, b: float) -> float:
        return a * b


class UnaryElementwiseKernel(Kernel):
    """Base for one-input, one-output per-element kernels."""

    cycles: int = 4

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1, 0, 0)
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"], cost=MethodCost(cycles=self.cycles)
        )

    def compute(self, value: float) -> float:
        raise NotImplementedError

    def run(self) -> None:
        value = float(self.read_input("in")[0, 0])
        self.write_output("out", np.array([[self.compute(value)]]))


class ScaleKernel(UnaryElementwiseKernel):
    """Affine per-pixel transform ``gain * x + bias``."""

    def __init__(self, name: str, gain: float = 1.0, bias: float = 0.0) -> None:
        self.gain = gain
        self.bias = bias
        super().__init__(name)

    def compute(self, value: float) -> float:
        return self.gain * value + self.bias


class ThresholdKernel(UnaryElementwiseKernel):
    """Binary threshold: 1.0 where ``x >= level`` else 0.0."""

    def __init__(self, name: str, level: float) -> None:
        self.level = level
        super().__init__(name)

    def compute(self, value: float) -> float:
        return 1.0 if value >= self.level else 0.0


class IdentityKernel(UnaryElementwiseKernel):
    """Pass-through; useful as a pipeline stage anchor for dependency edges."""

    cycles = 1

    def compute(self, value: float) -> float:
        return value
