"""Bayer demosaicing kernels (benchmark 1/1F of Figure 13).

A Bayer sensor delivers one colour sample per pixel in an RGGB mosaic; the
demosaic kernel reconstructs full-colour pixels.  We model the common
bilinear quad demosaic: each ``2x2`` RGGB quad produces one RGB pixel, so
the kernel's input is ``(2x2)[2,2]`` (no reuse, zero halo) and it has three
1x1 outputs — a natural example of a multi-output kernel, which StreamIt's
single-output restriction cannot express directly (Section VI).
"""

from __future__ import annotations

import numpy as np

from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = ["BayerDemosaicKernel", "LuminanceKernel"]


class BayerDemosaicKernel(Kernel):
    """RGGB quad demosaic: ``(2x2)[2,2]`` in, three ``1x1`` colour outputs."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", 2, 2, 2, 2, 0, 0)
        self.add_output("r", 1, 1)
        self.add_output("g", 1, 1)
        self.add_output("b", 1, 1)
        self.add_method(
            "demosaic",
            inputs=["in"],
            outputs=["r", "g", "b"],
            cost=MethodCost(cycles=24),
        )

    def demosaic(self) -> None:
        quad = self.read_input("in")
        r = quad[0, 0]
        g = 0.5 * (quad[0, 1] + quad[1, 0])
        b = quad[1, 1]
        self.write_output("r", np.array([[r]]))
        self.write_output("g", np.array([[g]]))
        self.write_output("b", np.array([[b]]))


class LuminanceKernel(Kernel):
    """Rec.601 luma from three colour planes: ``0.299R + 0.587G + 0.114B``.

    Used by the Bayer benchmark to fold the demosaiced planes back into a
    single stream feeding the application output.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("r", 1, 1, 1, 1, 0, 0)
        self.add_input("g", 1, 1, 1, 1, 0, 0)
        self.add_input("b", 1, 1, 1, 1, 0, 0)
        self.add_output("out", 1, 1)
        self.add_method(
            "combine",
            inputs=["r", "g", "b"],
            outputs=["out"],
            cost=MethodCost(cycles=12),
        )

    def combine(self) -> None:
        r = float(self.read_input("r")[0, 0])
        g = float(self.read_input("g")[0, 0])
        b = float(self.read_input("b")[0, 0])
        self.write_output("out", np.array([[0.299 * r + 0.587 * g + 0.114 * b]]))
