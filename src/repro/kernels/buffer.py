"""The two-dimensional circular buffer kernel (Section III-B).

The only channel buffering implicit in the application model is the single
iteration of double-buffering in each port; everything else is explicit
Buffer kernels inserted by the compiler.  A buffer kernel accumulates
scan-line-ordered chunks into a circular row store and emits consumer-sized
windows as they complete.  It is a *regular* kernel — it has a method,
declared costs, and state — so the mapping and simulation passes treat it
like any other computation.

Buffers are sized to double-buffer the larger of their input or output: a
``(1x1)[1,1] -> (5x5)[1,1]`` buffer over a 20-wide region stores
``20 x 10`` elements (two window-heights of rows), which is exactly the
``Buffer [20x10]`` annotation of Figure 4.

Buffers are **not** data parallel: round-robin distribution would reorder
data (Section IV-C).  When a buffer must split — usually because its row
storage exceeds one processing element's memory — it splits column-wise
with the window overlap replicated to both halves (Figure 10); see
:mod:`repro.transform.parallelize`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import AnalysisError, FiringError, PortError
from ..geometry import Size2D, Step2D, iteration_grid
from ..graph.kernel import Kernel, TransferResult
from ..graph.methods import MethodCost
from ..streams import StreamInfo
from ..tokens import EndOfFrame

__all__ = ["BufferKernel"]


class BufferKernel(Kernel):
    """Re-chunk a stream of ``in_chunk`` tiles into overlapping windows.

    Parameters
    ----------
    region_w, region_h:
        The per-frame extent of the incoming stream (known statically from
        the dataflow analysis at insertion time).
    window_w, window_h, step_x, step_y:
        The consumer's window parameterization.
    in_chunk_w, in_chunk_h:
        Incoming chunk extent.  Application inputs produce ``1x1``; chunk
        heights above one are only supported for full-width tiles because
        window completion is tracked as a scan-order watermark.
    """

    data_parallel = False
    compiler_inserted = True

    #: Cycles charged per stored input chunk (pointer arithmetic + wrap).
    STORE_CYCLES = 4

    def __init__(
        self,
        name: str,
        *,
        region_w: int,
        region_h: int,
        window_w: int,
        window_h: int,
        step_x: int = 1,
        step_y: int = 1,
        in_chunk_w: int = 1,
        in_chunk_h: int = 1,
    ) -> None:
        if window_w > region_w or window_h > region_h:
            raise PortError(
                f"buffer {name!r}: window {window_w}x{window_h} exceeds "
                f"region {region_w}x{region_h}"
            )
        if in_chunk_h > 1 and in_chunk_w != region_w:
            raise PortError(
                f"buffer {name!r}: multi-row chunks must span the full region"
            )
        if region_w % in_chunk_w or region_h % in_chunk_h:
            raise PortError(
                f"buffer {name!r}: chunks {in_chunk_w}x{in_chunk_h} do not "
                f"tile region {region_w}x{region_h}"
            )
        self.region_w = region_w
        self.region_h = region_h
        self.window_w = window_w
        self.window_h = window_h
        self.step_x = step_x
        self.step_y = step_y
        self.in_chunk_w = in_chunk_w
        self.in_chunk_h = in_chunk_h
        #: One stored chunk can complete several windows when chunks span
        #: multiple step positions; bound emissions for backpressure gating.
        self.max_emissions_per_firing = max(2, -(-in_chunk_w // step_x) + 1)
        #: Circular row store: two window-heights of rows (double buffering).
        self.storage_rows = 2 * window_h
        self._store = np.zeros((self.storage_rows, region_w), dtype=np.float64)
        self._x = 0
        self._y = 0
        super().__init__(name)

    # ------------------------------------------------------------------
    def configure(self) -> None:
        self.add_input(
            "in", self.in_chunk_w, self.in_chunk_h, self.in_chunk_w, self.in_chunk_h
        )
        self.add_output("out", self.window_w, self.window_h)
        self.add_method(
            "store",
            inputs=["in"],
            outputs=["out"],
            cost=MethodCost(cycles=self.STORE_CYCLES),
        )
        self.add_method(
            "end_frame",
            on_token=("in", EndOfFrame),
            outputs=["out"],
            cost=MethodCost(cycles=2),
            forward_token=True,
        )

    @property
    def storage_words(self) -> int:
        """Words of row storage — the ``[W x 2h]`` box label of Figure 4."""
        return self.storage_rows * self.region_w

    def extra_state_words(self) -> int:
        return self.storage_words

    def describe_parameterization(self) -> str:
        """Paper-style label, e.g. ``(1x1)[1,1]-->(5x5)[1,1] [20x10]``."""
        return (
            f"({self.in_chunk_w}x{self.in_chunk_h})"
            f"[{self.in_chunk_w},{self.in_chunk_h}]-->"
            f"({self.window_w}x{self.window_h})[{self.step_x},{self.step_y}] "
            f"[{self.region_w}x{self.storage_rows}]"
        )

    # ------------------------------------------------------------------
    # Runtime behaviour
    # ------------------------------------------------------------------
    def store(self) -> None:
        chunk = self.read_input("in")
        ch, cw = chunk.shape
        if self._y + ch > self.region_h or self._x + cw > self.region_w:
            raise FiringError(
                f"{self.name}: received more data than the declared "
                f"{self.region_w}x{self.region_h} region"
            )
        # Emit every window whose bottom-right element just arrived.  Chunks
        # arrive in scan order, so completion is a per-row watermark.
        if ch == 1:
            # Scan-order elements and row chunks land here.
            self._store[self._y % self.storage_rows,
                        self._x : self._x + cw] = chunk[0]
            self._emit_completed(self._y, self._x, self._x + cw - 1)
        else:
            for dy in range(ch):
                row = (self._y + dy) % self.storage_rows
                self._store[row, self._x : self._x + cw] = chunk[dy]
            for dy in range(ch):
                y = self._y + dy
                self._emit_completed(y, self._x, self._x + cw - 1)
        self._x += cw
        if self._x >= self.region_w:
            self._x = 0
            self._y += ch

    def _emit_completed(self, y: int, x_first: int, x_last: int) -> None:
        h, w = self.window_h, self.window_w
        if y < h - 1 or (y - (h - 1)) % self.step_y != 0:
            return
        py = y - (h - 1)
        # Window columns px on the step lattice whose right edge lies in
        # the newly stored span.
        first = max(0, x_first - (w - 1))
        last = min(x_last - (w - 1), self.region_w - w)
        if last < first:
            return
        start = first + (-first) % self.step_x
        r0 = py % self.storage_rows
        if r0 + h <= self.storage_rows:
            # Common case: the window's rows are physically contiguous in
            # the circular store, so one basic-slice view serves every
            # window of this row (copied per emission below).
            block = self._store[r0 : r0 + h]
        else:
            rows = [(py + dy) % self.storage_rows for dy in range(h)]
            block = self._store[rows]
        write = self.write_output
        for px in range(start, last + 1, self.step_x):
            write("out", block[:, px : px + w].copy())

    def end_frame(self) -> None:
        """End-of-frame: rewind the fill position for the next frame."""
        self._x = 0
        self._y = 0

    # ------------------------------------------------------------------
    # Batched execution (repro.sim.batch)
    # ------------------------------------------------------------------
    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        # Scan-order 1x1 stores are a pure function of the fill cursor, so
        # a period's worth of positions — and the windows they complete —
        # can be computed up front.  Forwarded line tokens only touch token
        # bookkeeping; an end_frame rewind mid-period cannot be predicted.
        return (
            method == "store"
            and others <= {"<forward>"}
            and self.in_chunk_w == 1
            and self.in_chunk_h == 1
        )

    def batched_apply(self, method, inputs):
        items = inputs["in"]
        n = len(items)
        W = self.region_w
        h, w = self.window_h, self.window_w
        sy, sx = self.step_y, self.step_x
        x, y = self._x, self._y
        x0, y0 = x, y
        p0 = y0 * W + x0
        if (p0 + n - 1) // W >= self.region_h:
            return None  # overflow: the scalar path raises mid-period
        hm1 = h - 1
        wm1 = w - 1
        xs_l: list[int] = []
        ys_l: list[int] = []
        eidx: list[int] = []
        for i in range(n):
            xs_l.append(x)
            ys_l.append(y)
            if (
                y >= hm1
                and x >= wm1
                and (y - hm1) % sy == 0
                and (x - wm1) % sx == 0
            ):
                eidx.append(i)
            x += 1
            if x == W:
                x = 0
                y += 1
        vals = np.stack(items).reshape(n)
        emissions: list[list] = [[] for _ in range(n)]
        if eidx:
            # Assemble the scan region the period touches: rows already in
            # the circular store (the last h-1 rows stay live) plus the
            # batch's values laid out flat at their scan positions.  Cells
            # past the last store are never read by any completed window.
            lo = max(0, y0 - hm1)
            region = np.empty((ys_l[-1] - lo + 1, W))
            rows = self.storage_rows
            for r in range(lo, y0):
                region[r - lo] = self._store[r % rows]
            if x0:
                region[y0 - lo, :x0] = self._store[y0 % rows, :x0]
            region.reshape(-1)[p0 - lo * W : p0 - lo * W + n] = vals
            wins = np.lib.stride_tricks.sliding_window_view(region, (h, w))[
                [ys_l[i] - hm1 - lo for i in eidx],
                [xs_l[i] - wm1 for i in eidx],
            ]
            for j, i in enumerate(eidx):
                emissions[i] = [("out", wins[j])]
        store = self._store
        rows = self.storage_rows

        def commit(i: int) -> None:
            xc = xs_l[i]
            yc = ys_l[i]
            store[yc % rows, xc] = vals[i]
            if xc + 1 >= W:
                self._x = 0
                self._y = yc + 1
            else:
                self._x = xc + 1
                self._y = yc

        return emissions, commit

    def reset(self) -> None:
        super().reset()
        self._store = np.zeros((self.storage_rows, self.region_w), dtype=np.float64)
        self._x = 0
        self._y = 0

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        if (s.extent.w, s.extent.h) != (self.region_w, self.region_h):
            raise AnalysisError(
                f"{self.name}: buffer sized for {self.region_w}x"
                f"{self.region_h} but stream region is {s.extent}"
            )
        window = Size2D(self.window_w, self.window_h)
        grid = iteration_grid(s.extent, window, Step2D(self.step_x, self.step_y))
        out = StreamInfo(
            region=s.region,
            chunk=window,
            rate_hz=s.rate_hz,
            chunks_per_frame=grid.elements,
            token_rates=dict(s.token_rates),
            windows_precut=True,
        )
        return TransferResult(
            outputs={"out": out},
            firings_per_second={
                "store": s.chunks_per_frame * s.rate_hz,
                "end_frame": s.rate_hz,
            },
        )
