"""Downsampling kernel — the fractional-offset case (paper footnote 2).

A ``factor x factor`` box downsampler consumes non-overlapping windows and
emits one element each.  The logical position of that element relative to
the window's upper-left corner is ``(factor-1)/2`` — fractional for even
factors — which is why the language stores offsets as exact rationals.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..errors import GraphError
from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = ["DownsampleKernel"]


class DownsampleKernel(Kernel):
    """Box-average ``factor:1`` downsampler with fractional output offset."""

    def __init__(self, name: str, factor: int = 2) -> None:
        if factor < 2:
            raise GraphError(f"downsample {name!r}: factor must be >= 2")
        self.factor = factor
        super().__init__(name)

    def configure(self) -> None:
        f = self.factor
        centre = Fraction(f - 1, 2)
        self.add_input("in", f, f, f, f, centre, centre)
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"],
            cost=MethodCost(cycles=5 + 2 * f * f),
        )

    def run(self) -> None:
        window = self.read_input("in")
        self.write_output("out", np.array([[float(window.mean())]]))
