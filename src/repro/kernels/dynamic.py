"""Variable-work kernels (Section VII's future-work extension).

The paper's canonical example is a motion-vector search "where the number
of motion vectors, the data required to process them, and the processing
time per motion vector vary from frame to frame", and its prescription is
"bounds on real-time processing requirements and runtime exceptions to
indicate when a kernel has exceeded its allocated resources".

:class:`VariableWorkKernel` realizes that contract: the constructor
declares a *bound* (the static ``MethodCost`` the compiler plans with) and
the body reports its actual data-dependent cost via
``self.charge_cycles(...)``.  The simulator records a
:class:`~repro.sim.BudgetOverrun` whenever an actual exceeds the bound —
the "runtime exception" — while charging the actual time, so the
throughput verdict shows the real-time consequences of an undersized
bound.

:class:`BlockMatchKernel` is a concrete miniature of the motion-search
scenario: per window it scans candidate offsets until a match cost drops
below a threshold, so busy frames genuinely cost more cycles.
"""

from __future__ import annotations

import numpy as np

from ..errors import ResourceError
from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = ["VariableWorkKernel", "BlockMatchKernel"]


class VariableWorkKernel(Kernel):
    """Base class for kernels with data-dependent per-firing cost.

    Subclasses implement :meth:`work`, returning ``(value, cycles)`` for
    each input window; the base registers a single windowed method whose
    declared cost is the ``bound_cycles`` budget.
    """

    def __init__(
        self, name: str, width: int, height: int, *, bound_cycles: int
    ) -> None:
        if bound_cycles <= 0:
            raise ResourceError(f"{name}: bound_cycles must be positive")
        self.width = width
        self.height = height
        self.bound_cycles = bound_cycles
        super().__init__(name)

    def configure(self) -> None:
        self.add_input(
            "in", self.width, self.height, 1, 1,
            self.width // 2, self.height // 2,
        )
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"],
            cost=MethodCost(cycles=self.bound_cycles),
        )

    def work(self, window: np.ndarray) -> tuple[float, float]:
        """Return (result value, actual cycles consumed)."""
        raise NotImplementedError

    def run(self) -> None:
        window = self.read_input("in")
        value, cycles = self.work(window)
        self.charge_cycles(cycles)
        self.write_output("out", np.array([[value]]))


class BlockMatchKernel(VariableWorkKernel):
    """A miniature motion-search: scan offsets until the residual is small.

    Within each ``width x height`` window the kernel compares the centre
    column against each other column in turn (a 1-D "search range") and
    stops at the first whose mean absolute difference falls below
    ``threshold``; the reported value is the matching offset and the cost
    is ``cycles_per_candidate`` per column examined.  Smooth regions match
    immediately (cheap); busy regions scan everything (expensive).
    """

    def __init__(
        self,
        name: str,
        width: int = 5,
        height: int = 5,
        *,
        threshold: float = 4.0,
        cycles_per_candidate: int = 40,
        bound_candidates: int | None = None,
    ) -> None:
        self.threshold = threshold
        self.cycles_per_candidate = cycles_per_candidate
        candidates = width - 1
        bounded = (
            bound_candidates if bound_candidates is not None else candidates
        )
        super().__init__(
            name, width, height,
            bound_cycles=10 + cycles_per_candidate * max(bounded, 1),
        )

    def work(self, window: np.ndarray) -> tuple[float, float]:
        centre = window[:, self.width // 2]
        examined = 0
        best = 0.0
        for dx in range(self.width):
            if dx == self.width // 2:
                continue
            examined += 1
            cost = float(np.mean(np.abs(window[:, dx] - centre)))
            if cost < self.threshold:
                best = float(dx - self.width // 2)
                break
        return best, 10 + self.cycles_per_candidate * max(examined, 1)
