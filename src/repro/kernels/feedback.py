"""Feedback support (Section III-D — a designed extension of the paper).

The paper sketches two modifications to support feedback: breaking loops in
the dataflow analysis with special feedback kernels, and letting the
programmer define initial values for the data held in a loop.  Both are
realized by :class:`InitialValueKernel`:

* ``breaks_cycle = True`` makes the graph's topological ordering (and the
  worklist dataflow analysis) ignore the kernel's incoming back edge;
* its ``init`` method emits the declared initial chunk(s) once at startup
  and thereafter it passes its input through unchanged, which is exactly
  the "outputs the initial values once and then passes on its input values"
  behaviour the paper describes.

Feedback loops are inherently serial — each iteration depends on the
previous one — so the kernel is not data parallel; applications should also
add a data-dependency edge around latency-critical loops so the
parallelizer keeps the loop body together (Section IV-B).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import GraphError
from ..geometry import Inset, Region, Size2D
from ..graph.kernel import Kernel, TransferResult
from ..graph.methods import MethodCost
from ..streams import StreamInfo

__all__ = ["InitialValueKernel"]


class InitialValueKernel(Kernel):
    """Breaks a feedback loop and provides its initial value.

    ``initial`` is the chunk emitted once at startup (its shape defines the
    loop's chunk extent); ``region_w``/``region_h``/``rate_hz`` declare the
    loop stream statically, since the dataflow analysis cannot derive them
    from an unbroken cycle.
    """

    data_parallel = False
    breaks_cycle = True

    def __init__(
        self,
        name: str,
        initial: np.ndarray,
        *,
        region_w: int | None = None,
        region_h: int | None = None,
        rate_hz: float | None = None,
    ) -> None:
        arr = np.atleast_2d(np.asarray(initial, dtype=np.float64))
        if arr.ndim != 2:
            raise GraphError(f"feedback {name!r}: initial value must be 2-D")
        self.initial = arr
        ch, cw = arr.shape
        self.region_w = region_w if region_w is not None else cw
        self.region_h = region_h if region_h is not None else ch
        self.rate_hz = rate_hz
        super().__init__(name)

    def configure(self) -> None:
        ch, cw = self.initial.shape
        self.add_input("in", cw, ch, cw, ch)
        self.add_output("out", cw, ch)
        self.add_init_method("init", MethodCost(cycles=5, state_words=cw * ch))
        self.add_method(
            "passthrough", inputs=["in"], outputs=["out"],
            cost=MethodCost(cycles=2),
        )

    def init(self) -> None:
        """Prime the loop: emit the initial value once at startup."""
        self.write_output("out", self.initial.copy())

    def passthrough(self) -> None:
        self.write_output("out", self.read_input("in"))

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        ch, cw = self.initial.shape
        if "in" in inputs:
            s = inputs["in"]
            out = StreamInfo(
                region=s.region,
                chunk=s.chunk,
                rate_hz=s.rate_hz,
                chunks_per_frame=s.chunks_per_frame,
                token_rates=dict(s.token_rates),
                share=s.share,
            )
            rate = s.chunks_per_frame * s.rate_hz
        else:
            # First worklist pass around the loop: fall back to the declared
            # stream so downstream kernels can be analyzed; a later pass
            # refines it once the back edge has been evaluated.
            if self.rate_hz is None:
                raise GraphError(
                    f"feedback {self.name!r}: declare rate_hz so the loop "
                    "can be analyzed before the back edge resolves"
                )
            out = StreamInfo(
                region=Region(Size2D(self.region_w, self.region_h), Inset(0, 0)),
                chunk=Size2D(cw, ch),
                rate_hz=self.rate_hz,
                chunks_per_frame=max(
                    1, (self.region_w * self.region_h) // (cw * ch)
                ),
            )
            rate = out.chunks_per_frame * out.rate_hz
        return TransferResult(
            outputs={"out": out},
            firings_per_second={"passthrough": float(rate)},
        )
