"""Windowed image-processing kernels: convolution, median, Sobel, Gaussian.

These are the workhorses of the paper's example applications (Figures 1-4).
All follow the same pattern: a ``(w x h)`` windowed input stepping ``(1,1)``
with offset ``(w//2, h//2)`` — so each output lands at the centre of its
window — and a ``1x1`` output.  The convolution additionally demonstrates
multiple methods sharing private kernel state: ``load_coeff`` runs when new
coefficients arrive on the *replicated* "coeff" input and ``run_convolve``
uses them on subsequent data firings (Figure 6).
"""

from __future__ import annotations

import numpy as np

from ..errors import FiringError
from ..graph.kernel import Kernel
from ..graph.methods import MethodCost

__all__ = [
    "WindowedKernel",
    "ConvolutionKernel",
    "MedianKernel",
    "SobelKernel",
    "GaussianKernel",
]


class WindowedKernel(Kernel):
    """Base class for ``(w x h) -> 1x1`` sliding-window kernels.

    Subclasses set ``cycles`` (per-iteration compute cost) before calling
    ``super().__init__`` and implement :meth:`compute` mapping the window
    array to a scalar.
    """

    def __init__(self, name: str, width: int, height: int, cycles: int) -> None:
        self.width = width
        self.height = height
        self.cycles = cycles
        super().__init__(name)

    def configure(self) -> None:
        self.add_input(
            "in", self.width, self.height, 1, 1, self.width // 2, self.height // 2
        )
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"], cost=MethodCost(cycles=self.cycles)
        )

    def compute(self, window: np.ndarray) -> float:
        raise NotImplementedError

    def compute_batch(self, windows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`compute` over an ``(n, h, w)`` stack; must be
        bit-identical to per-window evaluation."""
        raise NotImplementedError

    def run(self) -> None:
        window = self.read_input("in")
        self.write_output("out", np.array([[self.compute(window)]]))

    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        return (
            method == "run"
            and others <= {"<forward>"}
            and type(self).compute_batch is not WindowedKernel.compute_batch
        )

    def batched_apply(self, method, inputs):
        wins = np.stack(inputs["in"])
        out = self.compute_batch(wins).reshape(len(wins), 1, 1)
        return [[("out", out[i])] for i in range(len(wins))], None


class ConvolutionKernel(Kernel):
    """A ``width x height`` convolution with a reloadable coefficient input.

    Mirrors Figure 6: the "in" input is ``(w x h)[1,1]`` with offset
    ``[w//2, h//2]``; the "coeff" input is ``(w x h)[w,h]`` (no reuse — new
    coefficients replace old) and *replicated*, so parallel instances all
    receive the same coefficients.  Costs follow the paper:
    ``10 + 3*h*w`` cycles to convolve, ``10 + 2*h*w`` to load coefficients.

    Pass ``with_coeff_input=False`` to embed fixed coefficients instead of
    wiring a coefficient source (convenient for small pipelines and tests).
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        *,
        with_coeff_input: bool = True,
        coeff: np.ndarray | None = None,
    ) -> None:
        self.width = width
        self.height = height
        self._with_coeff_input = with_coeff_input
        if coeff is not None:
            coeff = np.asarray(coeff, dtype=np.float64)
            if coeff.shape != (height, width):
                raise FiringError(
                    f"{name}: coefficient shape {coeff.shape} does not match "
                    f"{(height, width)}"
                )
        self.coeff = coeff
        self._flipped: np.ndarray | None = None
        super().__init__(name)

    def configure(self) -> None:
        w, h = self.width, self.height
        self.add_input("in", w, h, 1, 1, w // 2, h // 2)
        self.add_output("out", 1, 1)
        self.add_method(
            "run_convolve",
            inputs=["in"],
            outputs=["out"],
            cost=MethodCost(cycles=10 + 3 * h * w),
        )
        if self._with_coeff_input:
            self.add_input("coeff", w, h, w, h, w // 2, h // 2, replicated=True)
            self.add_method(
                "load_coeff",
                inputs=["coeff"],
                cost=MethodCost(cycles=10 + 2 * h * w, state_words=h * w),
            )

    def run_convolve(self) -> None:
        window = self.read_input("in")
        if self.coeff is None:
            raise FiringError(
                f"{self.name}: data arrived before any coefficients; wire a "
                "coefficient source or pass coeff= at construction"
            )
        # The paper's loop multiplies in[x][y] by coeff[w-1-x][h-1-y]: a
        # flipped-kernel accumulation, i.e. true convolution.  The flipped
        # copy is cached contiguous per coefficient load — strided reversed
        # views cost more than the multiply on 3x3 windows.
        flipped = self._flipped
        if flipped is None:
            flipped = self._flipped = np.ascontiguousarray(
                self.coeff[::-1, ::-1]
            )
        acc = float(np.sum(window * flipped))
        self.write_output("out", np.array([[acc]]))

    def load_coeff(self) -> None:
        self.coeff = self.read_input("coeff").copy()
        self._flipped = None

    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        # A load_coeff inside the period would change the coefficients
        # between firings, so any period containing one stays per-firing.
        return (
            method == "run_convolve"
            and others <= {"<forward>"}
            and self.coeff is not None
        )

    def batched_apply(self, method, inputs):
        flipped = self._flipped
        if flipped is None:
            flipped = self._flipped = np.ascontiguousarray(self.coeff[::-1, ::-1])
        wins = np.stack(inputs["in"])
        # Axis-reduction sum, NOT a matmul: np.sum(w * c, axis=(1, 2)) is
        # bit-identical to the scalar float(np.sum(window * flipped));
        # reshape @ ravel pairs terms in a different order and is not.
        acc = np.sum(wins * flipped, axis=(1, 2)).reshape(len(wins), 1, 1)
        return [[("out", acc[i])] for i in range(len(wins))], None


class MedianKernel(WindowedKernel):
    """A ``width x height`` median filter (the 3x3 median of Figure 1).

    Cost models a partial selection network: ``10 + 5*h*w`` cycles.
    """

    def __init__(self, name: str, width: int, height: int) -> None:
        super().__init__(name, width, height, cycles=10 + 5 * width * height)

    def compute(self, window: np.ndarray) -> float:
        # Selection via partition, exactly what np.median computes (the
        # middle element for odd counts, the mean of the two middles for
        # even) without its dispatch and nan-handling overhead — this is
        # the hottest compute in the Figure 1 pipeline.
        flat = window.ravel()
        n = flat.size
        mid = n >> 1
        if n & 1:
            return float(np.partition(flat, mid)[mid])
        part = np.partition(flat, (mid - 1, mid))
        return float((part[mid - 1] + part[mid]) / 2.0)

    def compute_batch(self, windows: np.ndarray) -> np.ndarray:
        flat = windows.reshape(windows.shape[0], -1)
        n = flat.shape[1]
        mid = n >> 1
        if n & 1:
            return np.partition(flat, mid, axis=1)[:, mid]
        part = np.partition(flat, (mid - 1, mid), axis=1)
        return (part[:, mid - 1] + part[:, mid]) / 2.0


class SobelKernel(Kernel):
    """3x3 Sobel gradient magnitude (|Gx| + |Gy| approximation).

    A second standard windowed filter used by the multi-filter benchmark
    applications; fixed 3x3 window, centre offset.
    """

    _GX = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
    _GY = _GX.T.copy()

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", 3, 3, 1, 1, 1, 1)
        self.add_output("out", 1, 1)
        self.add_method(
            "run", inputs=["in"], outputs=["out"], cost=MethodCost(cycles=10 + 6 * 9)
        )

    def run(self) -> None:
        window = self.read_input("in")
        gx = float(np.sum(window * self._GX))
        gy = float(np.sum(window * self._GY))
        self.write_output("out", np.array([[abs(gx) + abs(gy)]]))

    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        return method == "run" and others <= {"<forward>"}

    def batched_apply(self, method, inputs):
        wins = np.stack(inputs["in"])
        gx = np.sum(wins * self._GX, axis=(1, 2))
        gy = np.sum(wins * self._GY, axis=(1, 2))
        out = (np.abs(gx) + np.abs(gy)).reshape(len(wins), 1, 1)
        return [[("out", out[i])] for i in range(len(wins))], None


def _gaussian_coeff(width: int, height: int, sigma: float) -> np.ndarray:
    ys = np.arange(height) - (height - 1) / 2.0
    xs = np.arange(width) - (width - 1) / 2.0
    g = np.exp(-(ys[:, None] ** 2 + xs[None, :] ** 2) / (2.0 * sigma * sigma))
    return g / g.sum()


class GaussianKernel(ConvolutionKernel):
    """A convolution pre-loaded with normalized Gaussian coefficients."""

    def __init__(self, name: str, width: int, height: int, sigma: float = 1.0) -> None:
        self.sigma = sigma
        super().__init__(
            name,
            width,
            height,
            with_coeff_input=False,
            coeff=_gaussian_coeff(width, height, sigma),
        )
