"""Histogram kernels (Figure 7) and the serial merge of Figure 1(b).

The histogram demonstrates the control-token machinery: ``count`` fires on
each data element, ``finish_count`` fires on the end-of-frame token arriving
on the *same* input, dumps the bin counts to the output, resets, and
forwards the token so the downstream merge kernel can detect the frame
boundary in turn.  The two methods communicate through private state (the
bin counts), which is exactly the separation of control and data processing
the paper advertises.

The merge kernel is the serial portion of the manually split histogram: it
accumulates partial histograms from the parallel instances and emits one
combined histogram per frame.  It is *not* data parallel; the application
marks that with a data-dependency edge from the input (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from ..graph.kernel import Kernel
from ..graph.methods import MethodCost
from ..tokens import EndOfFrame

__all__ = ["HistogramKernel", "HistogramMergeKernel", "default_bin_edges"]


def default_bin_edges(bins: int, lo: float = 0.0, hi: float = 256.0) -> np.ndarray:
    """Evenly spaced upper bin edges over ``[lo, hi)``."""
    return lo + (hi - lo) * (np.arange(1, bins + 1, dtype=np.float64) / bins)


class HistogramKernel(Kernel):
    """Per-element histogram with end-of-frame flush (Figure 7).

    Ports: "in" ``(1x1)[1,1]``; "bins" ``(bins x 1)[bins,1]`` replicated
    (bin upper edges, reloadable like convolution coefficients); "out"
    ``(bins x 1)`` written once per frame by ``finish_count``.

    Costs follow Figure 7: init ``2*bins + 3`` cycles (clearing the bins),
    count ``bins/2 + 5`` (average linear search reaches halfway),
    finish_count ``3*bins + 3`` (dump and reset).
    """

    def __init__(
        self,
        name: str,
        bins: int = 32,
        *,
        lo: float = 0.0,
        hi: float = 256.0,
        with_bins_input: bool = True,
    ) -> None:
        self.bins = bins
        self._with_bins_input = with_bins_input
        self.bin_edges = default_bin_edges(bins, lo, hi)
        self.counts = np.zeros(bins, dtype=np.float64)
        super().__init__(name)

    def configure(self) -> None:
        b = self.bins
        self.add_input("in", 1, 1, 1, 1, 0, 0)
        self.add_output("out", b, 1)
        self.add_init_method("init", MethodCost(cycles=2 * b + 3, state_words=b))
        self.add_method(
            "count", inputs=["in"], cost=MethodCost(cycles=b // 2 + 5)
        )
        self.add_method(
            "finish_count",
            on_token=("in", EndOfFrame),
            outputs=["out"],
            cost=MethodCost(cycles=3 * b + 3),
            forward_token=True,
        )
        if self._with_bins_input:
            self.add_input("bins", b, 1, b, 1, 0, 0, replicated=True)
            self.add_method(
                "configure_bins",
                inputs=["bins"],
                cost=MethodCost(cycles=2 * b + 5, state_words=b),
            )

    def init(self) -> None:
        self.counts[:] = 0.0

    def find_bin(self, value: float) -> int:
        """Index of the first bin whose upper edge exceeds ``value``.

        Out-of-range values clamp into the end bins, as a fixed-function
        histogram unit would.
        """
        idx = int(np.searchsorted(self.bin_edges, value, side="right"))
        return min(idx, self.bins - 1)

    def count(self) -> None:
        value = float(self.read_input("in")[0, 0])
        self.counts[self.find_bin(value)] += 1.0

    def finish_count(self) -> None:
        self.write_output("out", self.counts.reshape(1, self.bins).copy())
        self.counts[:] = 0.0

    def configure_bins(self) -> None:
        self.bin_edges = self.read_input("bins").ravel().copy()
        self.counts[:] = 0.0

    # ------------------------------------------------------------------
    # Batched execution (repro.sim.batch)
    # ------------------------------------------------------------------
    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        # Bin lookups depend only on the (stable) edges, so they vectorize;
        # the increments themselves replay one commit per firing in
        # schedule order, so an interleaved finish_count flush observes
        # exactly the sequential counts.  configure_bins would change the
        # edges mid-period, so such periods stay per-firing.
        return method == "count" and others <= {"finish_count", "<forward>"}

    def batched_apply(self, method, inputs):
        n = len(inputs["in"])
        vals = np.stack(inputs["in"]).reshape(n)
        idx = np.minimum(
            np.searchsorted(self.bin_edges, vals, side="right"), self.bins - 1
        ).tolist()
        counts = self.counts

        def commit(i: int) -> None:
            counts[idx[i]] += 1.0

        return [[] for _ in range(n)], commit

    def reset(self) -> None:
        super().reset()
        self.counts = np.zeros(self.bins, dtype=np.float64)


class HistogramMergeKernel(Kernel):
    """Serial reduction of partial histograms — once per frame.

    Accumulates every partial histogram chunk that arrives during a frame
    and emits the combined histogram when the (forwarded) end-of-frame
    token is seen.  Limited parallelism is expressed at the application
    level with a data-dependency edge from the application input to this
    kernel (Figure 1(b)), capping it at one instance per input frame.
    """

    data_parallel = False

    def __init__(self, name: str, bins: int = 32) -> None:
        self.bins = bins
        self.total = np.zeros(bins, dtype=np.float64)
        super().__init__(name)

    def configure(self) -> None:
        b = self.bins
        self.add_input("in", b, 1, b, 1, 0, 0)
        self.add_output("out", b, 1)
        self.add_method(
            "accumulate", inputs=["in"], cost=MethodCost(cycles=2 * b + 5,
                                                         state_words=b)
        )
        self.add_method(
            "finish",
            on_token=("in", EndOfFrame),
            outputs=["out"],
            cost=MethodCost(cycles=3 * b + 3),
            forward_token=True,
        )

    def accumulate(self) -> None:
        self.total += self.read_input("in").ravel()

    def finish(self) -> None:
        self.write_output("out", self.total.reshape(1, self.bins).copy())
        self.total[:] = 0.0

    def reset(self) -> None:
        super().reset()
        self.total = np.zeros(self.bins, dtype=np.float64)
