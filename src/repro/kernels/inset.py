"""Inset (trim) and pad kernels for data alignment (Section III-C, Figure 8).

When two differently-haloed filter outputs feed one multi-input kernel, the
compiler must either trim the larger output or pad the smaller one's input
so the extents and insets agree.  The *choice* is the programmer's (it
changes the result); the mechanics are these kernels, inserted by the align
transform (the inverted-house "Inset" node of Figure 3).

Both kernels re-shape the line structure of the stream, so they manage
end-of-line tokens explicitly instead of relying on automatic forwarding:
an inset kernel drops the EOL of dropped lines; a pad kernel synthesizes
EOLs for the padding rows it invents.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import AnalysisError, GraphError
from ..geometry import Inset, Region, Size2D
from ..graph.kernel import Kernel, TransferResult
from ..graph.methods import MethodCost
from ..streams import StreamInfo
from ..tokens import EndOfFrame, EndOfLine

__all__ = ["InsetKernel", "PadKernel"]


class InsetKernel(Kernel):
    """Trim ``(left, top, right, bottom)`` margins off a 1x1-chunk stream.

    The Figure 3/4 label ``offset(in1) (0,0)[1,1,1,1]`` corresponds to
    ``trim=(1, 1, 1, 1)``: one pixel discarded on each side of the median
    output so it aligns with the smaller convolution output.
    """

    data_parallel = False
    compiler_inserted = True

    def __init__(
        self,
        name: str,
        *,
        region_w: int,
        region_h: int,
        trim: tuple[int, int, int, int],
    ) -> None:
        left, top, right, bottom = trim
        if min(trim) < 0:
            raise GraphError(f"inset {name!r}: negative trim {trim}")
        if left + right >= region_w or top + bottom >= region_h:
            raise GraphError(
                f"inset {name!r}: trim {trim} consumes the whole "
                f"{region_w}x{region_h} region"
            )
        self.region_w = region_w
        self.region_h = region_h
        self.trim = (left, top, right, bottom)
        self._x = 0
        self._y = 0
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1)
        self.add_output("out", 1, 1)
        self.add_method(
            "filter_elem", inputs=["in"], outputs=["out"],
            cost=MethodCost(cycles=3),
        )
        self.add_method(
            "end_line", on_token=("in", EndOfLine), outputs=["out"],
            cost=MethodCost(cycles=2),
        )
        self.add_method(
            "end_frame", on_token=("in", EndOfFrame), outputs=["out"],
            cost=MethodCost(cycles=2), forward_token=True,
        )

    def _keeps(self, x: int, y: int) -> bool:
        left, top, right, bottom = self.trim
        return (left <= x < self.region_w - right
                and top <= y < self.region_h - bottom)

    def filter_elem(self) -> None:
        chunk = self.read_input("in")
        if self._keeps(self._x, self._y):
            self.write_output("out", chunk)
        self._x += 1
        if self._x >= self.region_w:
            self._x = 0
            self._y += 1

    def end_line(self) -> None:
        token = self.read_token()
        ended = self._y - 1 if self._x == 0 else self._y
        left, top, right, bottom = self.trim
        if top <= ended < self.region_h - bottom:
            self.emit_token("out", EndOfLine(frame=token.frame, line=ended - top))

    def end_frame(self) -> None:
        self._x = 0
        self._y = 0

    def reset(self) -> None:
        super().reset()
        self._x = 0
        self._y = 0

    # ------------------------------------------------------------------
    # Batched execution (repro.sim.batch)
    # ------------------------------------------------------------------
    def batch_accepts(self, method: str, others: frozenset[str]) -> bool:
        # end_line only *reads* the cursor, so line-period interleaving is
        # safe; an end_frame rewind mid-period would invalidate the
        # precomputed position sequence, so such periods stay per-firing.
        return method == "filter_elem" and others <= {"end_line", "<forward>"}

    def batched_apply(self, method, inputs):
        items = inputs["in"]
        n = len(items)
        W = self.region_w
        left, top, right, bottom = self.trim
        p = self._y * W + self._x + np.arange(n)
        xs = p % W
        ys = p // W
        keep = (
            (xs >= left)
            & (xs < W - right)
            & (ys >= top)
            & (ys < self.region_h - bottom)
        )
        keep_l = keep.tolist()
        # Kept chunks pass through unchanged — the same object sequential
        # execution would emit (write_output of a float64 array is a no-op
        # conversion).
        emissions = [[("out", items[i])] if keep_l[i] else [] for i in range(n)]
        xs_l = xs.tolist()
        ys_l = ys.tolist()

        def commit(i: int) -> None:
            x = xs_l[i] + 1
            if x >= W:
                self._x = 0
                self._y = ys_l[i] + 1
            else:
                self._x = x
                self._y = ys_l[i]

        return emissions, commit

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        if (s.extent.w, s.extent.h) != (self.region_w, self.region_h):
            raise AnalysisError(
                f"{self.name}: inset built for {self.region_w}x{self.region_h}"
                f" but stream region is {s.extent}"
            )
        if s.chunk != Size2D(1, 1):
            raise AnalysisError(f"{self.name}: inset kernels expect 1x1 chunks")
        left, top, right, bottom = self.trim
        out_w = self.region_w - left - right
        out_h = self.region_h - top - bottom
        token_rates = dict(s.token_rates)
        if EndOfLine.token_name() in token_rates:
            token_rates[EndOfLine.token_name()] = out_h
        out = StreamInfo(
            region=Region(
                Size2D(out_w, out_h), Inset(s.inset.x + left, s.inset.y + top)
            ),
            chunk=Size2D(1, 1),
            rate_hz=s.rate_hz,
            chunks_per_frame=out_w * out_h,
            token_rates=token_rates,
            share=s.share,
        )
        return TransferResult(
            outputs={"out": out},
            firings_per_second={
                "filter_elem": float(s.chunks_per_frame) * s.rate_hz,
                "end_line": s.token_rate(EndOfLine) * s.rate_hz,
                "end_frame": s.rate_hz,
            },
        )


class PadKernel(Kernel):
    """Surround a 1x1-chunk stream with ``(left, top, right, bottom)``
    constant-fill margins (the zero-padding alternative of Section III-C).

    Mirror padding is not implemented: mirroring a line's left edge needs
    data that arrives only later in the scan, i.e. a line buffer inside the
    pad kernel; the paper leaves the pad/trim *choice* to the programmer
    and our align transform defaults to trimming.
    """

    data_parallel = False
    compiler_inserted = True

    def __init__(
        self,
        name: str,
        *,
        region_w: int,
        region_h: int,
        pad: tuple[int, int, int, int],
        fill: float = 0.0,
    ) -> None:
        # Bursty: the first element of a frame triggers the whole top
        # border (rows x padded width plus their end-of-line tokens).
        left, top, right, bottom = pad
        padded_w = region_w + left + right
        self.max_emissions_per_firing = max(
            2, (max(top, bottom) + 1) * (padded_w + 2)
        )
        if min(pad) < 0:
            raise GraphError(f"pad {name!r}: negative padding {pad}")
        if max(pad) == 0:
            raise GraphError(f"pad {name!r}: padding is a no-op")
        self.region_w = region_w
        self.region_h = region_h
        self.pad = tuple(int(p) for p in pad)
        self.fill = float(fill)
        self._x = 0
        self._y = 0
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1)
        self.add_output("out", 1, 1)
        self.add_method(
            "pad_elem", inputs=["in"], outputs=["out"], cost=MethodCost(cycles=4)
        )
        self.add_method(
            "end_line", on_token=("in", EndOfLine), outputs=["out"],
            cost=MethodCost(cycles=2),
        )
        self.add_method(
            "end_frame", on_token=("in", EndOfFrame), outputs=["out"],
            cost=MethodCost(cycles=2),
        )

    @property
    def padded_w(self) -> int:
        left, _, right, _ = self.pad
        return self.region_w + left + right

    @property
    def padded_h(self) -> int:
        _, top, _, bottom = self.pad
        return self.region_h + top + bottom

    def _fill_chunk(self) -> np.ndarray:
        return np.full((1, 1), self.fill)

    def _emit_pad_row(self, frame: int, line: int) -> None:
        for _ in range(self.padded_w):
            self.write_output("out", self._fill_chunk())
        self.emit_token("out", EndOfLine(frame=frame, line=line))

    def pad_elem(self) -> None:
        left, top, _, _ = self.pad
        if self._x == 0 and self._y == 0:
            for row in range(top):
                self._emit_pad_row(frame=0, line=row)
        if self._x == 0:
            for _ in range(left):
                self.write_output("out", self._fill_chunk())
        self.write_output("out", self.read_input("in"))
        self._x += 1
        if self._x >= self.region_w:
            self._x = 0
            self._y += 1

    def end_line(self) -> None:
        token = self.read_token()
        _, top, right, _ = self.pad
        for _ in range(right):
            self.write_output("out", self._fill_chunk())
        ended = self._y - 1 if self._x == 0 else self._y
        self.emit_token(
            "out", EndOfLine(frame=token.frame, line=ended + top)
        )

    def end_frame(self) -> None:
        token = self.read_token()
        _, top, _, bottom = self.pad
        for row in range(bottom):
            self._emit_pad_row(frame=token.frame, line=top + self.region_h + row)
        self.emit_token("out", EndOfFrame(frame=token.frame))
        self._x = 0
        self._y = 0

    def reset(self) -> None:
        super().reset()
        self._x = 0
        self._y = 0

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        if (s.extent.w, s.extent.h) != (self.region_w, self.region_h):
            raise AnalysisError(
                f"{self.name}: pad built for {self.region_w}x{self.region_h} "
                f"but stream region is {s.extent}"
            )
        if s.chunk != Size2D(1, 1):
            raise AnalysisError(f"{self.name}: pad kernels expect 1x1 chunks")
        left, top, _, _ = self.pad
        token_rates = dict(s.token_rates)
        token_rates[EndOfLine.token_name()] = self.padded_h
        token_rates[EndOfFrame.token_name()] = 1
        out = StreamInfo(
            region=Region(
                Size2D(self.padded_w, self.padded_h),
                Inset(s.inset.x - left, s.inset.y - top),
            ),
            chunk=Size2D(1, 1),
            rate_hz=s.rate_hz,
            chunks_per_frame=self.padded_w * self.padded_h,
            token_rates=token_rates,
            share=s.share,
        )
        return TransferResult(
            outputs={"out": out},
            firings_per_second={
                "pad_elem": float(s.chunks_per_frame) * s.rate_hz,
                "end_line": s.token_rate(EndOfLine) * s.rate_hz,
                "end_frame": s.rate_hz,
            },
        )
