"""Morphological kernels: erosion and dilation.

Standard fixed-function vision blocks, here as ordinary windowed kernels:
min/max over a rectangular structuring element.  Opening and closing are
compositions — two windowed kernels in sequence — which also makes them a
natural test of multi-stage buffering: the compiler inserts a line buffer
in front of *each* stage.
"""

from __future__ import annotations

import numpy as np

from ..graph.app import ApplicationGraph
from .filters import WindowedKernel

__all__ = ["ErodeKernel", "DilateKernel", "add_opening", "add_closing"]


class ErodeKernel(WindowedKernel):
    """Grayscale erosion: minimum over a ``width x height`` neighbourhood."""

    def __init__(self, name: str, width: int = 3, height: int = 3) -> None:
        super().__init__(name, width, height, cycles=8 + 2 * width * height)

    def compute(self, window: np.ndarray) -> float:
        return float(window.min())


class DilateKernel(WindowedKernel):
    """Grayscale dilation: maximum over a ``width x height`` neighbourhood."""

    def __init__(self, name: str, width: int = 3, height: int = 3) -> None:
        super().__init__(name, width, height, cycles=8 + 2 * width * height)

    def compute(self, window: np.ndarray) -> float:
        return float(window.max())


def add_opening(
    app: ApplicationGraph, name: str, width: int = 3, height: int = 3
) -> tuple[ErodeKernel, DilateKernel]:
    """Add an opening (erode then dilate) as two connected kernels.

    Returns (first, last); the caller wires ``first``'s input and
    ``last``'s output.
    """
    erode = ErodeKernel(f"{name}_erode", width, height)
    dilate = DilateKernel(f"{name}_dilate", width, height)
    app.add_kernel(erode)
    app.add_kernel(dilate)
    app.connect(erode.name, "out", dilate.name, "in")
    return erode, dilate


def add_closing(
    app: ApplicationGraph, name: str, width: int = 3, height: int = 3
) -> tuple[DilateKernel, ErodeKernel]:
    """Add a closing (dilate then erode) as two connected kernels."""
    dilate = DilateKernel(f"{name}_dilate", width, height)
    erode = ErodeKernel(f"{name}_erode", width, height)
    app.add_kernel(dilate)
    app.add_kernel(erode)
    app.connect(dilate.name, "out", erode.name, "in")
    return dilate, erode
