"""Application boundary kernels: inputs, outputs, and constant sources.

Application inputs define the real-time constraints of the whole program
(Section II-A): each declares a frame size and rate, delivers data one
element at a time in scan-line order, and automatically interleaves
end-of-line and end-of-frame control tokens with the data (Section II-C).

Constant sources model the auxiliary inputs of the example application —
the "5x5 Coeff" and "Hist Bins" nodes of Figure 2 — which emit a fixed
array as one chunk per (typically very slow) frame and are wired to
*replicated* kernel inputs.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import GraphError
from ..geometry import Inset, Region, Size2D
from ..graph.kernel import Kernel, TransferResult
from ..graph.methods import MethodCost
from ..streams import StreamInfo, default_tokens

__all__ = ["ApplicationInput", "ApplicationOutput", "ConstantSource"]


class ApplicationInput(Kernel):
    """A real-time data input delivering ``width x height`` frames at
    ``rate_hz`` frames per second, one element per emission.

    The element rate — ``width * height * rate_hz`` elements per second —
    is the hard real-time constraint the compiled application must sustain;
    the simulator flags a :class:`~repro.errors.RealTimeViolation` if the
    first consumer cannot keep up (the input cannot be stalled).

    ``pattern`` supplies the frame contents: a callable ``(frame) ->
    ndarray(h, w)`` or a fixed array; the default is a deterministic ramp so
    functional outputs are reproducible.
    """

    data_parallel = False

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        rate_hz: float,
        pattern: np.ndarray | Callable[[int], np.ndarray] | None = None,
    ) -> None:
        if rate_hz <= 0:
            raise GraphError(f"input {name!r}: rate must be positive")
        self.width = width
        self.height = height
        self.rate_hz = float(rate_hz)
        self._pattern = pattern
        super().__init__(name)

    def configure(self) -> None:
        self.add_output("out", 1, 1)
        self.add_method("emit", outputs=["out"], source=True,
                        cost=MethodCost(cycles=0))

    @property
    def frame_size(self) -> Size2D:
        return Size2D(self.width, self.height)

    @property
    def elements_per_second(self) -> float:
        """The element arrival rate defining the real-time constraint."""
        return self.width * self.height * self.rate_hz

    @property
    def element_period(self) -> float:
        return 1.0 / self.elements_per_second

    def frame(self, index: int) -> np.ndarray:
        """The contents of frame ``index`` as an ``(h, w)`` array."""
        if callable(self._pattern):
            arr = np.asarray(self._pattern(index), dtype=np.float64)
        elif self._pattern is not None:
            arr = np.asarray(self._pattern, dtype=np.float64)
        else:
            base = np.arange(self.width * self.height, dtype=np.float64)
            arr = (base.reshape(self.height, self.width) + 100.0 * index)
        if arr.shape != (self.height, self.width):
            raise GraphError(
                f"input {self.name!r}: pattern shape {arr.shape} does not "
                f"match declared frame {(self.height, self.width)}"
            )
        return arr

    def emit(self) -> None:  # pragma: no cover - driven directly by runtimes
        """Placeholder body; the runtime generates source traffic itself."""

    def serialize_extra(self) -> dict:
        from ..errors import GraphError

        if callable(self._pattern):
            raise GraphError(
                f"input {self.name!r}: procedural frame patterns (callables)"
                " cannot be serialized; use a fixed array pattern"
            )
        if self._pattern is None:
            return {}
        return {"pattern": np.asarray(self._pattern, dtype=np.float64)}

    def apply_serialized_extra(self, extra) -> None:
        if "pattern" in extra:
            self._pattern = np.asarray(extra["pattern"], dtype=np.float64)

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        stream = StreamInfo(
            region=Region(self.frame_size, Inset(0, 0)),
            chunk=Size2D(1, 1),
            rate_hz=self.rate_hz,
            chunks_per_frame=self.width * self.height,
            token_rates=dict(default_tokens(self.height)),
        )
        return TransferResult(
            outputs={"out": stream},
            firings_per_second={"emit": self.elements_per_second},
        )


class ConstantSource(Kernel):
    """Emits a fixed 2-D array as a single chunk, ``rate_hz`` times a second.

    Models coefficient and bin-range sources (Figure 2's "5x5 Coeff" and
    "Hist Bins").  Because consumers declare those inputs *replicated*, the
    parallelize transform inserts a Replicate kernel — never a Split — after
    a constant source (Figure 4).
    """

    data_parallel = False

    def __init__(self, name: str, values: np.ndarray, rate_hz: float = 1.0) -> None:
        arr = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if arr.ndim != 2:
            raise GraphError(f"source {name!r}: values must be 2-D")
        self.values = arr
        self.rate_hz = float(rate_hz)
        super().__init__(name)

    def configure(self) -> None:
        h, w = self.values.shape
        self.add_output("out", w, h)
        self.add_method("emit", outputs=["out"], source=True,
                        cost=MethodCost(cycles=0))

    def emit(self) -> None:  # pragma: no cover - driven directly by runtimes
        """Placeholder body; the runtime generates source traffic itself."""

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        h, w = self.values.shape
        stream = StreamInfo(
            region=Region(Size2D(w, h), Inset(0, 0)),
            chunk=Size2D(w, h),
            rate_hz=self.rate_hz,
            chunks_per_frame=1,
        )
        return TransferResult(
            outputs={"out": stream},
            firings_per_second={"emit": self.rate_hz},
        )


class ApplicationOutput(Kernel):
    """A sink recording everything that reaches it.

    ``width``/``height`` declare the expected chunk extent (the histogram
    merge emits 32x1 chunks, plain pixel pipelines 1x1).  The simulator
    timestamps arrivals, which is how frame completion times — and hence
    real-time verdicts — are measured.
    """

    data_parallel = False

    def __init__(self, name: str, width: int = 1, height: int = 1) -> None:
        self.width = width
        self.height = height
        self.received: list[np.ndarray] = []
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", self.width, self.height, self.width, self.height)
        self.add_method("record", inputs=["in"], cost=MethodCost(cycles=0))

    def record(self) -> None:
        self.received.append(self.read_input("in").copy())

    def reset(self) -> None:
        super().reset()
        self.received = []

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs.get("in")
        firings = s.chunks_per_frame * s.rate_hz if s is not None else 0.0
        return TransferResult(outputs={}, firings_per_second={"record": firings})
