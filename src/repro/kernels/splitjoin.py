"""Split, join, and replicate kernels (Section IV, Figures 4 and 10).

These are the distribution/collection finite state machines the compiler
inserts around parallelized kernels:

* :class:`RoundRobinSplit` / :class:`RoundRobinJoin` — the simple-minded
  (but correct) data-parallel distribution of Section IV-A: chunk *i* goes
  to instance ``i mod n`` and results are collected in the same order.
* :class:`ColumnSplit` — the buffer-splitting FSM of Figure 10: elements
  route by column, with the window-overlap columns sent to *both*
  neighbouring parts so each split buffer can form its edge windows.
* :class:`CountedJoin` — collects a repeating pattern of chunk counts from
  its inputs; used to re-interleave the window streams of column-split
  buffers in scan order (so downstream kernels see the original order).
* :class:`ReplicateKernel` — broadcasts a stream; inserted in front of
  *replicated* inputs (coefficients, bin ranges) instead of a split
  (Figure 4's "Replicate" diamonds).

Control tokens are broadcast by splits and merged by joins: a token is
forwarded downstream once it has arrived on every join input, which is the
same rule the subtract kernel uses for its two data inputs (Section II-C).
All of these are regular kernels with declared costs, so the mapping and
simulation passes account for the resources they consume.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence


from ..errors import AnalysisError, GraphError
from ..geometry import Inset, Region, Size2D
from ..graph.kernel import Kernel, TransferResult
from ..graph.methods import MethodCost, MethodSpec
from ..streams import StreamInfo
from ..tokens import ControlToken, EndOfFrame

__all__ = [
    "RoundRobinSplit",
    "RoundRobinJoin",
    "ColumnSplit",
    "CountedJoin",
    "ReplicateKernel",
]

#: Cycles per routed chunk for the distribution FSMs.
ROUTE_CYCLES = 3


class RoundRobinSplit(Kernel):
    """Distribute chunks to ``n`` outputs in round-robin order."""

    data_parallel = False
    compiler_inserted = True
    forwards_all_line_tokens = True
    charges_element_io = False

    def __init__(self, name: str, n: int, chunk_w: int = 1, chunk_h: int = 1) -> None:
        if n < 2:
            raise GraphError(f"split {name!r}: need at least 2 ways, got {n}")
        self.n = n
        self.chunk_w = chunk_w
        self.chunk_h = chunk_h
        self._next = 0
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", self.chunk_w, self.chunk_h, self.chunk_w, self.chunk_h)
        outs = []
        for i in range(self.n):
            self.add_output(f"out_{i}", self.chunk_w, self.chunk_h)
            outs.append(f"out_{i}")
        self.add_method(
            "route", inputs=["in"], outputs=outs, cost=MethodCost(cycles=ROUTE_CYCLES)
        )

    def route(self) -> None:
        chunk = self.read_input("in")
        self.write_output(f"out_{self._next}", chunk)
        self._next = (self._next + 1) % self.n

    def on_token_forwarded(self, method: MethodSpec, token: ControlToken) -> None:
        if isinstance(token, EndOfFrame):
            self._next = 0

    def reset(self) -> None:
        super().reset()
        self._next = 0

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        per_branch = s.share / self.n
        chunks = max(1, -(-s.chunks_per_frame // self.n))
        branch = StreamInfo(
            region=s.region,
            chunk=s.chunk,
            rate_hz=s.rate_hz,
            chunks_per_frame=chunks,
            token_rates=dict(s.token_rates),
            windows_precut=s.windows_precut,
            share=per_branch,
        )
        return TransferResult(
            outputs={f"out_{i}": branch for i in range(self.n)},
            firings_per_second={"route": float(s.chunks_per_frame) * s.rate_hz},
        )


class CountedJoin(Kernel):
    """Collect a repeating pattern of chunk counts from ``n`` inputs.

    ``counts[i]`` chunks are taken from input *i* per pattern cycle, in
    input order.  ``counts = [1] * n`` is round-robin collection; a
    column-split buffer pair uses the per-row window counts of the two
    parts so the merged stream is in scan order.
    """

    data_parallel = False
    compiler_inserted = True
    forwards_all_line_tokens = True
    charges_element_io = False

    def __init__(
        self, name: str, counts: Sequence[int], chunk_w: int = 1, chunk_h: int = 1
    ) -> None:
        if len(counts) < 2 or any(c < 1 for c in counts):
            raise GraphError(f"join {name!r}: counts must be >= 1 per input")
        self.counts = tuple(int(c) for c in counts)
        self.n = len(self.counts)
        self.chunk_w = chunk_w
        self.chunk_h = chunk_h
        self._idx = 0       # which input we are collecting from
        self._taken = 0     # chunks taken from it this pattern cycle
        super().__init__(name)

    def configure(self) -> None:
        ins = []
        for i in range(self.n):
            self.add_input(f"in_{i}", self.chunk_w, self.chunk_h,
                           self.chunk_w, self.chunk_h)
            ins.append(f"in_{i}")
        self.add_output("out", self.chunk_w, self.chunk_h)
        self.add_method(
            "collect",
            inputs=ins,
            outputs=["out"],
            cost=MethodCost(cycles=ROUTE_CYCLES),
            selector="next_input",
        )

    def next_input(self) -> str:
        """The input the FSM expects next (pure; may be polled repeatedly)."""
        return f"in_{self._idx}"

    def collect(self) -> None:
        _, chunk = self.consumed_input()
        self.write_output("out", chunk)
        self._taken += 1
        if self._taken >= self.counts[self._idx]:
            self._taken = 0
            self._idx = (self._idx + 1) % self.n

    def on_token_forwarded(self, method: MethodSpec, token: ControlToken) -> None:
        if isinstance(token, EndOfFrame):
            self._idx = 0
            self._taken = 0

    def reset(self) -> None:
        super().reset()
        self._idx = 0
        self._taken = 0

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        streams = [inputs[f"in_{i}"] for i in range(self.n)]
        rates = {s.rate_hz for s in streams}
        if len(rates) != 1:
            raise AnalysisError(f"{self.name}: joined streams have mixed rates")
        region = streams[0].region
        same_region = all(s.region == region for s in streams[1:])
        for s in streams[1:]:
            if s.region != region:
                region = region.union_bound(s.region)
        if same_region:
            # Round-robin branches of one logical stream: shares add up.
            # Token-driven per-instance outputs (parallel histograms each
            # emitting a partial per frame) carry share 1 apiece and are
            # purely chunk-counted downstream, so the share caps at 1.
            total_share = min(
                sum((s.share for s in streams), Fraction(0)), Fraction(1)
            )
        else:
            # Disjoint column-split parts: the merge covers the union once.
            total_share = max(s.share for s in streams)
        chunks = sum(s.chunks_per_frame for s in streams)
        token_rates: dict[str, int] = {}
        for s in streams:
            for tok, rate in s.token_rates.items():
                token_rates[tok] = max(token_rates.get(tok, 0), rate)
        out = StreamInfo(
            region=region,
            chunk=streams[0].chunk,
            rate_hz=streams[0].rate_hz,
            chunks_per_frame=chunks,
            token_rates=token_rates,
            windows_precut=all(s.windows_precut for s in streams),
            share=total_share,
        )
        return TransferResult(
            outputs={"out": out},
            firings_per_second={"collect": float(chunks) * streams[0].rate_hz},
        )


class RoundRobinJoin(CountedJoin):
    """Collect one chunk from each input in turn (Section IV-A)."""

    def __init__(self, name: str, n: int, chunk_w: int = 1, chunk_h: int = 1) -> None:
        super().__init__(name, [1] * n, chunk_w, chunk_h)


class ColumnSplit(Kernel):
    """Column-wise splitter with overlap replication (Figure 10).

    ``ranges`` are inclusive input-column intervals, one per output;
    neighbouring intervals overlap by the window halo so each split buffer
    receives the shared columns it needs ("2 samples for each line are sent
    to both buffers" in the Figure 10 FSM).  Position is tracked by
    counting; end-of-frame rewinds it.
    """

    data_parallel = False
    compiler_inserted = True
    forwards_all_line_tokens = True
    charges_element_io = False

    def __init__(
        self,
        name: str,
        *,
        region_w: int,
        region_h: int,
        ranges: Sequence[tuple[int, int]],
    ) -> None:
        if len(ranges) < 2:
            raise GraphError(f"column split {name!r}: need at least 2 ranges")
        for lo, hi in ranges:
            if not (0 <= lo <= hi < region_w):
                raise GraphError(
                    f"column split {name!r}: range ({lo},{hi}) outside region "
                    f"width {region_w}"
                )
        if ranges[0][0] != 0 or ranges[-1][1] != region_w - 1:
            raise GraphError(
                f"column split {name!r}: ranges must cover the full region"
            )
        for (_, hi_a), (lo_b, _) in zip(ranges, ranges[1:]):
            if lo_b > hi_a + 1:
                raise GraphError(
                    f"column split {name!r}: gap between ranges at column {hi_a}"
                )
        self.region_w = region_w
        self.region_h = region_h
        self.ranges = tuple((int(lo), int(hi)) for lo, hi in ranges)
        self.n = len(self.ranges)
        self._x = 0
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", 1, 1, 1, 1)
        outs = []
        for i in range(self.n):
            self.add_output(f"out_{i}", 1, 1)
            outs.append(f"out_{i}")
        self.add_method(
            "route", inputs=["in"], outputs=outs,
            cost=MethodCost(cycles=ROUTE_CYCLES),
        )

    def route(self) -> None:
        chunk = self.read_input("in")
        x = self._x
        for i, (lo, hi) in enumerate(self.ranges):
            if lo <= x <= hi:
                self.write_output(f"out_{i}", chunk)
        self._x = (x + 1) % self.region_w

    def on_token_forwarded(self, method: MethodSpec, token: ControlToken) -> None:
        if isinstance(token, EndOfFrame):
            self._x = 0

    def reset(self) -> None:
        super().reset()
        self._x = 0

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        if s.extent.w != self.region_w or s.extent.h != self.region_h:
            raise AnalysisError(
                f"{self.name}: split built for {self.region_w}x{self.region_h} "
                f"but stream region is {s.extent}"
            )
        if s.chunk != Size2D(1, 1):
            raise AnalysisError(f"{self.name}: column splits expect 1x1 chunks")
        outputs: dict[str, StreamInfo] = {}
        for i, (lo, hi) in enumerate(self.ranges):
            width = hi - lo + 1
            outputs[f"out_{i}"] = StreamInfo(
                region=Region(
                    Size2D(width, self.region_h),
                    Inset(s.inset.x + lo, s.inset.y),
                ),
                chunk=Size2D(1, 1),
                rate_hz=s.rate_hz,
                chunks_per_frame=width * self.region_h,
                token_rates=dict(s.token_rates),
            )
        return TransferResult(
            outputs=outputs,
            firings_per_second={"route": float(s.chunks_per_frame) * s.rate_hz},
        )


class ReplicateKernel(Kernel):
    """Broadcast every chunk (and token) to all outputs.

    Inserted in front of replicated inputs when their consumer is
    parallelized, so each instance receives identical coefficient or bin
    data (dashed edges in Figure 4).
    """

    data_parallel = False
    compiler_inserted = True
    forwards_all_line_tokens = True
    charges_element_io = False

    def __init__(self, name: str, n: int, chunk_w: int, chunk_h: int) -> None:
        if n < 2:
            raise GraphError(f"replicate {name!r}: need at least 2 ways")
        self.n = n
        self.chunk_w = chunk_w
        self.chunk_h = chunk_h
        super().__init__(name)

    def configure(self) -> None:
        self.add_input("in", self.chunk_w, self.chunk_h, self.chunk_w, self.chunk_h)
        outs = []
        for i in range(self.n):
            self.add_output(f"out_{i}", self.chunk_w, self.chunk_h)
            outs.append(f"out_{i}")
        self.add_method(
            "broadcast", inputs=["in"], outputs=outs,
            cost=MethodCost(cycles=ROUTE_CYCLES),
        )

    def broadcast(self) -> None:
        chunk = self.read_input("in")
        for i in range(self.n):
            self.write_output(f"out_{i}", chunk)

    def transfer(self, inputs: Mapping[str, StreamInfo]) -> TransferResult:
        s = inputs["in"]
        return TransferResult(
            outputs={f"out_{i}": s for i in range(self.n)},
            firings_per_second={
                "broadcast": float(s.chunks_per_frame) * s.rate_hz
            },
        )
