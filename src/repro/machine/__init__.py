"""Target machine model: processing elements, chip grid, placement."""

from .chip import ManyCoreChip, Tile
from .energy import EnergyReport, EnergySpec, estimate_energy
from .placement import Placement, anneal_placement, traffic_matrix
from .processor import DEFAULT_PROCESSOR, ProcessorSpec

__all__ = [
    "ManyCoreChip",
    "EnergyReport",
    "EnergySpec",
    "estimate_energy",
    "Tile",
    "Placement",
    "anneal_placement",
    "traffic_matrix",
    "DEFAULT_PROCESSOR",
    "ProcessorSpec",
]
