"""Target machine model: processing elements, chip grid, placement, NoC."""

from .chip import ManyCoreChip, Tile
from .energy import EnergyReport, EnergySpec, estimate_energy
from .noc import (
    NocModel,
    NocStats,
    fit_chip,
    link_name,
    row_major_placement,
    xy_route,
)
from .placement import Placement, anneal_placement, traffic_matrix
from .processor import DEFAULT_PROCESSOR, ProcessorSpec

__all__ = [
    "ManyCoreChip",
    "EnergyReport",
    "EnergySpec",
    "estimate_energy",
    "Tile",
    "NocModel",
    "NocStats",
    "fit_chip",
    "link_name",
    "row_major_placement",
    "xy_route",
    "Placement",
    "anneal_placement",
    "traffic_matrix",
    "DEFAULT_PROCESSOR",
    "ProcessorSpec",
]
