"""Chip model: a grid of identical processing elements.

The parallelization analysis needs only per-element capacities; the chip
grid adds a 2-D topology used by the (extension) simulated-annealing
placement pass, whose energy model charges traffic times Manhattan distance
between tiles (Section IV-D discusses the placement/parallelization
interaction; the paper implemented annealing but did not integrate it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import PlacementError
from .processor import DEFAULT_PROCESSOR, ProcessorSpec

__all__ = ["ManyCoreChip", "Tile"]


@dataclass(frozen=True, slots=True)
class Tile:
    """A grid position holding one processing element."""

    x: int
    y: int

    def distance(self, other: "Tile") -> int:
        """Manhattan hop count between two tiles (mesh NoC)."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True, slots=True)
class ManyCoreChip:
    """``cols x rows`` identical processing elements on a 2-D mesh."""

    cols: int = 8
    rows: int = 8
    processor: ProcessorSpec = DEFAULT_PROCESSOR

    def __post_init__(self) -> None:
        if self.cols <= 0 or self.rows <= 0:
            raise PlacementError("chip dimensions must be positive")

    @property
    def tile_count(self) -> int:
        return self.cols * self.rows

    def tiles(self) -> Iterator[Tile]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield Tile(x, y)

    def tile(self, index: int) -> Tile:
        if not 0 <= index < self.tile_count:
            raise PlacementError(
                f"tile index {index} outside chip of {self.tile_count}"
            )
        return Tile(index % self.cols, index // self.cols)
