"""Energy model for mapped and placed applications.

Section IV-D motivates placement with energy ("increasing the number of
kernels beyond what is required ... may allow a more optimal placement,
resulting in a lower overall energy consumption"), and Section V's
multiplexing is an efficiency argument.  This model quantifies both with
four coefficients:

* dynamic compute energy per cycle actually executed;
* dynamic access energy per element moved across a port;
* network energy per element-hop, charged on inter-processor traffic
  weighted by the placement's Manhattan distances;
* leakage power per powered processing element.

The absolute numbers are parametric (defaults are loosely 45 nm-class
figures); the comparisons — greedy vs 1:1 mapping, annealed vs row-major
placement — are what the benchmarks reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ResourceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.dataflow import DataflowResult
    from ..sim.simulator import SimulationResult
    from ..transform.multiplex import Mapping as KernelMapping
    from .placement import Placement
    from .processor import ProcessorSpec

__all__ = ["EnergySpec", "EnergyReport", "estimate_energy"]


@dataclass(frozen=True, slots=True)
class EnergySpec:
    """Energy coefficients for one processing element and its network."""

    pj_per_cycle: float = 2.0
    pj_per_element_access: float = 1.0
    pj_per_element_hop: float = 0.5
    leakage_mw_per_processor: float = 0.25

    def __post_init__(self) -> None:
        if min(self.pj_per_cycle, self.pj_per_element_access,
               self.pj_per_element_hop, self.leakage_mw_per_processor) < 0:
            raise ResourceError("energy coefficients must be non-negative")


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy breakdown for one simulated run, in joules."""

    duration_s: float
    compute_j: float
    access_j: float
    network_j: float
    leakage_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.access_j + self.network_j + self.leakage_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.duration_s if self.duration_s > 0 else 0.0

    def describe(self) -> str:
        parts = [
            f"energy over {self.duration_s * 1e3:.3f} ms: "
            f"{self.total_j * 1e6:.3f} uJ "
            f"({self.average_power_w * 1e3:.3f} mW avg)"
        ]
        for label, value in (
            ("compute", self.compute_j),
            ("access", self.access_j),
            ("network", self.network_j),
            ("leakage", self.leakage_j),
        ):
            share = value / self.total_j if self.total_j > 0 else 0.0
            parts.append(f"  {label}: {value * 1e6:.3f} uJ ({share:.0%})")
        return "\n".join(parts)


def estimate_energy(
    result: "SimulationResult",
    mapping: "KernelMapping",
    dataflow: "DataflowResult",
    *,
    processor: "ProcessorSpec",
    spec: EnergySpec = EnergySpec(),
    placement: "Placement | None" = None,
) -> EnergyReport:
    """Energy of one simulated run under ``spec``.

    Compute and access energy come from the simulation's measured busy
    times (run vs read+write seconds, converted back to cycles and
    elements through the processor's clock and per-element access costs).
    Network energy charges the dataflow traffic between distinct
    processors over the run's duration; without a placement every
    inter-processor hop counts as one (bus model), with one it is the
    tiles' Manhattan distance.
    """
    from .placement import traffic_matrix

    duration = result.utilization.duration_s
    clock_hz = processor.clock_hz
    compute_cycles = sum(
        p.run_s for p in result.utilization.processors.values()
    ) * clock_hz
    read_elems = sum(
        p.read_s for p in result.utilization.processors.values()
    ) * clock_hz / max(processor.read_cycles_per_element, 1e-12)
    write_elems = sum(
        p.write_s for p in result.utilization.processors.values()
    ) * clock_hz / max(processor.write_cycles_per_element, 1e-12)
    compute_j = compute_cycles * spec.pj_per_cycle * 1e-12
    access_j = (read_elems + write_elems) * spec.pj_per_element_access * 1e-12

    traffic = traffic_matrix(mapping, dataflow)
    network_elements_hops = 0.0
    for (a, b), rate in traffic.items():
        if placement is not None:
            hops = placement.tiles[a].distance(placement.tiles[b])
        else:
            hops = 1
        network_elements_hops += rate * duration * hops
    network_j = network_elements_hops * spec.pj_per_element_hop * 1e-12

    leakage_j = (
        result.utilization.processor_count
        * spec.leakage_mw_per_processor * 1e-3
        * duration
    )
    return EnergyReport(
        duration_s=duration,
        compute_j=compute_j,
        access_j=access_j,
        network_j=network_j,
        leakage_j=leakage_j,
    )
