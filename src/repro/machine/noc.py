"""Network-on-chip timing model: XY routing, link contention, stats.

The paper's simulator deliberately ignores placement and communication
delay (Section IV-D): placement only determines communication *energy*.
This module is the extension the paper left on the table — it makes
placement matter for *timing*.  When a :class:`NocModel` is attached to
:class:`~repro.sim.SimulationOptions`, every inter-element data transfer
is routed over the 2-D mesh of :mod:`repro.machine.chip` using the active
:class:`~repro.machine.placement.Placement`:

* routes are dimension-ordered (**XY**): east/west along the row first,
  then north/south along the column — deadlock-free and deterministic;
* a transfer costs ``hops * per_hop_cycles`` of header latency plus one
  payload serialization (``elements * serialization_cycles_per_element``),
  the classic wormhole approximation;
* each directed link is a serial resource: a transfer occupies every link
  on its route for its serialization time, and a transfer reaching a busy
  link queues in simulated time — deterministic per-link contention;
* control tokens ride a dedicated control plane for free, but never
  overtake data already in flight on their channel (FIFO order per
  channel is part of the runtime's determinism contract);
* transfers with an off-chip endpoint (application inputs/outputs,
  constant sources) or between kernels multiplexed onto one element stay
  local — exactly the traffic that
  :func:`~repro.machine.placement.traffic_matrix` excludes.

Links are encoded as small integers (``4 * tile_index + direction``) so
the simulator's contention table is a flat dict of floats; ``link_name``
renders them as ``(x,y)->(x',y')`` for reports and telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import PlacementError
from .chip import ManyCoreChip, Tile
from .processor import ProcessorSpec

if TYPE_CHECKING:  # pragma: no cover - avoids a machine<->transform cycle
    from ..transform.multiplex import Mapping as KernelMapping
    from .placement import Placement

__all__ = [
    "NocModel",
    "NocStats",
    "fit_chip",
    "link_name",
    "route_path",
    "row_major_placement",
    "xy_route",
]

#: Directed-link direction codes (east, west, south, north in grid terms;
#: "south" is increasing y because tiles index top-down like the mesh).
_EAST, _WEST, _SOUTH, _NORTH = 0, 1, 2, 3

_DIR_STEP = {
    _EAST: (1, 0),
    _WEST: (-1, 0),
    _SOUTH: (0, 1),
    _NORTH: (0, -1),
}


def _link(cols: int, x: int, y: int, direction: int) -> int:
    return 4 * (y * cols + x) + direction


def xy_route(cols: int, src: Tile, dst: Tile) -> tuple[int, ...]:
    """Directed link ids from ``src`` to ``dst``, X dimension first.

    The route length always equals the Manhattan distance between the
    tiles; two transfers between the same tile pair share every link,
    which is what makes per-channel FIFO order fall out of the link
    contention model.
    """
    links = []
    x, y = src.x, src.y
    step = _EAST if dst.x > x else _WEST
    while x != dst.x:
        links.append(_link(cols, x, y, step))
        x += 1 if step == _EAST else -1
    step = _SOUTH if dst.y > y else _NORTH
    while y != dst.y:
        links.append(_link(cols, x, y, step))
        y += 1 if step == _SOUTH else -1
    return tuple(links)


def link_name(link: int, cols: int) -> str:
    """Human-readable ``(x,y)->(x',y')`` form of a directed link id."""
    tile, direction = divmod(link, 4)
    x, y = tile % cols, tile // cols
    dx, dy = _DIR_STEP[direction]
    return f"({x},{y})->({x + dx},{y + dy})"


def route_path(links: tuple[int, ...], cols: int) -> str:
    """Tile path ``(x,y)->...->(x',y')`` traversed by a link sequence."""
    if not links:
        return ""
    tile, _ = divmod(links[0], 4)
    parts = [f"({tile % cols},{tile // cols})"]
    for link in links:
        tile, direction = divmod(link, 4)
        x, y = tile % cols, tile // cols
        dx, dy = _DIR_STEP[direction]
        parts.append(f"({x + dx},{y + dy})")
    return "->".join(parts)


def fit_chip(
    processors: int, processor: ProcessorSpec, *, mesh: int | None = None
) -> ManyCoreChip:
    """The smallest square mesh holding ``processors`` elements.

    ``mesh`` forces a side length instead (the CLI's ``--mesh``); it is
    an error when the forced mesh cannot hold the processors.
    """
    if mesh is None:
        side = 1
        while side * side < processors:
            side += 1
        mesh = max(side, 1)
    chip = ManyCoreChip(cols=mesh, rows=mesh, processor=processor)
    if processors > chip.tile_count:
        raise PlacementError(
            f"{processors} processors do not fit a {mesh}x{mesh} mesh"
        )
    return chip


def row_major_placement(
    mapping: "KernelMapping", chip: ManyCoreChip
) -> "Placement":
    """The naive placement: processors fill the mesh in row-major order.

    This is exactly the annealer's starting configuration, exposed so the
    simulator can price the "no placement effort" baseline; its energy
    fields are left at zero because no traffic analysis ran.
    """
    from .placement import Placement

    procs = sorted(
        set(mapping.assignment.values()) | set(getattr(mapping, "spares", ()))
    )
    if len(procs) > chip.tile_count:
        raise PlacementError(
            f"{len(procs)} processors do not fit a chip of "
            f"{chip.tile_count} tiles"
        )
    all_tiles = list(chip.tiles())
    tiles = {p: all_tiles[i] for i, p in enumerate(procs)}
    return Placement(
        chip=chip, tiles=tiles, energy=0.0, initial_energy=0.0
    )


@dataclass(frozen=True, slots=True)
class NocModel:
    """An opt-in mesh interconnect: placement plus link timing.

    Attach one to ``SimulationOptions(noc=...)`` and every inter-element
    data transfer pays routed mesh latency with per-link contention; off
    (the default ``None``) the simulator's hot path is byte-identical to
    the paper's no-communication model.
    """

    #: Processor-to-tile assignment (and the chip it lives on).
    placement: "Placement"
    #: Router/link traversal cycles charged per hop (header latency).
    per_hop_cycles: float = 4.0
    #: Cycles to stream one payload element through a link; the payload
    #: occupies every link on its route for this serialization time.
    serialization_cycles_per_element: float = 1.0

    def __post_init__(self) -> None:
        if self.per_hop_cycles < 0:
            raise PlacementError(
                "NocModel.per_hop_cycles must be non-negative, "
                f"got {self.per_hop_cycles!r}"
            )
        if self.serialization_cycles_per_element < 0:
            raise PlacementError(
                "NocModel.serialization_cycles_per_element must be "
                "non-negative, "
                f"got {self.serialization_cycles_per_element!r}"
            )

    @property
    def chip(self) -> ManyCoreChip:
        return self.placement.chip

    def route(self, src_proc: int, dst_proc: int) -> tuple[int, ...]:
        """Link ids between two placed processors (XY order)."""
        tiles = self.placement.tiles
        try:
            a, b = tiles[src_proc], tiles[dst_proc]
        except KeyError as exc:
            raise PlacementError(
                f"processor {exc.args[0]} has no tile in the active "
                f"placement; it covers {sorted(tiles)}"
            ) from None
        return xy_route(self.chip.cols, a, b)

    def describe(self) -> str:
        return (
            f"NoC on {self.chip.cols}x{self.chip.rows} mesh: "
            f"{self.per_hop_cycles:g} cycles/hop, "
            f"{self.serialization_cycles_per_element:g} cycles/element "
            "serialization"
        )


@dataclass(slots=True)
class NocStats:
    """What the interconnect observed during one simulation.

    Only materialized when a :class:`NocModel` was active; the
    ``SimulationResult.as_dict()`` conformance surface gains a ``noc``
    section exactly then, so NoC-off fixtures keep their recorded key
    set.
    """

    #: Mesh columns, for rendering link names.
    cols: int = 0
    #: Data transfers routed over mesh links.
    transfers_routed: int = 0
    #: Data transfers that stayed in local memory (same element or an
    #: off-chip endpoint).
    transfers_local: int = 0
    #: Control tokens carried by the free control plane.
    control_transfers: int = 0
    #: Sum of route lengths over routed transfers.
    total_hops: int = 0
    #: Simulated seconds transfers spent queued for busy links.
    link_wait_s: float = 0.0
    #: Directed link id -> accumulated serialization occupancy, seconds.
    link_busy_s: dict[int, float] = field(default_factory=dict)

    def worst_link(self) -> tuple[int, float] | None:
        """(link id, busy seconds) of the most occupied link, or None."""
        if not self.link_busy_s:
            return None
        link = min(
            self.link_busy_s, key=lambda k: (-self.link_busy_s[k], k)
        )
        return link, self.link_busy_s[link]

    def as_dict(self, makespan_s: float) -> dict:
        """JSON-safe summary: totals plus link-utilization extremes."""
        worst = self.worst_link()
        links_used = sum(1 for v in self.link_busy_s.values() if v > 0.0)
        busy_total = sum(self.link_busy_s.values())
        d: dict = {
            "transfers_routed": self.transfers_routed,
            "transfers_local": self.transfers_local,
            "control_transfers": self.control_transfers,
            "total_hops": self.total_hops,
            "mean_hops": (
                self.total_hops / self.transfers_routed
                if self.transfers_routed else 0.0
            ),
            "link_wait_s": self.link_wait_s,
            "links_used": links_used,
            "mean_link_utilization": (
                busy_total / (links_used * makespan_s)
                if links_used and makespan_s > 0 else 0.0
            ),
        }
        if worst is not None:
            link, busy = worst
            d["worst_link"] = {
                "link": link_name(link, self.cols),
                "busy_s": busy,
                "utilization": (
                    busy / makespan_s if makespan_s > 0 else 0.0
                ),
            }
        return d

    def describe(self) -> str:
        lines = [
            f"noc: {self.transfers_routed} routed / "
            f"{self.transfers_local} local data transfers, "
            f"{self.control_transfers} control tokens, "
            f"{self.total_hops} total hops, "
            f"{self.link_wait_s * 1e6:.1f} us link wait"
        ]
        worst = self.worst_link()
        if worst is not None:
            link, busy = worst
            lines.append(
                f"  worst link {link_name(link, self.cols)}: "
                f"{busy * 1e6:.1f} us busy"
            )
        return "\n".join(lines)
