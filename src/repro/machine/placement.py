"""Simulated-annealing placement (Section IV-D).

The paper notes that "a simulated annealing approach to placement has been
implemented, but not integrated within the simulator" — communication delay
does not affect throughput for these applications, but placement determines
communication *energy*.  This module provides that pass: processors are
assigned to tiles of the 2-D mesh so as to minimize total traffic-weighted
Manhattan distance, with a deterministic annealing schedule.

Two objectives are supported:

* ``objective="energy"`` (the default, matching the paper): minimize total
  traffic-weighted Manhattan distance.  The result feeds no timing back
  into the simulator; benchmarks report the energy improvement over the
  naive row-major placement.
* ``objective="makespan"``: minimize a cheap incremental *congestion
  estimate* of the :class:`~repro.machine.noc.NocModel` mesh — the peak
  per-link traffic load under XY routing (the serialization bottleneck
  that bounds the simulated makespan) plus a small total-traffic tiebreak.
  Per-link loads update incrementally per move (only pairs touching the
  moved processors re-route), so a full anneal costs seconds, not the
  hours a simulate-per-candidate loop would.  ``tests/test_noc.py``
  validates the estimate against full NoC simulation on the Figure 13
  applications.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Literal, Mapping

from typing import TYPE_CHECKING

from ..analysis.dataflow import DataflowResult
from ..errors import PlacementError
from .chip import ManyCoreChip, Tile
from .noc import xy_route

if TYPE_CHECKING:  # pragma: no cover - avoids a machine<->transform cycle
    from ..transform.multiplex import Mapping as KernelMapping

__all__ = ["Placement", "traffic_matrix", "anneal_placement"]

#: Annealing objectives; see the module docstring.
PlacementObjective = Literal["energy", "makespan"]


@dataclass(frozen=True, slots=True)
class Placement:
    """Processor-to-tile assignment with its objective cost.

    ``energy``/``initial_energy`` hold the annealed objective's cost —
    traffic-weighted distance for ``objective="energy"``, the congestion
    estimate for ``objective="makespan"`` — so :attr:`improvement` reads
    the same either way.
    """

    chip: ManyCoreChip
    tiles: Mapping[int, Tile]
    energy: float
    initial_energy: float
    objective: str = "energy"

    @property
    def improvement(self) -> float:
        """Cost reduction factor vs the naive row-major placement."""
        if self.energy <= 0:
            return 1.0 if self.initial_energy <= 0 else math.inf
        return self.initial_energy / self.energy

    def describe(self) -> str:
        lines = [
            f"placement on {self.chip.cols}x{self.chip.rows} mesh: "
            f"{self.objective} {self.energy:,.0f} "
            f"(from {self.initial_energy:,.0f}, "
            f"{self.improvement:.2f}x better)"
        ]
        for proc, tile in sorted(self.tiles.items()):
            lines.append(f"  PE{proc} -> ({tile.x},{tile.y})")
        return "\n".join(lines)


def traffic_matrix(
    mapping: "KernelMapping", dataflow: DataflowResult
) -> dict[tuple[int, int], float]:
    """Elements/second exchanged between processor pairs.

    Only inter-processor channels count; kernels multiplexed onto one
    element communicate through local memory for free.  Off-chip endpoints
    (application inputs/outputs, constant sources) are excluded — their
    traffic enters at the chip boundary regardless of placement.
    """
    traffic: dict[tuple[int, int], float] = {}
    app = mapping.app
    for edge in app.edges:
        src = mapping.processor_of(edge.src)
        dst = mapping.processor_of(edge.dst)
        if src is None or dst is None or src == dst:
            continue
        stream = dataflow.stream_on(edge)
        key = (min(src, dst), max(src, dst))
        traffic[key] = traffic.get(key, 0.0) + stream.elements_per_second
    return traffic


def _energy(
    tiles: dict[int, Tile], traffic: Mapping[tuple[int, int], float]
) -> float:
    return sum(
        rate * tiles[a].distance(tiles[b]) for (a, b), rate in traffic.items()
    )


class _Congestion:
    """Incrementally maintained per-link loads under XY routing.

    The cost is ``peak link load + total hop-traffic / link count``: the
    peak is the serialization bottleneck a mesh NoC exposes, the total
    (which equals the energy objective) breaks plateaus where several
    placements share a bottleneck.  Loads change only for traffic pairs
    touching a moved processor, so one move costs O(pairs touching it),
    not O(all pairs).
    """

    __slots__ = ("cols", "loads", "total", "link_count", "touching")

    def __init__(
        self,
        tiles: dict[int, Tile],
        traffic: Mapping[tuple[int, int], float],
        chip: ManyCoreChip,
    ) -> None:
        self.cols = chip.cols
        self.link_count = 4 * chip.tile_count
        self.loads: dict[int, float] = {}
        self.total = 0.0
        self.touching: dict[int, list[tuple[int, int, float]]] = {}
        for (a, b), rate in traffic.items():
            self.touching.setdefault(a, []).append((a, b, rate))
            self.touching.setdefault(b, []).append((a, b, rate))
            self._shift(tiles, ((a, b, rate),), +1.0)

    def _shift(
        self,
        tiles: dict[int, Tile],
        pairs,
        sign: float,
    ) -> None:
        loads = self.loads
        cols = self.cols
        for a, b, rate in pairs:
            delta = rate * sign
            for link in xy_route(cols, tiles[a], tiles[b]):
                new = loads.get(link, 0.0) + delta
                if -1e-9 < new < 1e-9:
                    loads.pop(link, None)
                else:
                    loads[link] = new
                self.total += delta

    def pairs_of(self, moved: tuple[int, ...]):
        """Traffic pairs whose route depends on any moved processor."""
        if len(moved) == 1:
            return self.touching.get(moved[0], ())
        seen: list[tuple[int, int, float]] = []
        for proc in moved:
            for pair in self.touching.get(proc, ()):
                if pair not in seen:
                    seen.append(pair)
        return seen

    def cost(self) -> float:
        peak = max(self.loads.values()) if self.loads else 0.0
        return peak + self.total / self.link_count


def anneal_placement(
    mapping: "KernelMapping",
    dataflow: DataflowResult,
    chip: ManyCoreChip,
    *,
    seed: int = 0,
    iterations: int = 20_000,
    start_temperature: float | None = None,
    objective: PlacementObjective = "energy",
) -> Placement:
    """Place the mapping's processors onto the chip mesh by annealing.

    Classic Metropolis annealing over pairwise tile swaps with a geometric
    cooling schedule; the RNG is seeded so results are reproducible — the
    same ``(mapping, chip, seed)`` yields an identical :class:`Placement`
    across processes and platforms (``random.Random`` is specified to be
    platform-independent, and the test suite holds this with a
    cross-process regression).
    """
    if objective not in ("energy", "makespan"):
        raise PlacementError(
            f"unknown placement objective {objective!r}; "
            "expected 'energy' or 'makespan'"
        )
    # Spares occupy tiles too — they must physically exist to be
    # migration targets — but exchange no traffic until occupied.
    procs = sorted(
        set(mapping.assignment.values()) | set(getattr(mapping, "spares", ()))
    )
    if len(procs) > chip.tile_count:
        raise PlacementError(
            f"{len(procs)} processors do not fit a chip of "
            f"{chip.tile_count} tiles"
        )
    traffic = traffic_matrix(mapping, dataflow)
    all_tiles = list(chip.tiles())
    tiles: dict[int, Tile] = {p: all_tiles[i] for i, p in enumerate(procs)}
    free_tiles = all_tiles[len(procs):]

    congestion = (
        _Congestion(tiles, traffic, chip) if objective == "makespan" else None
    )
    if congestion is not None:
        initial_energy = congestion.cost()
    else:
        initial_energy = _energy(tiles, traffic)

    if not traffic or len(procs) < 2:
        return Placement(
            chip=chip, tiles=dict(tiles),
            energy=initial_energy, initial_energy=initial_energy,
            objective=objective,
        )

    rng = random.Random(seed)
    energy = initial_energy
    temperature = (
        start_temperature
        if start_temperature is not None
        else max(energy / max(len(procs), 1), 1e-9)
    )
    cooling = 0.999
    slots: list[Tile | None] = list(free_tiles)

    best = dict(tiles)
    best_energy = energy
    for _ in range(iterations):
        a = rng.choice(procs)
        moved: tuple[int, ...]
        # Swap with another processor's tile, or move to a free tile.
        if slots and rng.random() < 0.3:
            moved = (a,)
            pairs = congestion.pairs_of(moved) if congestion else ()
            if congestion is not None:
                congestion._shift(tiles, pairs, -1.0)
            idx = rng.randrange(len(slots))
            old = tiles[a]
            tiles[a] = slots[idx]  # type: ignore[assignment]
            slots[idx] = old
            undo = ("free", a, old, idx)
        else:
            b = rng.choice(procs)
            if a == b:
                continue
            moved = (a, b)
            pairs = congestion.pairs_of(moved) if congestion else ()
            if congestion is not None:
                congestion._shift(tiles, pairs, -1.0)
            tiles[a], tiles[b] = tiles[b], tiles[a]
            undo = ("swap", a, b, None)
        if congestion is not None:
            congestion._shift(tiles, pairs, +1.0)
            new_energy = congestion.cost()
        else:
            new_energy = _energy(tiles, traffic)
        accept = new_energy <= energy or rng.random() < math.exp(
            (energy - new_energy) / max(temperature, 1e-12)
        )
        if accept:
            energy = new_energy
            if energy < best_energy:
                best_energy = energy
                best = dict(tiles)
        else:
            if congestion is not None:
                congestion._shift(tiles, pairs, -1.0)
            kind, a, other, idx = undo
            if kind == "swap":
                tiles[a], tiles[other] = tiles[other], tiles[a]
            else:
                slots[idx], tiles[a] = tiles[a], other  # type: ignore[index]
            if congestion is not None:
                congestion._shift(tiles, pairs, +1.0)
        temperature *= cooling

    return Placement(
        chip=chip,
        tiles=best,
        energy=best_energy,
        initial_energy=initial_energy,
        objective=objective,
    )
