"""Simulated-annealing placement (Section IV-D).

The paper notes that "a simulated annealing approach to placement has been
implemented, but not integrated within the simulator" — communication delay
does not affect throughput for these applications, but placement determines
communication *energy*.  This module provides that pass: processors are
assigned to tiles of the 2-D mesh so as to minimize total traffic-weighted
Manhattan distance, with a deterministic annealing schedule.

The result feeds no timing back into the simulator (matching the paper);
benchmarks report the energy improvement over the naive row-major
placement.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Mapping

from typing import TYPE_CHECKING

from ..analysis.dataflow import DataflowResult
from ..errors import PlacementError
from .chip import ManyCoreChip, Tile

if TYPE_CHECKING:  # pragma: no cover - avoids a machine<->transform cycle
    from ..transform.multiplex import Mapping as KernelMapping

__all__ = ["Placement", "traffic_matrix", "anneal_placement"]


@dataclass(frozen=True, slots=True)
class Placement:
    """Processor-to-tile assignment with its communication energy."""

    chip: ManyCoreChip
    tiles: Mapping[int, Tile]
    energy: float
    initial_energy: float

    @property
    def improvement(self) -> float:
        """Energy reduction factor vs the naive row-major placement."""
        if self.energy <= 0:
            return 1.0 if self.initial_energy <= 0 else math.inf
        return self.initial_energy / self.energy

    def describe(self) -> str:
        lines = [
            f"placement on {self.chip.cols}x{self.chip.rows} mesh: energy "
            f"{self.energy:,.0f} (from {self.initial_energy:,.0f}, "
            f"{self.improvement:.2f}x better)"
        ]
        for proc, tile in sorted(self.tiles.items()):
            lines.append(f"  PE{proc} -> ({tile.x},{tile.y})")
        return "\n".join(lines)


def traffic_matrix(
    mapping: "KernelMapping", dataflow: DataflowResult
) -> dict[tuple[int, int], float]:
    """Elements/second exchanged between processor pairs.

    Only inter-processor channels count; kernels multiplexed onto one
    element communicate through local memory for free.  Off-chip endpoints
    (application inputs/outputs, constant sources) are excluded — their
    traffic enters at the chip boundary regardless of placement.
    """
    traffic: dict[tuple[int, int], float] = {}
    app = mapping.app
    for edge in app.edges:
        src = mapping.processor_of(edge.src)
        dst = mapping.processor_of(edge.dst)
        if src is None or dst is None or src == dst:
            continue
        stream = dataflow.stream_on(edge)
        key = (min(src, dst), max(src, dst))
        traffic[key] = traffic.get(key, 0.0) + stream.elements_per_second
    return traffic


def _energy(
    tiles: dict[int, Tile], traffic: Mapping[tuple[int, int], float]
) -> float:
    return sum(
        rate * tiles[a].distance(tiles[b]) for (a, b), rate in traffic.items()
    )


def anneal_placement(
    mapping: "KernelMapping",
    dataflow: DataflowResult,
    chip: ManyCoreChip,
    *,
    seed: int = 0,
    iterations: int = 20_000,
    start_temperature: float | None = None,
) -> Placement:
    """Place the mapping's processors onto the chip mesh by annealing.

    Classic Metropolis annealing over pairwise tile swaps with a geometric
    cooling schedule; the RNG is seeded so results are reproducible.
    """
    # Spares occupy tiles too — they must physically exist to be
    # migration targets — but exchange no traffic until occupied.
    procs = sorted(
        set(mapping.assignment.values()) | set(getattr(mapping, "spares", ()))
    )
    if len(procs) > chip.tile_count:
        raise PlacementError(
            f"{len(procs)} processors do not fit a chip of "
            f"{chip.tile_count} tiles"
        )
    traffic = traffic_matrix(mapping, dataflow)
    all_tiles = list(chip.tiles())
    tiles: dict[int, Tile] = {p: all_tiles[i] for i, p in enumerate(procs)}
    free_tiles = all_tiles[len(procs):]
    initial_energy = _energy(tiles, traffic)

    if not traffic or len(procs) < 2:
        return Placement(
            chip=chip, tiles=dict(tiles),
            energy=initial_energy, initial_energy=initial_energy,
        )

    rng = random.Random(seed)
    energy = initial_energy
    temperature = (
        start_temperature
        if start_temperature is not None
        else max(energy / max(len(procs), 1), 1e-9)
    )
    cooling = 0.999
    slots: list[Tile | None] = list(free_tiles)

    best = dict(tiles)
    best_energy = energy
    for _ in range(iterations):
        a = rng.choice(procs)
        # Swap with another processor's tile, or move to a free tile.
        if slots and rng.random() < 0.3:
            idx = rng.randrange(len(slots))
            old = tiles[a]
            tiles[a] = slots[idx]  # type: ignore[assignment]
            slots[idx] = old
            undo = ("free", a, old, idx)
        else:
            b = rng.choice(procs)
            if a == b:
                continue
            tiles[a], tiles[b] = tiles[b], tiles[a]
            undo = ("swap", a, b, None)
        new_energy = _energy(tiles, traffic)
        accept = new_energy <= energy or rng.random() < math.exp(
            (energy - new_energy) / max(temperature, 1e-12)
        )
        if accept:
            energy = new_energy
            if energy < best_energy:
                best_energy = energy
                best = dict(tiles)
        else:
            kind, a, other, idx = undo
            if kind == "swap":
                tiles[a], tiles[other] = tiles[other], tiles[a]
            else:
                slots[idx], tiles[a] = tiles[a], other  # type: ignore[index]
        temperature *= cooling

    return Placement(
        chip=chip,
        tiles=best,
        energy=best_energy,
        initial_energy=initial_energy,
    )
