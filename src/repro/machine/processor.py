"""Processing-element model.

The compiler consumes exactly what the paper's does (Section IV): the
computation cycles and memory words one processing element provides per
second, plus per-element input/output access costs.  The access costs are
what split processor busy time into the run/read/write components reported
in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResourceError

__all__ = ["ProcessorSpec", "DEFAULT_PROCESSOR"]


@dataclass(frozen=True, slots=True)
class ProcessorSpec:
    """One processing element of the target many-core chip.

    Attributes
    ----------
    clock_hz:
        Computation cycles available per second.
    memory_words:
        Local storage per element, in data words.  Buffer kernels whose row
        storage exceeds this must be split column-wise across elements
        (Section IV-C).
    read_cycles_per_element / write_cycles_per_element:
        Cycles to move one element across a kernel input/output port; the
        simulator charges these per element actually moved.
    """

    clock_hz: float = 200e6
    memory_words: int = 2048
    read_cycles_per_element: float = 1.0
    write_cycles_per_element: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ResourceError("processor clock must be positive")
        if self.memory_words <= 0:
            raise ResourceError("processor memory must be positive")
        if self.read_cycles_per_element < 0 or self.write_cycles_per_element < 0:
            raise ResourceError("access costs must be non-negative")

    def seconds_for(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def firing_time(
        self, run_cycles: float, elements_read: int, elements_written: int
    ) -> tuple[float, float, float]:
        """(read, run, write) seconds for one firing."""
        read = self.seconds_for(elements_read * self.read_cycles_per_element)
        run = self.seconds_for(run_cycles)
        write = self.seconds_for(elements_written * self.write_cycles_per_element)
        return read, run, write


#: A modest embedded many-core tile: 200 MHz, 2 K words of local store.
DEFAULT_PROCESSOR = ProcessorSpec()
