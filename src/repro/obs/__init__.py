"""repro.obs — full-fidelity simulation telemetry.

Typed spans, a deterministic metrics registry, Perfetto/JSONL/text
exporters, and a critical-path analysis pass over one simulation run.
Enable via ``SimulationOptions(telemetry=True)`` (or a
:class:`TelemetryConfig`); the result lands on
``SimulationResult.telemetry``.
"""

from .collect import Telemetry, TelemetryCollector, TelemetryConfig
from .critical_path import (
    CriticalPathReport,
    PathSegment,
    analyze_critical_path,
)
from .export import (
    spans_jsonl,
    timeline,
    timeline_rows,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
    write_spans_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    FaultSpan,
    FiringSpan,
    IdleSpan,
    Span,
    StallSpan,
    TransferSpan,
    WaitSpan,
    firing_pattern_digest,
    span_as_dict,
    spans_digest,
)

__all__ = [
    "Telemetry",
    "TelemetryCollector",
    "TelemetryConfig",
    "CriticalPathReport",
    "PathSegment",
    "analyze_critical_path",
    "to_perfetto",
    "write_perfetto",
    "validate_perfetto",
    "spans_jsonl",
    "write_spans_jsonl",
    "timeline",
    "timeline_rows",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FiringSpan",
    "TransferSpan",
    "WaitSpan",
    "StallSpan",
    "FaultSpan",
    "IdleSpan",
    "Span",
    "span_as_dict",
    "firing_pattern_digest",
    "spans_digest",
]
