"""Telemetry collection: the runtime hook seam and its finished product.

:class:`TelemetryCollector` is what the simulator's event loop talks to,
through the same ``is not None`` gating the fault injector uses — when
telemetry is off the loop carries a single precomputed ``None`` local
and the hot path is unchanged (the conformance fixtures and hot-path
benchmark hold this).  Each hook is one call per observed event; metrics
update online, spans append to a (optionally bounded) list.

:class:`Telemetry` is the immutable-ish result attached to
:class:`~repro.sim.SimulationResult` when enabled: the span stream, the
metrics registry, and derived per-processor busy/idle accounting that is
provably consistent with :class:`~repro.sim.ProcessorStats` (the test
suite asserts summed span durations equal stats busy time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import SimulationError
from .metrics import DEFAULT_RESERVOIR, MetricsRegistry
from .spans import (
    FaultSpan,
    FiringSpan,
    IdleSpan,
    Span,
    StallSpan,
    TransferSpan,
    WaitSpan,
    span_as_dict,
    spans_digest,
)

__all__ = ["TelemetryConfig", "TelemetryCollector", "Telemetry"]

#: Gap shorter than this (relative to makespan) is float noise, not idle.
_IDLE_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """Knobs for telemetry collection."""

    #: Hard cap on retained spans (None = unbounded).  Metrics always
    #: cover the full run; spans past the cap are counted as dropped.
    max_spans: int | None = None
    #: Histogram reservoir size (see :mod:`repro.obs.metrics`).
    reservoir_size: int = DEFAULT_RESERVOIR

    def __post_init__(self) -> None:
        if self.max_spans is not None and self.max_spans <= 0:
            raise SimulationError(
                "TelemetryConfig.max_spans must be positive or None, "
                f"got {self.max_spans!r}"
            )
        if self.reservoir_size <= 0:
            raise SimulationError(
                "TelemetryConfig.reservoir_size must be positive, "
                f"got {self.reservoir_size!r}"
            )

    @classmethod
    def coerce(cls, value: Any) -> "TelemetryConfig | None":
        """Normalize the ``SimulationOptions.telemetry`` knob.

        ``None``/``False`` disable telemetry; ``True`` enables it with
        defaults; a mapping or an existing config passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {"max_spans", "reservoir_size"}
            if unknown:
                raise SimulationError(
                    f"unknown telemetry config keys: {sorted(unknown)}"
                )
            return cls(**value)
        raise SimulationError(
            "SimulationOptions.telemetry must be a bool, a mapping, or a "
            f"TelemetryConfig, got {type(value).__name__}"
        )


class TelemetryCollector:
    """Accumulates spans and metrics as the event loop reports them."""

    __slots__ = ("config", "spans", "dropped", "metrics", "_seq",
                 "_arrivals", "link_occupancy")

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.spans: list[Span] = []
        self.dropped = 0
        self.metrics = MetricsRegistry(config.reservoir_size)
        self._seq = 0
        #: id(channel) -> deque of delivery times of items still queued.
        self._arrivals: dict[int, deque] = {}
        #: (link label, start_s, end_s) serialization intervals reported
        #: by the NoC model; empty unless one was active.
        self.link_occupancy: list[tuple[str, float, float]] = []

    # -- plumbing ------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _add(self, span: Span) -> None:
        cap = self.config.max_spans
        if cap is not None and len(self.spans) >= cap:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- hooks called from the simulator loop --------------------------

    def transfer(self, time: float, ch, item, is_token: bool, *,
                 hops: int = 0, link_wait_s: float = 0.0, route: str = "",
                 links: tuple = ()) -> None:
        """One item pushed onto ``ch`` (data chunk or control token).

        The keyword extras are supplied only by the NoC-enabled delivery
        path: ``time`` is then the routed arrival, ``links`` the
        ``(label, start_s, end_s)`` serialization interval the transfer
        held on each link of its route.
        """
        arrivals = self._arrivals.get(id(ch))
        if arrivals is None:
            arrivals = self._arrivals[id(ch)] = deque()
        arrivals.append(time)
        nbytes = 0 if is_token else int(item.nbytes)
        occupancy = len(ch.items)
        edge = f"{ch.src}.{ch.src_port}->{ch.dst}.{ch.dst_port}"
        self.metrics.counter("transfers", edge=edge).inc()
        if is_token:
            self.metrics.counter("transfer_tokens", edge=edge).inc()
        else:
            self.metrics.counter("transfer_bytes", edge=edge).inc(nbytes)
        self.metrics.gauge("channel_occupancy", edge=edge).set(occupancy)
        if route:
            self.metrics.counter("noc_hops", edge=edge).inc(hops)
            self.metrics.histogram("noc_link_wait_s", edge=edge).observe(
                link_wait_s
            )
            self.link_occupancy.extend(links)
        self._add(TransferSpan(
            seq=self._next_seq(), start_s=time, src=ch.src,
            src_port=ch.src_port, dst=ch.dst, dst_port=ch.dst_port,
            bytes=nbytes, token=is_token, occupancy=occupancy,
            hops=hops, link_wait_s=link_wait_s, route=route,
        ))

    def _consume_waits(self, time: float, st, firing, firing_seq: int) -> None:
        """Pop one queued-arrival per consumed port; emit the wait spans."""
        inputs = st.rk.inputs
        for port in firing.consume_ports:
            ch = inputs.get(port)
            if ch is None:  # pragma: no cover - consume ports are wired
                continue
            arrivals = self._arrivals.get(id(ch))
            arrival = (arrivals.popleft() if arrivals else time)
            wait = time - arrival
            self.metrics.histogram(
                "queue_wait_s", kernel=st.name, port=port
            ).observe(wait)
            self._add(WaitSpan(
                seq=self._next_seq(), consumer_seq=firing_seq,
                start_s=arrival, duration_s=wait, kernel=st.name,
                port=port, src=ch.src,
            ))

    def firing(self, time: float, proc: int, st, firing, result,
               read_s: float, run_s: float, write_s: float) -> None:
        """A firing charged to processing element ``proc``."""
        seq = self._next_seq()
        duration = read_s + run_s + write_s
        pe = str(proc)
        self.metrics.counter("firings", kernel=st.name).inc()
        self.metrics.histogram(
            "firing_latency_s", kernel=st.name
        ).observe(duration)
        self.metrics.counter("pe_read_s", pe=pe).inc(read_s)
        self.metrics.counter("pe_run_s", pe=pe).inc(run_s)
        self.metrics.counter("pe_write_s", pe=pe).inc(write_s)
        self.metrics.counter("pe_busy_s", pe=pe).inc(duration)
        self._add(FiringSpan(
            seq=seq, start_s=time, kernel=st.name, method=result.label,
            processor=proc, read_s=read_s, run_s=run_s, write_s=write_s,
            firing_index=st.rk.firings - 1,
        ))
        self._consume_waits(time, st, firing, seq)

    def io_firing(self, time: float, st, firing, result) -> None:
        """A boundary-kernel firing (off-chip, instantaneous)."""
        seq = self._next_seq()
        self.metrics.counter("firings", kernel=st.name).inc()
        self._add(FiringSpan(
            seq=seq, start_s=time, kernel=st.name, method=result.label,
            processor=None, read_s=0.0, run_s=0.0, write_s=0.0,
            firing_index=st.rk.firings - 1,
        ))
        self._consume_waits(time, st, firing, seq)

    def stall(self, time: float, kernel: str, proc: int | None) -> None:
        self.metrics.counter("stalls", kernel=kernel).inc()
        self._add(StallSpan(
            seq=self._next_seq(), start_s=time, kernel=kernel,
            processor=proc,
        ))

    def fault_retry(self, time: float, proc: int, kernel: str, label: str,
                    detect_s: float, backoff_s: float) -> None:
        self.metrics.counter("fault_retries", kernel=kernel).inc()
        self.metrics.counter("pe_run_s", pe=str(proc)).inc(detect_s)
        self.metrics.counter("pe_busy_s", pe=str(proc)).inc(detect_s)
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action="retry",
            kernel=kernel, processor=proc, busy_s=detect_s,
            duration_s=detect_s + backoff_s, detail=label,
        ))

    def fault_outcome(self, time: float, kernel: str, proc: int | None,
                      action: str, count: int) -> None:
        """Terminal outcome of an unrecovered firing: shed or corrupt."""
        self.metrics.counter(f"fault_{action}", kernel=kernel).inc(count)
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action=action,
            kernel=kernel, processor=proc, detail=f"items={count}",
        ))

    def pe_death(self, time: float, proc: int) -> None:
        self.metrics.counter("pe_deaths", pe=str(proc)).inc()
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action="pe_death",
            processor=proc,
        ))

    def migration(self, time: float, src_proc: int, dst_proc: int,
                  ready_at: float, kernels: list[str]) -> None:
        self.metrics.counter("migrations", pe=str(src_proc)).inc()
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action="migration",
            processor=dst_proc, duration_s=ready_at - time,
            detail=f"PE{src_proc}->PE{dst_proc}: {','.join(kernels)}",
        ))

    def transfer_dropped(self, time: float, ch) -> None:
        edge = f"{ch.src}.{ch.src_port}->{ch.dst}.{ch.dst_port}"
        self.metrics.counter("transfers_dropped", edge=edge).inc()
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action="transfer_drop",
            detail=edge,
        ))

    def shed_channel(self, time: float, ch, count: int) -> None:
        """Resynchronization drained ``count`` unmatched items from ``ch``."""
        arrivals = self._arrivals.get(id(ch))
        if arrivals:
            for _ in range(min(count, len(arrivals))):
                arrivals.popleft()
        edge = f"{ch.src}.{ch.src_port}->{ch.dst}.{ch.dst_port}"
        self.metrics.counter("resync_shed", edge=edge).inc(count)
        self._add(FaultSpan(
            seq=self._next_seq(), start_s=time, action="resync_shed",
            kernel=ch.dst, detail=f"{edge}: items={count}",
        ))

    # -- finalization --------------------------------------------------

    def finalize(self, makespan_s: float) -> "Telemetry":
        """Derive idle accounting and freeze the collected telemetry."""
        busy: dict[int, list[tuple[float, float]]] = {}
        for span in self.spans:
            if isinstance(span, FiringSpan) and span.processor is not None:
                if span.duration_s > 0.0:
                    busy.setdefault(span.processor, []).append(
                        (span.start_s, span.end_s)
                    )
            elif isinstance(span, FaultSpan) and span.busy_s > 0.0 \
                    and span.processor is not None:
                busy.setdefault(span.processor, []).append(
                    (span.start_s, span.start_s + span.busy_s)
                )
        eps = _IDLE_EPS * max(1.0, makespan_s)
        for proc in sorted(busy):
            intervals = sorted(busy[proc])
            busy_total = 0.0
            cursor = 0.0
            for start, end in intervals:
                if start - cursor > eps:
                    self._add(IdleSpan(
                        seq=self._next_seq(), start_s=cursor,
                        duration_s=start - cursor, processor=proc,
                    ))
                busy_total += end - start
                if end > cursor:
                    cursor = end
            if makespan_s - cursor > eps:
                self._add(IdleSpan(
                    seq=self._next_seq(), start_s=cursor,
                    duration_s=makespan_s - cursor, processor=proc,
                ))
            pe = str(proc)
            self.metrics.gauge("pe_idle_s", pe=pe).set(
                max(0.0, makespan_s - busy_total)
            )
        return Telemetry(
            config=self.config,
            spans=self.spans,
            metrics=self.metrics,
            makespan_s=makespan_s,
            dropped_spans=self.dropped,
            link_occupancy=self.link_occupancy,
        )


@dataclass(slots=True)
class Telemetry:
    """Everything one simulation observed about itself."""

    config: TelemetryConfig
    #: All spans, in collector emission (= deterministic event) order.
    spans: list[Span]
    metrics: MetricsRegistry
    makespan_s: float
    dropped_spans: int = 0
    #: NoC link serialization intervals (label, start_s, end_s); empty
    #: unless a NoC model was active during the run.
    link_occupancy: list[tuple[str, float, float]] = field(
        default_factory=list
    )

    def spans_of(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def firing_spans(self) -> list[FiringSpan]:
        return [s for s in self.spans if isinstance(s, FiringSpan)]

    def span_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        return dict(sorted(counts.items()))

    def busy_by_processor(self) -> dict[int, float]:
        """Summed busy span time per PE (firings + fault detection).

        By construction this equals the simulator's
        :class:`~repro.sim.ProcessorStats` busy time — the invariant the
        test suite pins on every Figure 13 application.
        """
        out: dict[int, float] = {}
        for span in self.spans:
            if isinstance(span, FiringSpan) and span.processor is not None:
                out[span.processor] = (
                    out.get(span.processor, 0.0) + span.duration_s
                )
            elif isinstance(span, FaultSpan) and span.busy_s > 0.0 \
                    and span.processor is not None:
                out[span.processor] = (
                    out.get(span.processor, 0.0) + span.busy_s
                )
        return out

    def as_dict(self) -> dict:
        """JSON-safe summary (the ``telemetry`` section of a result)."""
        return {
            "makespan_s": self.makespan_s,
            "spans": self.span_counts(),
            "dropped_spans": self.dropped_spans,
            "sha256": spans_digest(self.spans),
            "metrics": self.metrics.as_dict(),
        }

    def spans_as_dicts(self) -> list[dict]:
        return [span_as_dict(s) for s in self.spans]
