"""Critical-path analysis over the telemetry span stream.

Reconstructs the event-dependency structure of one simulation without
re-simulating: a firing's start time is always *caused* by one of

* the **data** constraint — its last-arriving input (the wait span whose
  arrival equals the firing's start), produced by the upstream firing
  that finished at exactly that instant;
* the **processor** constraint — the firing (or fault-retry window) that
  occupied the same processing element until exactly the start instant
  (time multiplexing, Section V);
* the **source** constraint — the application input had not injected the
  data yet (the paper's unstallable-input axiom: nothing upstream can be
  optimized, the pipeline is keeping up).

Walking those tight constraints backwards from the last-finishing firing
yields a contiguous chain from t=0 to the makespan: the critical path.
Its segment durations sum to the makespan exactly — the property the
acceptance test pins — so "what bounds the makespan" becomes a
composition question: how much of the path is kernel K's firings, fault
recovery, or input pacing.

The backward slack pass then answers the dual question per kernel: how
much later could its firings finish without moving the makespan.
Kernels on the critical path have zero slack; big-slack kernels are
safe to narrow (fewer PEs) when trading area for schedule.

The report ends in actionable hints tied to
:class:`~repro.transform.CompileOptions` — which kernel to widen, which
buffer/channel to split, whether the app is input-bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .collect import Telemetry
from .spans import FaultSpan, FiringSpan, WaitSpan

__all__ = ["PathSegment", "CriticalPathReport", "analyze_critical_path"]


def _tight(a: float, b: float) -> bool:
    """Whether two simulated times are the same instant.

    Event times propagate exactly (a FINISH is pushed with the same
    float the next poll pops), so equality is usually exact; the
    tolerance only absorbs repeated float summation along long chains.
    """
    return a == b or math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-15)


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One link of the critical path, in chronological order."""

    #: "firing" | "fault" | "input" | "drain"
    kind: str
    kernel: str
    method: str
    processor: int | None
    start_s: float
    duration_s: float
    #: What bound this segment's *start*: "data", "processor", "source",
    #: "t0" (the chain reached time zero), or "gap".
    constraint: str

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "kernel": self.kernel, "method": self.method,
            "processor": self.processor, "start_s": self.start_s,
            "duration_s": self.duration_s, "constraint": self.constraint,
        }


@dataclass(slots=True)
class CriticalPathReport:
    """The reconstructed critical path plus slack and tuning hints."""

    makespan_s: float
    segments: list[PathSegment]
    #: Busy seconds on the path per kernel (input/drain excluded).
    busy_by_kernel: dict[str, float]
    #: Seconds the path spent waiting on the application input(s).
    input_s: float
    #: Seconds the path spent in fault detection/backoff windows.
    fault_s: float
    #: Seconds the path start was bound by processor contention.
    contended_s: float
    #: Per-kernel slack: how much later the kernel's firings could end
    #: without moving the makespan (0 == on the critical path).
    slack_by_kernel: dict[str, float] = field(default_factory=dict)
    hints: list[str] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(seg.duration_s for seg in self.segments)

    @property
    def bound(self) -> str:
        """Dominant composition: "input" | "compute" | "faults"."""
        busy = sum(self.busy_by_kernel.values())
        top = max(
            (("input", self.input_s), ("compute", busy),
             ("faults", self.fault_s)),
            key=lambda kv: kv[1],
        )
        return top[0]

    def top_kernels(self, n: int = 5) -> list[tuple[str, float]]:
        return sorted(self.busy_by_kernel.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_dict(self) -> dict:
        """JSON-safe summary (full segments via ``segments_as_dicts``)."""
        return {
            "makespan_s": self.makespan_s,
            "path_s": self.total_s,
            "segments": len(self.segments),
            "bound": self.bound,
            "input_s": self.input_s,
            "fault_s": self.fault_s,
            "contended_s": self.contended_s,
            "busy_by_kernel": {
                k: v for k, v in sorted(self.busy_by_kernel.items())
            },
            "slack_by_kernel": {
                k: v for k, v in sorted(self.slack_by_kernel.items())
            },
            "hints": list(self.hints),
        }

    def segments_as_dicts(self) -> list[dict]:
        return [seg.as_dict() for seg in self.segments]

    def describe(self, *, max_rows: int = 14) -> str:
        ms = self.makespan_s * 1e3
        lines = [
            f"critical path: {len(self.segments)} segments covering "
            f"{self.total_s * 1e3:.3f} ms of a {ms:.3f} ms makespan "
            f"({self.bound}-bound)"
        ]
        # Merge consecutive same-kernel segments for readability.
        merged: list[list] = []
        for seg in self.segments:
            key = (seg.kind, seg.kernel)
            if merged and (merged[-1][0], merged[-1][1]) == key:
                merged[-1][2] += seg.duration_s
                merged[-1][3] += 1
            else:
                merged.append([seg.kind, seg.kernel, seg.duration_s, 1])
        shown = merged if len(merged) <= max_rows else (
            merged[: max_rows // 2] + [None] + merged[-max_rows // 2:]
        )
        for row in shown:
            if row is None:
                lines.append(f"    ... {len(merged) - max_rows} more ...")
                continue
            kind, kernel, dur, count = row
            label = kernel if kind == "firing" else f"[{kind}] {kernel}".strip()
            share = dur / self.makespan_s if self.makespan_s > 0 else 0.0
            lines.append(
                f"  {dur * 1e3:9.3f} ms {share:6.1%}  {label}"
                + (f"  x{count}" if count > 1 else "")
            )
        top = self.top_kernels(3)
        if top:
            lines.append("top kernels on path: " + ", ".join(
                f"{k} ({v * 1e3:.3f} ms)" for k, v in top
            ))
        if self.slack_by_kernel:
            slack = sorted(self.slack_by_kernel.items(),
                           key=lambda kv: (kv[1], kv[0]))
            lines.append("least slack: " + ", ".join(
                f"{k} ({v * 1e3:.3f} ms)" for k, v in slack[:3]
            ))
        for hint in self.hints:
            lines.append(f"hint: {hint}")
        return "\n".join(lines)


def analyze_critical_path(telemetry: Telemetry) -> CriticalPathReport:
    """Reconstruct the critical path from one run's telemetry."""
    makespan = telemetry.makespan_s
    firings = telemetry.firing_spans()
    if not firings:
        return CriticalPathReport(
            makespan_s=makespan, segments=[], busy_by_kernel={},
            input_s=0.0, fault_s=0.0, contended_s=0.0,
            hints=["no firings recorded: nothing to analyze"],
        )

    waits_by_consumer: dict[int, list[WaitSpan]] = {}
    waits_by_producer: dict[tuple[str, float], list[WaitSpan]] = {}
    for span in telemetry.spans:
        if isinstance(span, WaitSpan):
            waits_by_consumer.setdefault(span.consumer_seq, []).append(span)
            waits_by_producer.setdefault(
                (span.src, span.start_s), []
            ).append(span)

    #: Producer lookup: (kernel, finish time) -> latest such firing.
    by_kernel_end: dict[tuple[str, float], FiringSpan] = {}
    for s in firings:
        key = (s.kernel, s.end_s)
        prev = by_kernel_end.get(key)
        if prev is None or s.seq > prev.seq:
            by_kernel_end[key] = s

    #: Per-PE occupancy (firings + retry windows), sorted by start.
    occupancy: dict[int, list] = {}
    for s in firings:
        if s.processor is not None:
            occupancy.setdefault(s.processor, []).append(s)
    retry_spans = [
        s for s in telemetry.spans
        if isinstance(s, FaultSpan) and s.action == "retry"
        and s.processor is not None
    ]
    for s in retry_spans:
        occupancy.setdefault(s.processor, []).append(s)
    for items in occupancy.values():
        items.sort(key=lambda s: (s.start_s, s.seq))

    firing_by_seq = {s.seq: s for s in firings}

    # ---- backward walk over tight constraints ------------------------
    sink = max(firings, key=lambda s: (s.end_s, s.seq))
    chain: list[tuple[object, str]] = []  # (span, start-constraint)
    cur: object = sink
    terminal = "t0"
    input_src = ""
    guard = len(firings) + len(retry_spans) + 8
    while guard > 0:
        guard -= 1
        start = cur.start_s
        if _tight(start, 0.0):
            chain.append((cur, "t0"))
            break
        # Processor constraint: who held the PE until exactly `start`?
        pe_pred = None
        proc = cur.processor
        if proc is not None:
            for item in reversed(occupancy.get(proc, ())):
                if item.seq >= cur.seq:
                    continue
                if _tight(item.end_s, start):
                    pe_pred = item
                    break
                if item.end_s < start:
                    break
        # Data constraint: the last-arriving consumed input.
        waits = waits_by_consumer.get(cur.seq, ())
        binding = max(waits, key=lambda w: (w.start_s, w.seq),
                      default=None)
        data_tight = binding is not None and _tight(binding.start_s, start)
        if pe_pred is not None:
            chain.append((cur, "processor"))
            cur = pe_pred
            continue
        if data_tight:
            producer = by_kernel_end.get((binding.src, binding.start_s))
            if producer is not None and producer.seq < cur.seq:
                chain.append((cur, "data"))
                cur = producer
                continue
            # No producing firing: the item came straight off an
            # application input's injection schedule (or an init load).
            chain.append((cur, "source"))
            terminal = "source"
            input_src = binding.src
            break
        # No tight predecessor (e.g. a retry backoff boundary whose
        # fault span fell off a capped stream): close with a gap.
        chain.append((cur, "gap"))
        terminal = "gap"
        break

    # ---- assemble chronological segments -----------------------------
    segments: list[PathSegment] = []
    first_span = chain[-1][0]
    lead = first_span.start_s
    if terminal in ("source", "gap") and lead > 0.0:
        segments.append(PathSegment(
            kind="input", kernel=input_src, method="",
            processor=None, start_s=0.0, duration_s=lead,
            constraint=terminal,
        ))
    busy_by_kernel: dict[str, float] = {}
    fault_s = 0.0
    contended_s = 0.0
    for span, constraint in reversed(chain):
        if isinstance(span, FaultSpan):
            duration = span.duration_s  # detect + backoff: PE-held window
            segments.append(PathSegment(
                kind="fault", kernel=span.kernel, method=span.action,
                processor=span.processor, start_s=span.start_s,
                duration_s=duration, constraint=constraint,
            ))
            fault_s += duration
        else:
            segments.append(PathSegment(
                kind="firing", kernel=span.kernel, method=span.method,
                processor=span.processor, start_s=span.start_s,
                duration_s=span.duration_s, constraint=constraint,
            ))
            busy_by_kernel[span.kernel] = (
                busy_by_kernel.get(span.kernel, 0.0) + span.duration_s
            )
        if constraint == "processor":
            contended_s += span.duration_s
    if segments and makespan - segments[-1].end_s > 1e-12 * max(1.0, makespan):
        # The run's last event (an unconsumed trailing delivery) landed
        # after the last firing: account the remainder explicitly so the
        # path always tiles the makespan.
        segments.append(PathSegment(
            kind="drain", kernel="", method="", processor=None,
            start_s=segments[-1].end_s,
            duration_s=makespan - segments[-1].end_s,
            constraint="gap",
        ))
    input_s = sum(s.duration_s for s in segments if s.kind == "input")

    # ---- slack: backward pass over the dependency DAG ----------------
    #: next occupancy item per (processor, position).
    pe_next: dict[int, object] = {}
    for items in occupancy.values():
        for a, b in zip(items, items[1:]):
            pe_next[a.seq] = b
    latest_end: dict[int, float] = {}
    slack_by_kernel: dict[str, float] = {}
    for s in sorted(firings, key=lambda s: -s.seq):
        bound = makespan
        nxt = pe_next.get(s.seq)
        if nxt is not None and isinstance(nxt, FiringSpan):
            bound = min(bound,
                        latest_end.get(nxt.seq, makespan) - nxt.duration_s)
        for w in waits_by_producer.get((s.kernel, s.end_s), ()):
            consumer = firing_by_seq.get(w.consumer_seq)
            if consumer is not None:
                bound = min(
                    bound,
                    latest_end.get(consumer.seq, makespan)
                    - consumer.duration_s,
                )
        latest_end[s.seq] = bound
        slack = bound - s.end_s
        prev = slack_by_kernel.get(s.kernel)
        if prev is None or slack < prev:
            slack_by_kernel[s.kernel] = slack

    report = CriticalPathReport(
        makespan_s=makespan,
        segments=segments,
        busy_by_kernel=busy_by_kernel,
        input_s=input_s,
        fault_s=fault_s,
        contended_s=contended_s,
        slack_by_kernel=slack_by_kernel,
    )
    report.hints.extend(_hints(report, telemetry))
    return report


def _hints(report: CriticalPathReport, telemetry: Telemetry) -> list[str]:
    """Actionable tuning hints tied back to CompileOptions knobs."""
    hints: list[str] = []
    makespan = report.makespan_s
    if makespan <= 0:
        return hints
    busy = sum(report.busy_by_kernel.values())
    if report.input_s / makespan >= 0.5:
        hints.append(
            f"input-bound ({report.input_s / makespan:.0%} of the path is "
            "input pacing): the pipeline keeps up with its rate; raising "
            "the application input rate_hz (or shrinking the chip) would "
            "raise utilization"
        )
    top = report.top_kernels(1)
    if top and busy > 0:
        kernel, seconds = top[0]
        share = seconds / makespan
        if share >= 0.2:
            hints.append(
                f"widen kernel {kernel!r}: it occupies {share:.0%} of the "
                "critical path — recompile with a lower "
                "CompileOptions.utilization_target (and parallelize=True) "
                "so the compiler splits it across more processing elements"
            )
    if report.contended_s / makespan >= 0.2:
        hints.append(
            f"processor contention binds {report.contended_s / makespan:.0%} "
            "of the path (time multiplexing): try "
            "CompileOptions(mapping='1:1') or a lower utilization_target "
            "to give contended kernels their own elements"
        )
    if report.fault_s / makespan >= 0.1:
        hints.append(
            f"fault recovery occupies {report.fault_s / makespan:.0%} of "
            "the path: reserve CompileOptions.spare_processors for "
            "migration or relax the retry backoff"
        )
    # The deepest queue marks the buffer to split: its producer runs far
    # ahead of its consumer, so splitting the buffer (or bounding the
    # channel) trades memory for schedule.
    deepest = max(
        (
            (g.max, labels.get("edge", ""))
            for name, labels, g in telemetry.metrics.gauges()
            if name == "channel_occupancy"
        ),
        default=(0.0, ""),
    )
    if deepest[0] >= 16:
        hints.append(
            f"split buffer on edge {deepest[1]!r}: its queue peaked at "
            f"{int(deepest[0])} items — a split buffer kernel (see "
            "docs/compiler.md) or a SimulationOptions channel capacity "
            "would bound the producer's run-ahead"
        )
    return hints
