"""Telemetry exporters: Perfetto/Chrome trace JSON, JSONL spans, text.

The Perfetto export follows the Chrome ``trace_event`` JSON-object
format (the format Perfetto's UI at https://ui.perfetto.dev loads
directly):

* one thread track per processing element (``pid`` 1, ``tid`` = PE
  index), complete (``ph: "X"``) slices per firing with nested
  read/run/write child slices;
* off-chip boundary firings on a dedicated track;
* async (``ph: "b"``/``"e"``) slices per consumed item on the channels
  process (``pid`` 2), spanning delivery -> consumption — the queue-wait
  picture;
* counter (``ph: "C"``) tracks for channel occupancy;
* instant (``ph: "i"``) events for faults and recovery actions;
* when a NoC model was active: a ``noc links`` process (``pid`` 3) with
  one counter track per mesh link (in-flight serializations over time)
  and instant route-metadata events per routed transfer.

Timestamps are microseconds, as the format requires.  The exporter is
deterministic: identical telemetry serializes to identical JSON.

:func:`validate_perfetto` structurally checks a document against the
subset of the spec the exporter uses — CI runs it on a real trace so the
artifact uploaded next to ``BENCH_sim.json`` is known-loadable.
"""

from __future__ import annotations

import json
from typing import IO, Iterator

from .collect import Telemetry
from .spans import (
    FaultSpan,
    FiringSpan,
    StallSpan,
    TransferSpan,
    WaitSpan,
    span_as_dict,
)

__all__ = [
    "to_perfetto",
    "write_perfetto",
    "validate_perfetto",
    "spans_jsonl",
    "write_spans_jsonl",
    "timeline",
    "timeline_rows",
]

#: Process ids used in the export.
_PID_SIM = 1
_PID_CHANNELS = 2
_PID_NOC = 3

#: Thread id for the off-chip boundary track (inputs/outputs/constants).
_TID_IO = 1_000_000


def _us(seconds: float) -> float:
    return seconds * 1e6


def to_perfetto(telemetry: Telemetry, *, app: str = "") -> dict:
    """Render telemetry as a Chrome/Perfetto ``trace_event`` document."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID_SIM,
         "args": {"name": f"simulation{f' ({app})' if app else ''}"}},
        {"name": "process_name", "ph": "M", "pid": _PID_CHANNELS,
         "args": {"name": "channels"}},
        {"name": "thread_name", "ph": "M", "pid": _PID_SIM, "tid": _TID_IO,
         "args": {"name": "off-chip I/O"}},
    ]
    named_pes: set[int] = set()
    edge_tids: dict[str, int] = {}
    async_id = 0

    def edge_tid(edge: str) -> int:
        tid = edge_tids.get(edge)
        if tid is None:
            tid = edge_tids[edge] = len(edge_tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID_CHANNELS,
                "tid": tid, "args": {"name": edge},
            })
        return tid

    for span in telemetry.spans:
        if isinstance(span, FiringSpan):
            if span.processor is None:
                tid = _TID_IO
            else:
                tid = span.processor
                if tid not in named_pes:
                    named_pes.add(tid)
                    events.append({
                        "name": "thread_name", "ph": "M", "pid": _PID_SIM,
                        "tid": tid, "args": {"name": f"PE{tid}"},
                    })
            events.append({
                "name": f"{span.kernel}.{span.method}", "cat": "firing",
                "ph": "X", "pid": _PID_SIM, "tid": tid,
                "ts": _us(span.start_s), "dur": _us(span.duration_s),
                "args": {"kernel": span.kernel, "method": span.method,
                         "firing_index": span.firing_index},
            })
            for phase, start, dur in span.phases():
                events.append({
                    "name": phase, "cat": "phase", "ph": "X",
                    "pid": _PID_SIM, "tid": tid,
                    "ts": _us(start), "dur": _us(dur), "args": {},
                })
        elif isinstance(span, WaitSpan):
            edge = f"{span.src}->{span.kernel}.{span.port}"
            tid = edge_tid(edge)
            async_id += 1
            ident = str(async_id)
            events.append({
                "name": edge, "cat": "transfer", "ph": "b", "id": ident,
                "pid": _PID_CHANNELS, "tid": tid, "ts": _us(span.start_s),
                "args": {"wait_s": span.duration_s},
            })
            events.append({
                "name": edge, "cat": "transfer", "ph": "e", "id": ident,
                "pid": _PID_CHANNELS, "tid": tid, "ts": _us(span.end_s),
                "args": {},
            })
        elif isinstance(span, TransferSpan):
            events.append({
                "name": f"occupancy {span.edge}", "cat": "channel",
                "ph": "C", "pid": _PID_CHANNELS, "ts": _us(span.start_s),
                "args": {"items": span.occupancy},
            })
            if span.route:
                events.append({
                    "name": f"route {span.edge}", "cat": "noc", "ph": "i",
                    "pid": _PID_NOC, "ts": _us(span.start_s), "s": "p",
                    "args": {"route": span.route, "hops": span.hops,
                             "link_wait_s": span.link_wait_s},
                })
        elif isinstance(span, FaultSpan):
            tid = span.processor if span.processor is not None else _TID_IO
            events.append({
                "name": f"fault:{span.action}", "cat": "fault", "ph": "i",
                "pid": _PID_SIM, "tid": tid, "ts": _us(span.start_s),
                "s": "t",
                "args": {"kernel": span.kernel, "detail": span.detail},
            })
        elif isinstance(span, StallSpan):
            tid = span.processor if span.processor is not None else _TID_IO
            events.append({
                "name": f"stall:{span.reason}", "cat": "stall", "ph": "i",
                "pid": _PID_SIM, "tid": tid, "ts": _us(span.start_s),
                "s": "t", "args": {"kernel": span.kernel},
            })
        # IdleSpans are implicit in the timeline (gaps between slices).
    if telemetry.link_occupancy:
        events.append({
            "name": "process_name", "ph": "M", "pid": _PID_NOC,
            "args": {"name": "noc links"},
        })
        by_link: dict[str, list[tuple[float, int]]] = {}
        for label, start, end in telemetry.link_occupancy:
            steps = by_link.setdefault(label, [])
            steps.append((start, +1))
            steps.append((end, -1))
        for label in sorted(by_link):
            depth = 0
            for ts, delta in sorted(by_link[label]):
                depth += delta
                events.append({
                    "name": f"link {label}", "cat": "noc", "ph": "C",
                    "pid": _PID_NOC, "ts": _us(ts),
                    "args": {"in_flight": depth},
                })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_s": telemetry.makespan_s,
            "dropped_spans": telemetry.dropped_spans,
        },
    }


def write_perfetto(telemetry: Telemetry, path: str, *, app: str = "") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_perfetto(telemetry, app=app), fh)
        fh.write("\n")


def validate_perfetto(doc: object) -> dict[str, int]:
    """Structurally validate a ``trace_event`` JSON document.

    Checks the JSON-object envelope and, per event, the fields each
    phase requires.  Returns phase counts on success; raises
    ``ValueError`` naming the first offending event otherwise.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object, "
                         f"got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a 'traceEvents' array")
    counts: dict[str, int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where} must be an object")
        ph = ev.get("ph")
        if ph not in {"X", "B", "E", "b", "e", "n", "i", "I", "C", "M"}:
            raise ValueError(f"{where} has unknown phase {ph!r}")
        if "name" not in ev:
            raise ValueError(f"{where} ({ph}) is missing 'name'")
        if "pid" not in ev:
            raise ValueError(f"{where} ({ph}) is missing 'pid'")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"{where} ({ph}) needs a numeric 'ts'")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                raise ValueError(f"{where} (X) needs a numeric 'dur'")
            if ev["dur"] < 0:
                raise ValueError(f"{where} (X) has negative 'dur'")
        if ph in {"b", "e", "n"} and "id" not in ev:
            raise ValueError(f"{where} ({ph}) needs an 'id'")
        if ph in {"C", "M"} and not isinstance(ev.get("args"), dict):
            raise ValueError(f"{where} ({ph}) needs an 'args' object")
        counts[ph] = counts.get(ph, 0) + 1
    return counts


def spans_jsonl(telemetry: Telemetry) -> Iterator[str]:
    """The span stream as JSON lines (one canonical dict per span)."""
    for span in telemetry.spans:
        yield json.dumps(span_as_dict(span), sort_keys=True)


def write_spans_jsonl(telemetry: Telemetry, path_or_file: str | IO[str]) -> int:
    """Write the JSONL span stream; returns the number of lines."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            return write_spans_jsonl(telemetry, fh)
    count = 0
    for line in spans_jsonl(telemetry):
        path_or_file.write(line + "\n")
        count += 1
    return count


def timeline_rows(telemetry: Telemetry) -> list[dict]:
    """Structured Gantt rows: one JSON-safe row per processing element.

    The machine-readable counterpart of :func:`timeline` — same firing
    spans, but as plain data a renderer (the ``repro.dash`` page, a
    notebook) can draw without re-parsing text.  Off-chip boundary
    firings (``processor is None``) are excluded, exactly as the text
    Gantt excludes them; rows are sorted by processing element and
    segments keep collector emission order, so identical telemetry
    yields identical rows.
    """
    by_pe: dict[int, list[dict]] = {}
    for span in telemetry.firing_spans():
        if span.processor is None:
            continue
        by_pe.setdefault(span.processor, []).append({
            "kernel": span.kernel,
            "method": span.method,
            "start_s": span.start_s,
            "duration_s": span.duration_s,
        })
    return [
        {
            "processor": pe,
            "busy_s": sum(seg["duration_s"] for seg in segments),
            "segments": segments,
        }
        for pe, segments in sorted(by_pe.items())
    ]


def timeline(telemetry: Telemetry, *, width: int = 80,
             edges: int = 4) -> str:
    """Text Gantt of the telemetry: PE rows plus channel-occupancy rows.

    Extends :func:`repro.sim.trace.gantt` — the firing spans render
    through the same quantized per-PE rows, then the ``edges`` busiest
    channels (by transferred bytes) get occupancy rows: each column
    shows the queue depth entering that quantum (``.`` empty, ``1``-``9``
    items, ``+`` deeper), making the Figure 9 buffering effects and
    backpressure visible in the same frame as the multiplexing schedule.
    """
    from ..sim.trace import TraceEvent, gantt

    firings = [
        TraceEvent(start_s=s.start_s, processor=s.processor,
                   kernel=s.kernel, method=s.method, read_s=s.read_s,
                   run_s=s.run_s, write_s=s.write_s)
        for s in telemetry.firing_spans() if s.processor is not None
    ]
    horizon = telemetry.makespan_s
    base = gantt(firings, width=width,
                 until_s=horizon if horizon > 0 else None)
    if horizon <= 0 or not firings:
        return base

    # Occupancy trajectory per edge, from the transfer/wait span stream:
    # +1 at each delivery, -1 at each consumption.
    deltas: dict[str, list[tuple[float, int]]] = {}
    traffic: dict[str, float] = {}
    for span in telemetry.spans:
        if isinstance(span, TransferSpan):
            deltas.setdefault(span.edge, []).append((span.start_s, +1))
            traffic[span.edge] = traffic.get(span.edge, 0.0) + span.bytes
        elif isinstance(span, WaitSpan):
            edge_key = None
            # WaitSpan names (src, dst kernel, port); recover the edge key
            # by suffix match so both views stay keyed consistently.
            suffix = f"->{span.kernel}.{span.port}"
            for key in deltas:
                if key.endswith(suffix) and key.startswith(f"{span.src}."):
                    edge_key = key
                    break
            if edge_key is not None:
                deltas[edge_key].append((span.end_s, -1))
    busiest = sorted(traffic, key=lambda e: (-traffic[e], e))[:edges]
    if not busiest:
        return base
    quantum = horizon / width
    lines = [base, "channel occupancy (items queued at quantum start):"]
    for edge in busiest:
        steps = sorted(deltas[edge])
        cells = []
        depth = 0
        pos = 0
        for col in range(width):
            t = col * quantum
            while pos < len(steps) and steps[pos][0] <= t:
                depth += steps[pos][1]
                pos += 1
            if depth <= 0:
                cells.append(".")
            elif depth <= 9:
                cells.append(str(depth))
            else:
                cells.append("+")
        lines.append(f"  {''.join(cells)}  {edge}")
    return "\n".join(lines)
