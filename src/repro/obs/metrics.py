"""A small labelled metrics registry: counters, gauges, histograms.

The registry is deliberately tiny and deterministic — metrics are part
of the reproducibility surface (two identical simulations must serialize
identical registries), so:

* metric identity is ``(name, sorted labels)``;
* histograms keep a **bounded reservoir** (Vitter's algorithm R) driven
  by a private ``random.Random(0)``, so the sample — and therefore the
  reported quantiles — is a pure function of the observation sequence,
  never of process state;
* serialization sorts everything.

Counters accumulate, gauges keep the last value plus a high-water mark,
histograms keep count/sum/min/max exactly and quantiles approximately
(exact until the reservoir overflows).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Reservoir size used when the registry is built without a config.
DEFAULT_RESERVOIR = 512


class Counter:
    """A monotonically accumulating value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-set value plus its high-water mark."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        return {"value": self.value, "max": self.max}


class Histogram:
    """Bounded-reservoir distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_capacity",
                 "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR) -> None:
        if capacity <= 0:
            raise ValueError("histogram capacity must be positive, "
                             f"got {capacity!r}")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._capacity = capacity
        # Seeded so the retained sample is deterministic across runs and
        # processes (hash/process state never leaks in).
        self._rng = random.Random(0)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            # Algorithm R: keep each observation with probability k/n.
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the reservoir (exact until it fills)."""
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def as_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": 0.0, "p50": None, "p90": None, "p99": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _key(name: str, labels: Mapping[str, Any]) -> tuple:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Get-or-create store for labelled metrics."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_reservoir")

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._reservoir = reservoir_size

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(self._reservoir)
        return metric

    # -- read side -----------------------------------------------------

    @staticmethod
    def _rows(table: Mapping[tuple, Any]) -> Iterable[tuple[str, dict, Any]]:
        for (name, labels), metric in sorted(table.items()):
            yield name, dict(labels), metric

    def counters(self) -> list[tuple[str, dict, Counter]]:
        return list(self._rows(self._counters))

    def gauges(self) -> list[tuple[str, dict, Gauge]]:
        return list(self._rows(self._gauges))

    def histograms(self) -> list[tuple[str, dict, Histogram]]:
        return list(self._rows(self._histograms))

    def counter_value(self, name: str, **labels: Any) -> float:
        metric = self._counters.get(_key(name, labels))
        return metric.value if metric is not None else 0.0

    def as_dict(self) -> dict:
        """Deterministic JSON-safe dump of every metric, sorted by key."""
        return {
            "counters": [
                {"name": name, "labels": labels, **metric.as_dict()}
                for name, labels, metric in self._rows(self._counters)
            ],
            "gauges": [
                {"name": name, "labels": labels, **metric.as_dict()}
                for name, labels, metric in self._rows(self._gauges)
            ],
            "histograms": [
                {"name": name, "labels": labels, **metric.as_dict()}
                for name, labels, metric in self._rows(self._histograms)
            ],
        }
