"""Typed telemetry spans: the full-fidelity record of one simulation.

The flat per-firing :class:`~repro.sim.trace.TraceEvent` answers "who ran
when"; spans answer *why the schedule looks the way it does*.  Every
observable of the discrete-event loop gets a typed record:

* :class:`FiringSpan` — one firing on a processing element (or an
  off-chip boundary kernel), split into read/run/write phases exactly as
  the machine model charges them;
* :class:`TransferSpan` — one item pushed onto a channel (data bytes or
  a control token), with the channel occupancy it caused;
* :class:`WaitSpan` — the interval one consumed item spent queued in its
  channel, from delivery to the firing that consumed it;
* :class:`StallSpan` — a firing attempt blocked by backpressure (bounded
  channels only);
* :class:`FaultSpan` — a fault or recovery action: transient retry,
  processor death, migration, shed/corrupt outcomes, dropped transfers;
* :class:`IdleSpan` — a gap on a processing element, derived at
  finalization so per-PE busy + idle always tiles the makespan.

Spans are frozen plain data.  ``seq`` is the collector's global emission
counter: it orders spans exactly like the simulator's deterministic event
loop, which is what lets the critical-path pass (:mod:`.critical_path`)
reconstruct dependencies without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar, Sequence

__all__ = [
    "FiringSpan",
    "TransferSpan",
    "WaitSpan",
    "StallSpan",
    "FaultSpan",
    "IdleSpan",
    "Span",
    "span_as_dict",
    "spans_digest",
    "firing_pattern_digest",
]


@dataclass(frozen=True, slots=True)
class FiringSpan:
    """One firing as charged to the machine model.

    ``processor`` is None for off-chip boundary kernels (application
    inputs/outputs, constant sources), whose firings execute instantly
    and never occupy a processing element.
    """

    kind: ClassVar[str] = "firing"

    seq: int
    start_s: float
    kernel: str
    method: str
    processor: int | None
    read_s: float
    run_s: float
    write_s: float
    #: The kernel's executed-firing index at this firing (0-based).
    firing_index: int = 0

    @property
    def duration_s(self) -> float:
        return self.read_s + self.run_s + self.write_s

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def phases(self) -> tuple[tuple[str, float, float], ...]:
        """(name, start, duration) sub-spans, in machine-model order."""
        out = []
        t = self.start_s
        for name, dur in (("read", self.read_s), ("run", self.run_s),
                          ("write", self.write_s)):
            if dur > 0.0:
                out.append((name, t, dur))
                t += dur
        return tuple(out)


@dataclass(frozen=True, slots=True)
class TransferSpan:
    """One item delivered onto a channel.

    Instantaneous in the paper's free-communication model.  When a
    :class:`~repro.machine.noc.NocModel` is active, transfers routed over
    the mesh record their route: ``start_s`` is then the *arrival* time
    at the consumer, ``hops``/``link_wait_s`` the route length and the
    time spent queued for busy links, and ``route`` the tile path (empty
    for local/off-chip transfers and control tokens, which never route).
    The NoC fields default to the off-model values and are serialized
    only when a route exists, so NoC-off span digests are unchanged.
    """

    kind: ClassVar[str] = "transfer"

    seq: int
    start_s: float
    src: str
    src_port: str
    dst: str
    dst_port: str
    #: Payload size in bytes (0 for control tokens).
    bytes: int
    token: bool
    #: Channel occupancy (items) right after this delivery.
    occupancy: int
    #: Mesh links traversed (0 when unrouted or the NoC model is off).
    hops: int = 0
    #: Simulated seconds spent queued for busy links along the route.
    link_wait_s: float = 0.0
    #: Tile path ``(x,y)->...->(x',y')``, empty when unrouted.
    route: str = ""

    @property
    def duration_s(self) -> float:
        return 0.0

    @property
    def end_s(self) -> float:
        return self.start_s

    @property
    def edge(self) -> str:
        return f"{self.src}.{self.src_port}->{self.dst}.{self.dst_port}"


@dataclass(frozen=True, slots=True)
class WaitSpan:
    """Queue residency of one consumed item: delivery -> consumption."""

    kind: ClassVar[str] = "wait"

    seq: int
    #: ``seq`` of the :class:`FiringSpan` that consumed the item.
    consumer_seq: int
    start_s: float
    duration_s: float
    kernel: str
    port: str
    #: Producing kernel (the channel's source end).
    src: str

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True, slots=True)
class StallSpan:
    """A ready firing blocked by backpressure (instantaneous marker)."""

    kind: ClassVar[str] = "stall"

    seq: int
    start_s: float
    kernel: str
    processor: int | None
    reason: str = "backpressure"

    @property
    def duration_s(self) -> float:
        return 0.0

    @property
    def end_s(self) -> float:
        return self.start_s


@dataclass(frozen=True, slots=True)
class FaultSpan:
    """A fault or recovery action observed by the injector seam.

    ``action`` is one of ``retry`` (busy_s = fault-detection time,
    duration_s adds the backoff idle), ``pe_death``, ``migration``
    (duration_s = state-transfer latency), ``shed``, ``corrupt``,
    ``resync_shed``, or ``transfer_drop``.
    """

    kind: ClassVar[str] = "fault"

    seq: int
    start_s: float
    action: str
    kernel: str = ""
    processor: int | None = None
    #: Processing-element time the action consumed (counts toward busy).
    busy_s: float = 0.0
    duration_s: float = 0.0
    detail: str = ""

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True, slots=True)
class IdleSpan:
    """A gap on a processing element (derived at finalization)."""

    kind: ClassVar[str] = "idle"

    seq: int
    start_s: float
    duration_s: float
    processor: int

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


#: Any telemetry span.
Span = (FiringSpan | TransferSpan | WaitSpan | StallSpan | FaultSpan
        | IdleSpan)


def span_as_dict(span: Span) -> dict:
    """Canonical JSON-safe form of one span (the JSONL line payload)."""
    d: dict = {"kind": span.kind, "seq": span.seq, "start_s": span.start_s}
    if isinstance(span, FiringSpan):
        d.update(kernel=span.kernel, method=span.method,
                 processor=span.processor, read_s=span.read_s,
                 run_s=span.run_s, write_s=span.write_s,
                 duration_s=span.duration_s,
                 firing_index=span.firing_index)
    elif isinstance(span, TransferSpan):
        d.update(src=span.src, src_port=span.src_port, dst=span.dst,
                 dst_port=span.dst_port, bytes=span.bytes,
                 token=span.token, occupancy=span.occupancy)
        if span.route:
            # NoC-routed transfers only: keeps NoC-off digests identical.
            d.update(hops=span.hops, link_wait_s=span.link_wait_s,
                     route=span.route)
    elif isinstance(span, WaitSpan):
        d.update(consumer_seq=span.consumer_seq, duration_s=span.duration_s,
                 kernel=span.kernel, port=span.port, src=span.src)
    elif isinstance(span, StallSpan):
        d.update(kernel=span.kernel, processor=span.processor,
                 reason=span.reason)
    elif isinstance(span, FaultSpan):
        d.update(action=span.action, kernel=span.kernel,
                 processor=span.processor, busy_s=span.busy_s,
                 duration_s=span.duration_s, detail=span.detail)
    elif isinstance(span, IdleSpan):
        d.update(duration_s=span.duration_s, processor=span.processor)
    return d


def firing_pattern_digest(pattern: Sequence[tuple[str, str]]) -> str:
    """sha256 fingerprint of a ``(kernel, method-label)`` firing sequence.

    This is the structural identity of a schedule phase: the same ordered
    kernels firing the same methods share a digest regardless of absolute
    time.  :class:`FiringSpan` streams reduce to exactly this pair via
    ``(span.kernel, span.method)``, and the quasi-static replay engine
    (:mod:`repro.sim.replay`) uses the digest to name the steady-state
    period it detected — so a period fingerprint reported by a replay run
    can be cross-checked against the telemetry spans of a traced run of
    the same application.
    """
    h = hashlib.sha256()
    for kernel, label in pattern:
        h.update(kernel.encode())
        h.update(b"\x00")
        h.update(label.encode())
        h.update(b"\n")
    return h.hexdigest()


def spans_digest(spans: Sequence[Span]) -> str:
    """sha256 over the canonical serialization of a span stream.

    Same contract as :func:`repro.sim.trace.trace_digest`: floats via
    ``repr`` and keys sorted, so two runs share a digest iff every span
    matches bit for bit.
    """
    h = hashlib.sha256()
    for span in spans:
        h.update(json.dumps(span_as_dict(span), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()
