"""Automatic kernel cost estimation by profiling (Section II-B).

The paper specifies per-method resource requirements explicitly but notes
they "could be estimated automatically or determined from profiling".
This module provides the profiling route: each method body is executed on
synthetic inputs, timed against a calibration workload that defines what
"one cycle" of the abstract processing element costs on the host, and the
resulting estimates can be written back into the kernel's method
registrations.

Estimates are inherently host-noisy; they are intended to *seed* the
resource model (an order-of-magnitude starting point a programmer then
refines), so the API reports medians over many repetitions and the
calibration constant alongside each estimate.

Worker-process safety
---------------------
Profiling is safe to run inside :class:`concurrent.futures`
process-pool workers (the ``repro.explore`` executor does): the only
module-level mutable state is the calibration memo below, which is
per-process, write-once per iteration count, and carries no host
resources — under ``fork`` a child inherits the parent's measured
constant (same host, still valid), under ``spawn`` each worker simply
recalibrates once.  Kernels themselves hold their state on instances,
and :func:`profile_kernel` resets the kernel before and after, so no
profiling state leaks between jobs sharing a worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .errors import ResourceError
from .graph.kernel import FiringContext, Kernel
from .graph.methods import MethodCost, MethodSpec
from .tokens import EndOfFrame

__all__ = ["ProfiledCost", "ProfileReport", "calibrate", "profile_kernel",
           "apply_profile"]


@dataclass(frozen=True, slots=True)
class ProfiledCost:
    """Profiling estimate for one method."""

    method: str
    seconds_per_call: float
    cycles_estimate: int
    calls: int

    def describe(self) -> str:
        return (
            f"{self.method}: {self.seconds_per_call * 1e6:.2f} us/call "
            f"-> ~{self.cycles_estimate} cycles"
        )


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """Profiling estimates for a whole kernel."""

    kernel: str
    seconds_per_cycle: float
    costs: Mapping[str, ProfiledCost]

    def cycles(self, method: str) -> int:
        return self.costs[method].cycles_estimate

    def describe(self) -> str:
        lines = [
            f"profile of {self.kernel!r} "
            f"(1 cycle == {self.seconds_per_cycle * 1e9:.2f} ns host time):"
        ]
        for cost in self.costs.values():
            lines.append(f"  {cost.describe()}")
        return "\n".join(lines)


#: Memoized calibration constants keyed by iteration count.  Per-process
#: and write-once per key: concurrent profiling jobs in one process may
#: race to fill it, but both compute the same measurement and the last
#: write wins harmlessly.  See "Worker-process safety" above.
_CALIBRATION: dict[int, float] = {}


def calibrate(iterations: int = 200_000, *, refresh: bool = False) -> float:
    """Host seconds per abstract cycle, memoized per process.

    One abstract cycle is defined as one multiply-accumulate step of a
    scalar loop — roughly the work the paper's cycle counts (e.g.
    ``3*h*w`` for a convolution) assume per element.  The measurement
    runs once per process (it costs tens of milliseconds, which would
    otherwise dominate short profiling jobs in pool workers); pass
    ``refresh=True`` to re-measure, e.g. after host frequency scaling.
    """
    if not refresh and iterations in _CALIBRATION:
        return _CALIBRATION[iterations]
    best = float("inf")
    for _ in range(3):
        acc = 0.0
        start = time.perf_counter()
        for i in range(iterations):
            acc += i * 0.5
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    if acc < 0:  # pragma: no cover - defeat optimization, never true
        raise RuntimeError
    _CALIBRATION[iterations] = best / iterations
    return _CALIBRATION[iterations]


def _calibrate(iterations: int = 200_000) -> float:
    """Backwards-compatible alias for :func:`calibrate`."""
    return calibrate(iterations)


def _synthetic_inputs(kernel: Kernel, method: MethodSpec,
                      rng: np.random.Generator) -> dict[str, np.ndarray]:
    inputs = {}
    for port in method.data_inputs:
        spec = kernel.input_spec(port)
        inputs[port] = rng.uniform(0.0, 255.0,
                                   (spec.window.h, spec.window.w))
    return inputs


def _run_method(kernel: Kernel, method: MethodSpec,
                rng: np.random.Generator) -> None:
    token = None
    inputs: dict[str, np.ndarray] = {}
    if method.is_token_method:
        token = EndOfFrame(frame=0)
    else:
        inputs = _synthetic_inputs(kernel, method, rng)
    ctx = FiringContext(method=method, inputs=inputs, token=token)
    kernel.bind_context(ctx)
    try:
        getattr(kernel, method.name)()
    finally:
        kernel.release_context()


def profile_kernel(
    kernel: Kernel,
    *,
    repeats: int = 200,
    seed: int = 0,
    seconds_per_cycle: float | None = None,
) -> ProfileReport:
    """Estimate per-invocation cycle costs for every method of ``kernel``.

    The kernel's init methods run first (so e.g. histogram bins exist);
    each registered method then runs ``repeats`` times on synthetic inputs
    and the median call time converts to cycles via the calibration
    constant.  The kernel is reset afterwards.
    """
    if repeats < 10:
        raise ResourceError("profiling needs at least 10 repeats")
    spc = seconds_per_cycle if seconds_per_cycle else calibrate()
    rng = np.random.default_rng(seed)
    kernel.reset()
    for name, cost in kernel.init_methods.items():
        synthetic = MethodSpec(name=name, outputs=tuple(kernel.outputs),
                               cost=cost, is_source=True)
        ctx = FiringContext(method=synthetic)
        kernel.bind_context(ctx)
        getattr(kernel, name)()
        kernel.release_context()

    # Priming pass: methods may depend on state set by sibling methods
    # (run_convolve needs load_coeff's coefficients), so run everything
    # once, tolerating failures, before timing anything.
    for method in kernel.methods.values():
        if method.is_source:
            continue
        try:
            _run_method(kernel, method, rng)
        except Exception:
            pass
    costs: dict[str, ProfiledCost] = {}
    for method in kernel.methods.values():
        if method.is_source:
            continue
        times = []
        # Warm up (JIT-free Python still benefits from cache warmth).
        for _ in range(5):
            _run_method(kernel, method, rng)
        for _ in range(repeats):
            start = time.perf_counter()
            _run_method(kernel, method, rng)
            times.append(time.perf_counter() - start)
        per_call = float(np.median(times))
        costs[method.name] = ProfiledCost(
            method=method.name,
            seconds_per_call=per_call,
            cycles_estimate=max(1, round(per_call / spc)),
            calls=repeats,
        )
    kernel.reset()
    return ProfileReport(
        kernel=kernel.name, seconds_per_cycle=spc, costs=costs
    )


def apply_profile(kernel: Kernel, report: ProfileReport) -> None:
    """Replace the kernel's declared cycle costs with profiled estimates.

    State-word declarations are preserved — profiling measures time, not
    memory.
    """
    for name, profiled in report.costs.items():
        old = kernel.methods[name]
        kernel.update_method_cost(
            name,
            MethodCost(cycles=profiled.cycles_estimate,
                       state_words=old.cost.state_words),
        )
