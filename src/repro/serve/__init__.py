"""``repro.serve`` — the persistent, multi-tenant exploration service.

Where :mod:`repro.explore` is a one-shot process pool that dies with
its terminal, this package is the resident layer the north star's
traffic serving needs: a long-running asyncio service that accepts
sweep specs over HTTP (and the ``repro serve`` / ``submit`` / ``watch``
/ ``jobs`` CLI), compiles each into an immutable
:class:`~repro.serve.protocol.SweepPlan`, and drives it through a
guarded lifecycle with **exactly one terminal event per run** while all
tenants' jobs multiplex over one shared priority queue, one
crash-isolated executor, and one content-addressed cache.

* :mod:`~repro.serve.protocol` — plans, run-level events, envelopes;
* :mod:`~repro.serve.lifecycle` — the guarded run state machine;
* :mod:`~repro.serve.scheduler` — queue, dedup, retries, cancellation;
* :mod:`~repro.serve.storage` — the durable data-dir layout;
* :mod:`~repro.serve.http` — the stdlib asyncio HTTP front end;
* :mod:`~repro.serve.client` — the blocking client the CLI uses.

See ``docs/serving.md`` for the wire protocol and curl transcripts.
"""

from .client import ServiceClient, ServiceUnreachable
from .http import DEFAULT_PORT, HttpServer, run_service
from .lifecycle import (
    TERMINAL_STATUSES,
    LifecycleError,
    RunState,
    RunStateMachine,
)
from .protocol import (
    PROTOCOL_VERSION,
    RunAccepted,
    RunEvent,
    RunFinished,
    RunStateChanged,
    ServeError,
    SweepPlan,
    decode_event,
    encode_event,
)
from .scheduler import RunHandle, ServiceConfig, SweepService
from .storage import ServiceStorage

__all__ = [
    "ServiceClient",
    "ServiceUnreachable",
    "DEFAULT_PORT",
    "HttpServer",
    "run_service",
    "TERMINAL_STATUSES",
    "LifecycleError",
    "RunState",
    "RunStateMachine",
    "PROTOCOL_VERSION",
    "RunAccepted",
    "RunEvent",
    "RunFinished",
    "RunStateChanged",
    "ServeError",
    "SweepPlan",
    "decode_event",
    "encode_event",
    "RunHandle",
    "ServiceConfig",
    "SweepService",
    "ServiceStorage",
]
