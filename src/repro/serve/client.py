"""Blocking stdlib client for the exploration service.

``repro submit``/``watch``/``jobs``/``cancel`` are thin wrappers over
this class; any other consumer (dashboards, CI) can use it the same
way.  One ``http.client`` connection per call — the service closes
connections after each response, and event streams end at EOF right
after the run's terminal event, so iteration terminates naturally.

Transport failures surface as :class:`ServiceUnreachable` (a
:class:`~.protocol.ServeError` subclass), and the client heals the
idempotent ones itself:

* :meth:`_request` retries **GETs only** — a retried POST could
  double-submit a run or double-cancel; reads are safe to repeat;
* :meth:`watch` wraps :meth:`events` in a reconnect loop keyed on the
  ``?since=<seq>`` resumption cursor: a connection reset or a stream
  cut mid-run resumes exactly after the last envelope seen, so the
  caller observes every event exactly once, in order, ending at the
  run's single terminal event — or gets :class:`ServiceUnreachable`
  once ``reconnects`` consecutive attempts fail without progress.

Backoff between attempts is the same bounded-with-deterministic-jitter
curve the executor and scheduler use (:func:`repro.chaos.backoff_delay`).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from ..chaos.watchdog import backoff_delay
from .http import DEFAULT_PORT
from .protocol import ServeError

__all__ = ["ServiceClient", "ServiceUnreachable"]


class ServiceUnreachable(ServeError):
    """The service did not answer (refused, reset, or timed out).

    Distinct from other :class:`ServeError`\\ s so callers can tell
    "the service rejected this" (do not retry) from "the network ate
    this" (retry may help) without parsing messages.
    """


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``url``."""

    def __init__(self, url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
                 *, timeout_s: float = 30.0, retries: int = 2,
                 backoff_s: float = 0.05, backoff_max_s: float = 1.0,
                 reconnects: int = 8) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServeError(f"only http:// service URLs work, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or DEFAULT_PORT
        self.timeout_s = timeout_s
        #: Extra attempts for idempotent (GET) requests.
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        #: Consecutive no-progress stream reconnects before giving up.
        self.reconnects = max(0, int(reconnects))

    # -- plumbing ------------------------------------------------------

    def _connect(self, timeout_s: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s,
        )

    def _unreachable(self, exc: Exception) -> ServiceUnreachable:
        return ServiceUnreachable(
            f"service at {self.host}:{self.port} unreachable: {exc}"
        )

    def _request_once(self, method: str, path: str,
                      body: dict[str, Any] | None = None) -> dict[str, Any]:
        conn = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise self._unreachable(exc) from None
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServeError(
                    f"non-JSON response from {method} {path}: {raw[:120]!r}"
                ) from None
            if response.status >= 400:
                raise ServeError(
                    data.get("error", f"{method} {path} -> "
                                      f"{response.status}")
                )
            return data
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        """One API call; transparently retries transport failures of
        GETs (idempotent by construction).  POSTs are never retried —
        re-sending a submit or cancel is not the client's call to make."""
        attempt = 1
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceUnreachable:
                if method != "GET" or attempt > self.retries:
                    raise
                time.sleep(backoff_delay(attempt, self.backoff_s,
                                         self.backoff_max_s,
                                         key=f"{method} {path}"))
                attempt += 1

    # -- API -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """The aggregated ``DashSnapshot`` payload of ``/v1/metrics``.

        Idempotent read: transport failures retry with the same
        bounded-backoff policy as every other GET.  A service running
        without ``--dashboard`` answers 404, which surfaces as a plain
        :class:`~.protocol.ServeError` (do not retry)."""
        return self._request("GET", "/v1/metrics")

    def submit(self, spec: dict[str, Any], *, priority: int = 0,
               tenant: str = "") -> dict[str, Any]:
        """Submit a sweep spec; returns the accepted run's info dict."""
        body: dict[str, Any] = {"spec": spec, "priority": priority}
        if tenant:
            body["tenant"] = tenant
        return self._request("POST", "/v1/runs", body)["run"]

    def runs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/runs")["runs"]

    def run(self, run_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/runs/{run_id}")["run"]

    def cancel(self, run_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/runs/{run_id}/cancel")["run"]

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {"drain": drain})

    def events(self, run_id: str, *, since: int = 0,
               timeout_s: float | None = None) -> Iterator[dict[str, Any]]:
        """Stream a run's event envelopes over *one* connection.

        Ends at EOF — normally right after the run's terminal event,
        but a mid-stream disconnect also just ends the iteration (the
        torn final line is skipped).  Use :meth:`watch` for the
        self-healing variant; this one is the single-connection
        building block.  ``timeout_s`` bounds the wait for *each*
        line, not the whole stream (a sweep can legitimately run for
        hours); default: no per-line limit.
        """
        conn = self._connect(timeout_s=timeout_s)
        try:
            try:
                conn.request("GET", f"/v1/runs/{run_id}/events"
                                    f"?since={int(since)}")
                response = conn.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise self._unreachable(exc) from None
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    message = raw[:120].decode("utf-8", "replace")
                raise ServeError(message or f"events stream -> "
                                            f"{response.status}")
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn line on an ungraceful close
            except (ConnectionError, socket.timeout, OSError):
                return  # reset mid-stream reads as EOF; watch() resumes
        finally:
            conn.close()

    def watch(self, run_id: str, *, since: int = 0,
              timeout_s: float | None = None,
              reconnects: int | None = None) -> Iterator[dict[str, Any]]:
        """Stream a run's envelopes, auto-reconnecting until terminal.

        Every disconnect — connection refused, reset mid-stream, or a
        stream that ended without the run's terminal event — is healed
        by reconnecting with ``?since=<last seq seen>``, so envelopes
        are yielded exactly once, in seq order.  The reconnect budget
        (default: the client's ``reconnects``) counts *consecutive*
        failed attempts: any progress resets it, so a long flaky run
        is bounded per-outage, not over its lifetime.  Exhausting the
        budget raises :class:`ServiceUnreachable`; service-level errors
        (e.g. an unknown run id) propagate immediately.
        """
        budget = self.reconnects if reconnects is None else int(reconnects)
        last = int(since)
        failures = 0
        while True:
            progressed = False
            try:
                for envelope in self.events(run_id, since=last,
                                            timeout_s=timeout_s):
                    seq = int(envelope.get("seq", 0))
                    if seq <= last:
                        continue  # replayed overlap; already yielded
                    last = seq
                    progressed = True
                    failures = 0
                    yield envelope
                    if envelope.get("event") == "RunFinished":
                        return
                # EOF without the terminal event: the stream was cut
                # between envelopes — treat like any other disconnect.
            except ServiceUnreachable:
                pass
            if not progressed:
                failures += 1
                if failures > budget:
                    raise ServiceUnreachable(
                        f"service at {self.host}:{self.port} unreachable: "
                        f"watch of run {run_id} made no progress after "
                        f"{failures} attempt(s)"
                    )
            time.sleep(backoff_delay(max(1, failures), self.backoff_s,
                                     self.backoff_max_s,
                                     key=f"watch {run_id}:{last}"))
