"""Blocking stdlib client for the exploration service.

``repro submit``/``watch``/``jobs``/``cancel`` are thin wrappers over
this class; any other consumer (dashboards, CI) can use it the same
way.  One ``http.client`` connection per call — the service closes
connections after each response, and event streams end at EOF right
after the run's terminal event, so iteration terminates naturally.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Iterator
from urllib.parse import urlsplit

from .http import DEFAULT_PORT
from .protocol import ServeError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``url``."""

    def __init__(self, url: str = f"http://127.0.0.1:{DEFAULT_PORT}",
                 *, timeout_s: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServeError(f"only http:// service URLs work, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or DEFAULT_PORT
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------

    def _connect(self, timeout_s: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s,
        )

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        conn = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServeError(
                    f"service at {self.host}:{self.port} unreachable: {exc}"
                ) from None
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                raise ServeError(
                    f"non-JSON response from {method} {path}: {raw[:120]!r}"
                ) from None
            if response.status >= 400:
                raise ServeError(
                    data.get("error", f"{method} {path} -> "
                                      f"{response.status}")
                )
            return data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict[str, Any], *, priority: int = 0,
               tenant: str = "") -> dict[str, Any]:
        """Submit a sweep spec; returns the accepted run's info dict."""
        body: dict[str, Any] = {"spec": spec, "priority": priority}
        if tenant:
            body["tenant"] = tenant
        return self._request("POST", "/v1/runs", body)["run"]

    def runs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/runs")["runs"]

    def run(self, run_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/runs/{run_id}")["run"]

    def cancel(self, run_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/runs/{run_id}/cancel")["run"]

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {"drain": drain})

    def events(self, run_id: str, *, since: int = 0,
               timeout_s: float | None = None) -> Iterator[dict[str, Any]]:
        """Stream a run's event envelopes; ends after the terminal event.

        ``timeout_s`` bounds the wait for *each* line, not the whole
        stream (a sweep can legitimately run for hours); default: no
        per-line limit.
        """
        conn = self._connect(timeout_s=timeout_s)
        try:
            try:
                conn.request("GET", f"/v1/runs/{run_id}/events"
                                    f"?since={int(since)}")
                response = conn.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServeError(
                    f"service at {self.host}:{self.port} unreachable: {exc}"
                ) from None
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    message = raw[:120].decode("utf-8", "replace")
                raise ServeError(message or f"events stream -> "
                                            f"{response.status}")
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line on an ungraceful close
        finally:
            conn.close()
