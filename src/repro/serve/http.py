"""Minimal HTTP/1.1 front end for the sweep service — stdlib only.

A deliberately small, dependency-free server over
``asyncio.start_server``: parse one request, route it, answer JSON (or
stream NDJSON/SSE), close the connection.  ``Connection: close`` on
every response keeps the framing trivial and lets event streams end by
EOF — clients just read lines until the socket closes, which happens
right after the run's single terminal event.

Routes::

    GET  /healthz                     liveness, version, uptime, queue
    GET  /v1/runs                     all runs (live + this process)
    POST /v1/runs                     submit {"spec": {...}, "priority": n}
    GET  /v1/runs/<id>                one run's info
    GET  /v1/runs/<id>/events?since=N stream events as NDJSON
                                      (or SSE with Accept: text/event-stream;
                                      SSE frames carry ``id:`` and honour
                                      ``Last-Event-ID`` on reconnect)
    POST /v1/runs/<id>/cancel         request cancellation
    GET  /v1/metrics                  aggregated DashSnapshot (404 unless
                                      the service runs with --dashboard)
    GET  /v1/dashboard                the single-file HTML dashboard
    POST /v1/shutdown                 {"drain": true|false} then exit

``repro serve`` wires this to a :class:`~.scheduler.SweepService`; see
``docs/serving.md`` for curl transcripts.

A :class:`~repro.chaos.ChaosInjector` (optional, ``None`` by default)
makes the *network* misbehave deterministically: GET requests can be
answered with a connection reset and event streams can be cut mid-run —
both keyed on stable identities, so the same ``(spec, seed)`` breaks
the same requests.  Write paths (POST) are never dropped: a reset POST
would leave the client unsure whether its submission was admitted, and
retrying it would duplicate the run — resets therefore only exercise
the idempotent-read recovery that :meth:`ServiceClient.watch` provides.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from ..chaos.inject import ChaosInjector
from ..chaos.model import ChaosSpec
from .protocol import PROTOCOL_VERSION, ServeError
from .scheduler import ServiceConfig, SweepService
from .storage import ServiceStorage

__all__ = ["DEFAULT_PORT", "HttpServer", "run_service"]

DEFAULT_PORT = 8765

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpServer:
    """One service instance behind one listening socket."""

    def __init__(self, service: SweepService, *, host: str = "127.0.0.1",
                 port: int = 0,
                 on_shutdown: Callable[[bool], Awaitable[None] | None]
                 | None = None,
                 chaos: ChaosInjector | None = None,
                 metrics: Any | None = None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._on_shutdown = on_shutdown
        self._chaos = chaos
        #: The service's MetricsAggregator when the dashboard is on;
        #: ``None`` (the default) keeps /v1/metrics and /v1/dashboard
        #: off — the same gating seam as chaos.
        self._metrics = metrics

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request plumbing ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                if (self._chaos is not None
                        and self._chaos.drop_request(method, path)):
                    # Injected connection reset: hard-abort without a
                    # response, exactly what a dying LB or mid-request
                    # network partition looks like to the client.
                    writer.transport.abort()
                    return
                await self._route(method, path, query, headers, body, writer)
            except _HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": exc.message})
            except ServeError as exc:
                await self._respond(writer, 400, {"error": str(exc)})
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away; nothing to answer
            except Exception as exc:  # noqa: BLE001 - boundary
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader):
        raw = await reader.readuntil(b"\r\n\r\n")
        if len(raw) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = raw.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}") \
                from None
        parts = urlsplit(target)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return method.upper(), parts.path, query, headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> dict[str, Any]:
        length = int(headers.get("content-length", "0") or "0")
        if length == 0:
            return {}
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        raw = await reader.readexactly(length)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return data

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_html(self, writer: asyncio.StreamWriter,
                            document: str) -> None:
        body = document.encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/html; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, method: str, path: str, query: dict[str, str],
                     headers: dict[str, str], body: dict[str, Any],
                     writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            from .. import __version__

            await self._respond(writer, 200, {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "version": __version__,
                "accepting": self.service.accepting,
                "runs": len(self.service.runs()),
                "started_at": getattr(self.service, "started_at", None),
                "uptime_s": getattr(self.service, "uptime_s", None),
            })
            return
        if path == "/v1/metrics" and method == "GET":
            if self._metrics is None:
                raise _HttpError(
                    404, "metrics are off; start the service with "
                         "--dashboard (or use `repro dash` offline)"
                )
            await self._respond(writer, 200,
                                self._metrics.snapshot().as_dict())
            return
        if path in ("/", "/v1/dashboard") and method == "GET":
            if self._metrics is None:
                raise _HttpError(
                    404, "the dashboard is off; start the service with "
                         "--dashboard (or use `repro dash` offline)"
                )
            from ..dash.page import dashboard_page

            await self._respond_html(writer, dashboard_page())
            return
        if path == "/v1/runs":
            if method == "POST":
                spec = body.get("spec")
                if not isinstance(spec, dict):
                    raise _HttpError(400, "body needs a 'spec' object")
                handle = await self.service.submit(
                    spec,
                    tenant=str(body.get("tenant",
                                        headers.get("x-tenant", ""))),
                    priority=int(body.get("priority", 0)),
                )
                await self._respond(writer, 202, {"run": handle.info()})
                return
            if method == "GET":
                await self._respond(writer, 200, {
                    "runs": [h.info() for h in self.service.runs()],
                })
                return
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            run_id, _, action = rest.partition("/")
            try:
                handle = self.service.run(run_id)
            except ServeError as exc:
                raise _HttpError(404, str(exc)) from None
            if not action and method == "GET":
                await self._respond(writer, 200, {"run": handle.info()})
                return
            if action == "cancel" and method == "POST":
                handle = self.service.cancel(run_id)
                await self._respond(writer, 200, {"run": handle.info()})
                return
            if action == "events" and method == "GET":
                await self._stream_events(writer, run_id, query, headers)
                return
            raise _HttpError(404, f"no route {method} {path}")
        if path == "/v1/shutdown" and method == "POST":
            drain = bool(body.get("drain", True))
            await self._respond(writer, 202, {"ok": True, "drain": drain})
            if self._on_shutdown is not None:
                result = self._on_shutdown(drain)
                if asyncio.iscoroutine(result):
                    await result
            return
        raise _HttpError(404, f"no route {method} {path}")

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             run_id: str, query: dict[str, str],
                             headers: dict[str, str]) -> None:
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            raise _HttpError(400, "'since' must be an integer") from None
        # A reconnecting EventSource resumes via the Last-Event-ID
        # header (we stamp each SSE frame with ``id: <seq>``); it
        # composes with ?since= as a second cursor — the later wins.
        last_id = headers.get("last-event-id", "")
        if last_id:
            try:
                since = max(since, int(last_id))
            except ValueError:
                pass  # a foreign id scheme; fall back to ?since=
        sse = "text/event-stream" in headers.get("accept", "")
        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()
        async for envelope in self.service.watch(run_id, since=since):
            line = json.dumps(envelope, default=str)
            chunk = (f"id: {int(envelope['seq'])}\ndata: {line}\n\n"
                     if sse else line + "\n")
            writer.write(chunk.encode("utf-8"))
            await writer.drain()
            if (self._chaos is not None
                    and self._chaos.break_stream(run_id,
                                                 int(envelope["seq"]))):
                # Cut the stream *after* this envelope went out: the
                # break is keyed on (run, seq), so each one fires once
                # and a reconnecting client always makes progress.
                writer.transport.abort()
                return


def run_service(*, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                data_dir: str = ".repro-serve",
                config: ServiceConfig = ServiceConfig(),
                announce: Callable[[str], None] | None = print,
                chaos: ChaosSpec | ChaosInjector | None = None,
                dashboard: bool = False) -> int:
    """Blocking entry point behind ``repro serve``.

    Runs the scheduler and HTTP front end until ``POST /v1/shutdown``
    or SIGINT/SIGTERM, then drains per the shutdown request (signals
    cancel live runs — a terminal Ctrl-C should exit promptly, and the
    cache makes the interrupted remainder resumable by resubmission).

    ``chaos`` (a :class:`~repro.chaos.ChaosSpec` or an already-built
    injector) arms fault injection across *every* seam — workers,
    cache, store, HTTP — through one shared injector, so its decision
    ledger accounts for the whole instance.
    """
    injector: ChaosInjector | None = None
    if isinstance(chaos, ChaosInjector):
        injector = chaos
    elif chaos is not None:
        injector = ChaosInjector(chaos)
    metrics = None
    if dashboard:
        # Lazy: a dashboard-free service never imports repro.dash, and
        # the observer seam stays None — observation-free by the same
        # contract as chaos=None.
        from ..dash import MetricsAggregator

        metrics = MetricsAggregator()

    async def _main() -> None:
        storage = ServiceStorage(data_dir, chaos=injector)
        service = SweepService(storage, config, chaos=injector,
                               observer=metrics)
        done = asyncio.Event()
        drain_mode = {"drain": True}

        def request_shutdown(drain: bool) -> None:
            drain_mode["drain"] = drain
            done.set()

        server = HttpServer(service, host=host, port=port,
                            on_shutdown=request_shutdown,
                            chaos=injector, metrics=metrics)
        await service.start()
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, request_shutdown, False
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops
        if announce is not None:
            announce(f"repro serve: listening on {server.url} "
                     f"(data dir {storage.root})")
            if metrics is not None:
                announce(f"repro serve: dashboard at "
                         f"{server.url}/v1/dashboard")
            if injector is not None:
                announce("repro serve: CHAOS ARMED "
                         f"(seed {injector.spec.seed})")
        await done.wait()
        if announce is not None:
            announce("repro serve: shutting down "
                     + ("(drain)" if drain_mode["drain"] else "(cancel)"))
        await server.close()
        await service.stop(drain=drain_mode["drain"])

    asyncio.run(_main())
    return 0
