"""Guarded run lifecycle for the exploration service.

Every submitted sweep is driven through one :class:`RunStateMachine`:

.. code-block:: text

    INIT ──▶ QUEUED ──▶ EXECUTING ──▶ TERMINAL(succeeded | failed)
      │         │            │            ▲
      │         ▼            ▼            │
      └────▶ DRAINING ──────────▶ TERMINAL(cancelled)

The machine is deliberately strict — the scheduler *asserts* its own
correctness through it rather than trusting itself:

* every transition is checked against the allowed-successor table;
  anything else raises :class:`LifecycleError`;
* ``TERMINAL`` is only reachable through :meth:`RunStateMachine.finish`,
  which records the terminal status and can succeed **exactly once** —
  the "exactly one terminal event per run" invariant is enforced here,
  at the narrowest point, not by convention in the scheduler;
* cancellation is a first-class path: ``DRAINING`` is reachable from
  every non-terminal state, so a cancel request can always make
  progress toward ``TERMINAL``.
"""

from __future__ import annotations

from enum import Enum

from ..errors import BlockParallelError

__all__ = [
    "RunState",
    "TERMINAL_STATUSES",
    "LifecycleError",
    "RunStateMachine",
]


class RunState(str, Enum):
    """Phases of a run, tinypipe-style."""

    #: Plan compiled, not yet admitted to the scheduler.
    INIT = "init"
    #: Jobs enqueued on the shared priority queue.
    QUEUED = "queued"
    #: At least one job picked up by a worker.
    EXECUTING = "executing"
    #: Cancellation requested; waiting for in-flight jobs to stop.
    DRAINING = "draining"
    #: Done — exactly one terminal status recorded.
    TERMINAL = "terminal"


#: Valid values for the terminal status recorded by ``finish``.
TERMINAL_STATUSES = ("succeeded", "failed", "cancelled")

_ALLOWED: dict[RunState, frozenset[RunState]] = {
    RunState.INIT: frozenset({RunState.QUEUED, RunState.DRAINING}),
    RunState.QUEUED: frozenset({RunState.EXECUTING, RunState.DRAINING}),
    RunState.EXECUTING: frozenset({RunState.DRAINING, RunState.TERMINAL}),
    RunState.DRAINING: frozenset({RunState.TERMINAL}),
    RunState.TERMINAL: frozenset(),
}


class LifecycleError(BlockParallelError):
    """An illegal run state transition — a scheduler bug, surfaced."""


class RunStateMachine:
    """Current state plus guarded transitions for one run."""

    __slots__ = ("_state", "_status")

    def __init__(self) -> None:
        self._state = RunState.INIT
        self._status: str | None = None

    @property
    def state(self) -> RunState:
        return self._state

    @property
    def status(self) -> str | None:
        """The terminal status, or None while the run is live."""
        return self._status

    @property
    def terminal(self) -> bool:
        return self._state is RunState.TERMINAL

    def advance(self, target: RunState) -> RunState:
        """Move to ``target``; raises :class:`LifecycleError` if illegal.

        ``TERMINAL`` is rejected here by design — terminalization must
        go through :meth:`finish` so a status is always recorded.
        """
        if target is RunState.TERMINAL:
            raise LifecycleError(
                "TERMINAL is only reachable through finish(status)"
            )
        if target not in _ALLOWED[self._state]:
            raise LifecycleError(
                f"illegal run transition {self._state.value} -> "
                f"{target.value}"
            )
        self._state = target
        return self._state

    def finish(self, status: str) -> RunState:
        """Record the run's single terminal status and enter TERMINAL."""
        if status not in TERMINAL_STATUSES:
            raise LifecycleError(
                f"terminal status must be one of {TERMINAL_STATUSES}, "
                f"got {status!r}"
            )
        if self._state is RunState.TERMINAL:
            raise LifecycleError(
                f"run already terminal ({self._status}); a second "
                "terminal transition is a scheduler bug"
            )
        if RunState.TERMINAL not in _ALLOWED[self._state]:
            raise LifecycleError(
                f"illegal run transition {self._state.value} -> terminal"
            )
        self._state = RunState.TERMINAL
        self._status = status
        return self._state
