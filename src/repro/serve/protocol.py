"""Wire protocol for the exploration service.

Three things live here, all plain data:

* :class:`SweepPlan` — the immutable compilation of a submitted sweep
  spec: the expanded job list and the content-addressed fingerprint of
  every job, computed **once at admission** (reusing
  :func:`repro.explore.spec.expand` and the graph fingerprinting the
  one-shot path uses), so scheduling, deduplication, and resumption all
  work off frozen identities that can never drift mid-run;
* run-level events — :class:`RunAccepted`, :class:`RunStateChanged`,
  :class:`RunFinished` — which subclass
  :class:`~repro.explore.events.SweepEvent` so they share the job
  events' registry, schema version, and ``as_dict``/``from_dict``
  round-trip.  A run's event stream is therefore one homogeneous,
  decodable NDJSON sequence, terminated by exactly one
  :class:`RunFinished`;
* the envelope helpers — every event travels as its ``as_dict`` payload
  plus a per-run monotonically increasing ``seq`` (the resume cursor
  for ``?since=``) and the ``run`` id.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import BlockParallelError
from ..explore.events import SweepEvent
from ..explore.spec import Job, SweepSpec

__all__ = [
    "PROTOCOL_VERSION",
    "ServeError",
    "SweepPlan",
    "RunEvent",
    "RunAccepted",
    "RunStateChanged",
    "RunFinished",
    "encode_event",
    "decode_event",
]

PROTOCOL_VERSION = 1


class ServeError(BlockParallelError):
    """A client-visible service error (bad spec, unknown run, ...)."""


# ---------------------------------------------------------------------------
# The immutable plan


@dataclass(frozen=True)
class SweepPlan:
    """One submission, compiled to frozen jobs and identities."""

    run_id: str
    name: str
    tenant: str
    priority: int
    #: Wall-clock admission time (seconds since the epoch).
    created: float
    #: Canonical JSON of the submitted spec (identity + audit trail).
    spec_json: str
    jobs: tuple[Job, ...]
    fingerprints: tuple[str, ...]

    @classmethod
    def compile(cls, spec_data: Mapping[str, Any], *, run_id: str,
                tenant: str = "", priority: int = 0,
                created: float = 0.0) -> "SweepPlan":
        """Expand and fingerprint a submitted spec into a frozen plan.

        Raises :class:`~repro.explore.spec.ExploreError` on a malformed
        spec — admission is where submissions fail, never mid-run.
        """
        spec = SweepSpec.from_dict(spec_data)
        jobs = tuple(spec.jobs())
        fingerprints = tuple(job.fingerprint for job in jobs)
        return cls(
            run_id=run_id,
            name=spec.name,
            tenant=tenant,
            priority=int(priority),
            created=created,
            spec_json=json.dumps(spec_data, sort_keys=True,
                                 separators=(",", ":"), default=str),
            jobs=jobs,
            fingerprints=fingerprints,
        )

    @property
    def total(self) -> int:
        return len(self.jobs)

    @property
    def spec_digest(self) -> str:
        """sha256 of the canonical spec — equal specs, equal digests."""
        return hashlib.sha256(self.spec_json.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "run": self.run_id,
            "name": self.name,
            "tenant": self.tenant,
            "priority": self.priority,
            "created": self.created,
            "total": self.total,
            "spec_digest": self.spec_digest,
        }


# ---------------------------------------------------------------------------
# Run-level events (share the SweepEvent registry and round-trip)


@dataclass(frozen=True, slots=True)
class RunEvent(SweepEvent):
    """Base for run-level events; ``label`` carries the sweep name."""

    run_id: str

    def describe(self) -> str:
        return f"run {self.run_id} [{self.label}]"


@dataclass(frozen=True, slots=True)
class RunAccepted(RunEvent):
    """The service admitted the submission and compiled its plan."""

    total: int
    priority: int
    tenant: str

    def describe(self) -> str:
        who = f" for {self.tenant!r}" if self.tenant else ""
        return (f"run {self.run_id}: accepted {self.label!r}{who} — "
                f"{self.total} job(s) at priority {self.priority}")


@dataclass(frozen=True, slots=True)
class RunStateChanged(RunEvent):
    """The run entered a new non-terminal lifecycle state.

    ``reason`` is the machine-readable *why* for states that have more
    than one path in — e.g. ``CANCELLING`` with reason ``"cancel"``
    (client request) versus ``"shutdown"`` (service stopping).  Empty
    for unforced transitions; optional on the wire, so payloads from
    older producers still decode.
    """

    state: str
    reason: str = ""

    def describe(self) -> str:
        why = f" ({self.reason})" if self.reason else ""
        return f"run {self.run_id}: {self.state}{why}"


@dataclass(frozen=True, slots=True)
class RunFinished(RunEvent):
    """The run's single terminal event, whatever the path to it."""

    status: str  # "succeeded" | "failed" | "cancelled"
    total: int
    succeeded: int
    failed: int
    cancelled: int
    cache_hits: int
    elapsed_s: float

    def describe(self) -> str:
        return (f"run {self.run_id}: {self.status} — "
                f"{self.succeeded}/{self.total} ok, {self.failed} failed, "
                f"{self.cancelled} cancelled, {self.cache_hits} from cache "
                f"({self.elapsed_s:.2f}s)")


# ---------------------------------------------------------------------------
# Envelopes


def encode_event(event: SweepEvent, *, seq: int, run_id: str) -> dict:
    """The NDJSON wire form: event payload + stream position."""
    return {"seq": seq, "run": run_id, **event.as_dict()}


def decode_event(envelope: Mapping[str, Any]) -> SweepEvent:
    """Rebuild the typed event inside a wire envelope.

    Both job-level and run-level types decode through the shared
    registry; the envelope keys (``seq``, ``run``) are ignored by
    ``from_dict`` so the same payload round-trips bare or enveloped.
    """
    return SweepEvent.from_dict(envelope)
