"""The resident sweep scheduler: many tenants, one queue, one cache.

:class:`SweepService` is the asyncio core of ``repro serve``.  Every
submission is compiled into an immutable :class:`~.protocol.SweepPlan`
at admission, then driven through the guarded lifecycle machine while
its jobs funnel — together with every other tenant's — into one shared
priority queue.  Worker tasks pop jobs in ``(priority desc, admission
order)`` and execute each through
:func:`repro.explore.executor.run_job_isolated` in a thread: the same
crash-isolated single-worker process pool, deadline, and retry
classification as the one-shot path, plus a cooperative cancel flag.

Deduplication happens at two levels, both keyed by the job fingerprint:

* the **content-addressed cache** short-circuits any job a previous run
  (or a previous life of the service) already completed;
* an **in-flight table** makes a concurrent duplicate *wait for* the
  first execution instead of repeating it — two tenants submitting
  overlapping specs at the same moment still execute each shared point
  exactly once, and the later run reports it as a cache hit.

Invariants (asserted by ``tests/test_serve.py``):

* exactly one terminal event (:class:`~.protocol.RunFinished`) per run,
  enforced by :class:`~.lifecycle.RunStateMachine`;
* exactly one terminal job event per job per run;
* cancellation from any non-terminal state reaches ``TERMINAL``;
* graceful drain: ``stop()`` refuses new submissions, lets in-flight
  work finish (or cancels it), and leaves no run non-terminal.

Supervision (see :mod:`repro.chaos`): ``heartbeat_s`` arms the worker
watchdog (a hung worker is killed and charged a retryable crash within
one heartbeat window instead of blocking a slot for its full timeout),
``quarantine_after`` parks fingerprints that crash-loop that many
consecutive times with a terminal ``quarantined`` record, and retry
backoff is bounded at ``backoff_max_s`` with deterministic
fingerprint-keyed jitter.  A :class:`~repro.chaos.ChaosInjector` passed
as ``chaos`` injects worker/storage faults to prove all of it; the
default ``chaos=None`` path is observation-free.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, AsyncIterator, Mapping

from ..chaos.inject import ChaosInjector
from ..chaos.watchdog import QuarantineLedger, backoff_delay
from ..explore.events import (
    JobCacheHit,
    JobFailed,
    JobFinished,
    JobRetried,
    JobStarted,
    SweepEvent,
)
from ..explore.executor import RESULT_SCHEMA, run_job_isolated
from ..explore.spec import Job
from .lifecycle import RunState, RunStateMachine
from .protocol import (
    RunAccepted,
    RunFinished,
    RunStateChanged,
    ServeError,
    SweepPlan,
    encode_event,
)
from .storage import ServiceStorage

__all__ = ["ServiceConfig", "RunHandle", "SweepService"]


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Execution knobs for the resident scheduler."""

    #: Concurrent jobs in flight across all runs (each in its own
    #: crash-isolated worker process).
    workers: int = 2
    #: Extra attempts after the first failure of a retryable kind.
    retries: int = 2
    #: Base of the exponential retry backoff, seconds.
    backoff_s: float = 0.1
    #: Cap on the exponential backoff, seconds (jittered below it).
    backoff_max_s: float = 5.0
    #: Whether a timed-out job is retried (default: terminal).
    retry_timeouts: bool = False
    #: Cancellation/deadline poll granularity inside a job, seconds.
    poll_s: float = 0.05
    #: Watchdog heartbeat deadline, seconds; None disarms the watchdog.
    heartbeat_s: float | None = None
    #: Consecutive crashes before a fingerprint is quarantined.  A
    #: resident multi-tenant service defaults this *on*: one poison
    #: design point must not burn every run's retry budget forever.
    quarantine_after: int = 3

    def resolved_workers(self) -> int:
        return max(1, self.workers)


class RunHandle:
    """Live view of one run: plan, lifecycle, events, terminal records."""

    def __init__(self, plan: SweepPlan, storage: ServiceStorage, *,
                 observer: Any | None = None) -> None:
        self.plan = plan
        self.machine = RunStateMachine()
        self._storage = storage
        #: Optional in-process metrics consumer (``envelope``/``record``
        #: methods — see :class:`repro.dash.MetricsAggregator`).  Gated
        #: ``is not None`` like faults/telemetry/chaos: the default
        #: ``None`` path is observation-free.
        self._observer = observer
        self._started = time.monotonic()
        #: Wire envelopes, in emission order (``seq`` is 1-based).
        self.events: list[dict[str, Any]] = []
        self._subscribers: list[asyncio.Queue] = []
        #: Terminal record per job index — the one-terminal-per-job map.
        self.records: dict[int, dict[str, Any]] = {}
        #: Job indexes a worker has picked up (superset of in-flight).
        self.claimed: set[int] = set()
        #: Cooperative cancel flags of in-flight jobs, by index.
        self.cancel_flags: dict[int, threading.Event] = {}
        self.cancel_requested = False
        self.succeeded = 0
        self.failed = 0
        self.cancelled = 0
        self.cache_hits = 0
        self.quarantined = 0

    # -- event stream --------------------------------------------------

    def emit(self, event: SweepEvent) -> dict[str, Any]:
        envelope = encode_event(event, seq=len(self.events) + 1,
                                run_id=self.plan.run_id)
        self.events.append(envelope)
        self._storage.append_event(self.plan.run_id, envelope)
        if self._observer is not None:
            # After persistence, before fan-out: the observer sees
            # exactly the envelopes an offline replay of the event log
            # reads back, in the same order.
            self._observer.envelope(envelope)
        closing = isinstance(event, RunFinished)
        for queue in self._subscribers:
            queue.put_nowait(envelope)
            if closing:
                queue.put_nowait(None)
        if closing:
            self._subscribers.clear()
        return envelope

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        if self.machine.terminal:
            queue.put_nowait(None)  # stream over; history has the rest
        else:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    # -- accounting ----------------------------------------------------

    def finish_job(self, index: int, record: dict[str, Any]) -> None:
        if index in self.records:
            raise ServeError(
                f"job {index} of run {self.plan.run_id} produced a "
                "second terminal record"
            )
        self.records[index] = record
        if record.get("cache_hit"):
            self.cache_hits += 1
        if record.get("kind") == "result":
            self.succeeded += 1
        elif record.get("failure", {}).get("kind") == "cancelled":
            self.cancelled += 1
        else:
            if record.get("failure", {}).get("kind") == "quarantined":
                self.quarantined += 1  # a failure, separately counted
            self.failed += 1
        if self._observer is not None:
            # The one-terminal-record-per-job narrowest point: every
            # record — executed, failed, or cache hit — passes exactly
            # once, in the same synchronous block as its store append,
            # so the live fold order equals the ``results.jsonl`` order.
            self._observer.record(record)

    @property
    def done(self) -> int:
        return len(self.records)

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def info(self) -> dict[str, Any]:
        return {
            **self.plan.as_dict(),
            "state": self.machine.state.value,
            "status": self.machine.status,
            "done": self.done,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "quarantined": self.quarantined,
        }


class SweepService:
    """Accept, schedule, execute, and narrate sweeps until told to stop."""

    def __init__(self, storage: ServiceStorage,
                 config: ServiceConfig = ServiceConfig(), *,
                 chaos: ChaosInjector | None = None,
                 observer: Any | None = None) -> None:
        self.storage = storage
        self.config = config
        self.chaos = chaos
        #: Metrics consumer threaded into every run handle (see
        #: :class:`RunHandle`); ``None`` keeps the service observation-
        #: free, the same contract as ``chaos=None``.
        self.observer = observer
        #: Wall-clock service start (``/healthz`` ``started_at``); None
        #: until :meth:`start`.
        self.started_at: float | None = None
        self._started_mono: float | None = None
        self._quarantine = QuarantineLedger(config.quarantine_after)
        self._runs: dict[str, RunHandle] = {}
        #: (-priority, admission seq, run_id, job index) min-heap.
        self._heap: list[tuple[int, int, str, int]] = []
        self._ticket = itertools.count()
        self._wakeup = asyncio.Event()
        #: fingerprint -> future resolving to the primary's result
        #: record (or None on failure) — the in-flight dedup table.
        self._inflight: dict[str, asyncio.Future] = {}
        self._workers: list[asyncio.Task] = []
        self._accepting = True
        self._stopping = False

    # -- lifecycle of the service itself -------------------------------

    async def start(self) -> None:
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        count = self.config.resolved_workers()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"sweep-worker-{i}")
            for i in range(count)
        ]

    async def stop(self, *, drain: bool = True) -> None:
        """Refuse new work, settle existing work, stop the workers.

        ``drain=True`` executes everything already queued to its normal
        terminal record; ``drain=False`` cancels every live run first —
        either way no run is left non-terminal and no worker process
        outlives the service.
        """
        self._accepting = False
        if not drain:
            for run_id in list(self._runs):
                self.cancel(run_id, reason="shutdown")
        self._stopping = True
        self._wakeup.set()
        if self._workers:
            await asyncio.gather(*self._workers)
        self._workers = []

    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def uptime_s(self) -> float | None:
        """Seconds since :meth:`start`, monotonic; None before start."""
        if self._started_mono is None:
            return None
        return time.monotonic() - self._started_mono

    # -- the public API the HTTP layer calls ---------------------------

    async def submit(self, spec_data: Mapping[str, Any], *,
                     tenant: str = "", priority: int = 0) -> RunHandle:
        if not self._accepting:
            raise ServeError("service is draining; not accepting runs")
        run_id = uuid.uuid4().hex[:12]
        # Plan compilation builds application graphs to fingerprint
        # them — off the event loop, like every other heavy step.
        plan = await asyncio.to_thread(
            SweepPlan.compile, dict(spec_data), run_id=run_id,
            tenant=tenant, priority=priority, created=time.time(),
        )
        handle = RunHandle(plan, self.storage, observer=self.observer)
        self._runs[run_id] = handle
        handle.emit(RunAccepted(plan.name, run_id=run_id, total=plan.total,
                                priority=plan.priority, tenant=plan.tenant))
        handle.machine.advance(RunState.QUEUED)
        handle.emit(RunStateChanged(plan.name, run_id=run_id,
                                    state=RunState.QUEUED.value))
        self.storage.register({**plan.as_dict(), "status": "accepted"})
        for index in range(plan.total):
            heapq.heappush(
                self._heap,
                (-plan.priority, next(self._ticket), run_id, index),
            )
        self._wakeup.set()
        return handle

    def run(self, run_id: str) -> RunHandle:
        handle = self._runs.get(run_id)
        if handle is None:
            raise ServeError(f"unknown run {run_id!r}")
        return handle

    def runs(self) -> list[RunHandle]:
        return list(self._runs.values())

    def cancel(self, run_id: str, *, reason: str = "cancel") -> RunHandle:
        """Request cancellation; every job reaches a terminal record.

        Synchronous on purpose: all it does is flip flags, settle jobs
        no worker has claimed, and let in-flight workers observe their
        cancel events — safe from any point in the event loop.
        ``reason`` travels on the :class:`RunStateChanged` event so
        observers can tell a client cancel from a service shutdown.
        """
        handle = self.run(run_id)
        if handle.machine.terminal or handle.cancel_requested:
            return handle
        handle.cancel_requested = True
        handle.machine.advance(RunState.DRAINING)
        handle.emit(RunStateChanged(handle.plan.name, run_id=run_id,
                                    state=RunState.DRAINING.value,
                                    reason=reason))
        for flag in handle.cancel_flags.values():
            flag.set()
        for index in range(handle.plan.total):
            if index not in handle.records and index not in handle.claimed:
                self._finish_job_cancelled(handle, index,
                                           "cancelled while queued")
        self._maybe_finish_run(handle)
        return handle

    async def watch(self, run_id: str,
                    since: int = 0) -> AsyncIterator[dict[str, Any]]:
        """Replay a run's envelopes from ``since`` then follow it live;
        the stream always ends at the run's single terminal event."""
        handle = self.run(run_id)
        queue = handle.subscribe()
        try:
            last = since
            for envelope in list(handle.events):
                if envelope["seq"] > last:
                    last = envelope["seq"]
                    yield envelope
                    if envelope["event"] == "RunFinished":
                        return
            while True:
                envelope = await queue.get()
                if envelope is None:
                    return
                if envelope["seq"] <= last:
                    continue
                last = envelope["seq"]
                yield envelope
                if envelope["event"] == "RunFinished":
                    return
        finally:
            handle.unsubscribe(queue)

    # -- the worker loop -----------------------------------------------

    async def _next_entry(self) -> tuple[RunHandle, int] | None:
        while True:
            while self._heap:
                _, _, run_id, index = heapq.heappop(self._heap)
                handle = self._runs[run_id]
                if index in handle.records or index in handle.claimed:
                    continue  # settled by cancel, or a requeued duplicate
                handle.claimed.add(index)
                return handle, index
            if self._stopping:
                return None
            self._wakeup.clear()
            if self._heap or self._stopping:
                continue
            await self._wakeup.wait()

    async def _worker_loop(self) -> None:
        while True:
            entry = await self._next_entry()
            if entry is None:
                return
            handle, index = entry
            try:
                await self._run_entry(handle, index)
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                # A scheduler bug must not wedge the service: charge the
                # job a terminal failure and keep serving.
                if index not in handle.records:
                    self._finish_job_failed(
                        handle, index, "error",
                        f"scheduler error: {type(exc).__name__}: {exc}",
                        attempts=1,
                    )
                self._maybe_finish_run(handle)

    async def _run_entry(self, handle: RunHandle, index: int) -> None:
        job = handle.plan.jobs[index]
        fingerprint = handle.plan.fingerprints[index]
        if handle.machine.state is RunState.QUEUED:
            handle.machine.advance(RunState.EXECUTING)
            handle.emit(RunStateChanged(handle.plan.name,
                                        run_id=handle.plan.run_id,
                                        state=RunState.EXECUTING.value))
        if handle.cancel_requested:
            self._finish_job_cancelled(handle, index,
                                       "cancelled before start")
            self._maybe_finish_run(handle)
            return

        cached = await asyncio.to_thread(self.storage.cache.get, fingerprint)
        if cached is None:
            cached = await self._await_inflight(handle, fingerprint)
        if handle.cancel_requested and cached is None:
            self._finish_job_cancelled(handle, index,
                                       "cancelled before start")
            self._maybe_finish_run(handle)
            return
        if cached is not None:
            handle.emit(JobCacheHit(job.label, fingerprint=fingerprint))
            handle.finish_job(index, {**cached, "cache_hit": True})
            self.storage.store.append({**cached, "cache_hit": True})
            self._maybe_finish_run(handle)
            return

        parked = self._quarantine.reason(fingerprint)
        if parked is not None:
            # A fingerprint that crash-looped past its budget in *any*
            # run is parked service-wide: terminal record, no execution,
            # no retry budget spent.
            self._finish_job_quarantined(handle, index, parked,
                                         attempts=0)
            self._maybe_finish_run(handle)
            return

        await self._execute(handle, index, job, fingerprint)
        self._maybe_finish_run(handle)

    async def _await_inflight(self, handle: RunHandle,
                              fingerprint: str) -> dict[str, Any] | None:
        """Ride on a concurrent execution of the same fingerprint.

        Returns its result record (a dedup hit), or None when there is
        no in-flight primary — or it failed, in which case this job
        falls through and executes itself.
        """
        while True:
            future = self._inflight.get(fingerprint)
            if future is None:
                return None
            record = await asyncio.shield(future)
            if record is not None:
                return record

    async def _execute(self, handle: RunHandle, index: int, job: Job,
                       fingerprint: str) -> None:
        loop = asyncio.get_running_loop()
        flag = threading.Event()
        if handle.cancel_requested:
            flag.set()
        handle.cancel_flags[index] = flag
        future: asyncio.Future = loop.create_future()
        self._inflight[fingerprint] = future
        attempt = 1
        try:
            while True:
                handle.emit(JobStarted(job.label, attempt=attempt))
                chaos_action = None
                if self.chaos is not None:
                    chaos_action = self.chaos.worker_action(
                        fingerprint, attempt, job.label,
                    )
                payload = await asyncio.to_thread(
                    run_job_isolated, job, cancel=flag,
                    poll_s=self.config.poll_s,
                    heartbeat_s=self.config.heartbeat_s,
                    chaos_action=chaos_action,
                )
                if payload.get("ok"):
                    self._quarantine.clear(fingerprint)
                    record = self._base_record(handle, job, fingerprint)
                    record.update(kind="result", attempts=attempt,
                                  stats=payload["stats"])
                    await asyncio.to_thread(
                        self.storage.cache.put, fingerprint, record
                    )
                    self.storage.store.append(record)
                    stats = payload["stats"]
                    handle.finish_job(index, record)
                    handle.emit(JobFinished(
                        job.label,
                        elapsed_s=stats.get("elapsed_s", 0.0),
                        meets=bool(stats.get("meets")),
                        processor_count=int(stats.get("processor_count", 0)),
                    ))
                    future.set_result(record)
                    return
                kind = payload.get("kind", "error")
                message = payload.get("message", "unknown failure")
                if kind == "cancelled":
                    self._finish_job_cancelled(handle, index, message)
                    return
                if flag.is_set() or handle.cancel_requested:
                    # Cancel raced the failure — e.g. the watchdog
                    # killed the worker in the same poll window the
                    # cancel flag went up, so the payload reads
                    # "crash".  The user asked for cancellation:
                    # honouring the crash with a retry would resurrect
                    # a cancelled job (and its run) from the dead.
                    self._finish_job_cancelled(
                        handle, index,
                        f"cancelled during attempt ({kind}: {message})",
                    )
                    return
                if kind == "crash":
                    parked = self._quarantine.record_crash(fingerprint,
                                                           message)
                    if parked is not None:
                        self._finish_job_quarantined(handle, index,
                                                     parked,
                                                     attempts=attempt)
                        return
                retryable = bool(payload.get("retryable", False)) or (
                    kind == "timeout" and self.config.retry_timeouts
                )
                if retryable and attempt <= self.config.retries:
                    delay = backoff_delay(attempt, self.config.backoff_s,
                                          self.config.backoff_max_s,
                                          key=fingerprint)
                    handle.emit(JobRetried(job.label, attempt=attempt,
                                           reason=f"{kind}: {message}",
                                           delay_s=delay))
                    attempt += 1
                    # Sleep in poll_s slices so a cancel arriving
                    # mid-backoff settles the job within one slice
                    # instead of after the full (possibly capped but
                    # multi-second) delay.
                    slept = 0.0
                    while (slept < delay and not flag.is_set()
                            and not handle.cancel_requested):
                        step = min(self.config.poll_s, delay - slept)
                        await asyncio.sleep(step)
                        slept += step
                    if flag.is_set() or handle.cancel_requested:
                        self._finish_job_cancelled(
                            handle, index, "cancelled during retry backoff"
                        )
                        return
                    continue
                self._finish_job_failed(handle, index, kind, message,
                                        attempts=attempt)
                return
        finally:
            self._inflight.pop(fingerprint, None)
            handle.cancel_flags.pop(index, None)
            if not future.done():
                future.set_result(None)  # wake duplicates; they re-check

    # -- terminal records ----------------------------------------------

    def _base_record(self, handle: RunHandle, job: Job,
                     fingerprint: str) -> dict[str, Any]:
        record = {
            "result_schema": RESULT_SCHEMA,
            "sweep": job.sweep,
            "run": handle.plan.run_id,
            "tenant": handle.plan.tenant,
            "kind": "",
            "label": job.label,
            "fingerprint": fingerprint,
            "job": job.to_dict(),
        }
        if self.chaos is not None:
            # Results produced under injected faults are marked so an
            # analysis never mistakes a chaos run for a clean one.
            record["chaos"] = True
        return record

    def _finish_job_failed(self, handle: RunHandle, index: int, kind: str,
                           message: str, *, attempts: int) -> None:
        job = handle.plan.jobs[index]
        record = self._base_record(handle, job,
                                   handle.plan.fingerprints[index])
        record.update(kind="failure", attempts=attempts,
                      failure={"kind": kind, "message": message})
        self.storage.store.append(record)
        handle.finish_job(index, record)
        handle.emit(JobFailed(job.label, kind=kind, message=message,
                              attempts=attempts))

    def _finish_job_cancelled(self, handle: RunHandle, index: int,
                              message: str) -> None:
        self._finish_job_failed(handle, index, "cancelled", message,
                                attempts=1)

    def _finish_job_quarantined(self, handle: RunHandle, index: int,
                                reason: str, *, attempts: int) -> None:
        """Terminal ``quarantined`` record: the poison-job parking slot.

        ``attempts=0`` means the fingerprint was already parked and this
        job never executed at all."""
        job = handle.plan.jobs[index]
        record = self._base_record(handle, job,
                                   handle.plan.fingerprints[index])
        record.update(kind="failure", attempts=attempts, quarantined=True,
                      failure={"kind": "quarantined", "message": reason})
        self.storage.store.append(record)
        handle.finish_job(index, record)
        handle.emit(JobFailed(job.label, kind="quarantined",
                              message=reason, attempts=attempts))

    def _maybe_finish_run(self, handle: RunHandle) -> None:
        if handle.machine.terminal or handle.done != handle.plan.total:
            return
        if handle.cancel_requested or handle.cancelled:
            status = "cancelled"
        elif handle.failed:
            status = "failed"
        else:
            status = "succeeded"
        handle.machine.finish(status)
        handle.emit(RunFinished(
            handle.plan.name,
            run_id=handle.plan.run_id,
            status=status,
            total=handle.plan.total,
            succeeded=handle.succeeded,
            failed=handle.failed,
            cancelled=handle.cancelled,
            cache_hits=handle.cache_hits,
            elapsed_s=handle.elapsed_s,
        ))
        self.storage.register({
            "run": handle.plan.run_id,
            "status": status,
            "done": handle.done,
            "succeeded": handle.succeeded,
            "failed": handle.failed,
            "cancelled": handle.cancelled,
            "cache_hits": handle.cache_hits,
            "elapsed_s": handle.elapsed_s,
        })
