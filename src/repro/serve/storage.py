"""On-disk layout of a service data directory.

::

    <data_dir>/
      cache/               # sharded content-addressed result cache,
                           #   shared by every tenant and every restart
      results.jsonl        # append-only JSONL store of terminal records
      runs.jsonl           # run registry: one line per admission and
                           #   one per terminal status (restart history)
      events/<run>.ndjson  # full event stream of each run, replayable

The cache and store are the *same* classes the one-shot ``repro
explore`` path uses — which is the whole resumability story: a service
restart loses only in-memory state, and resubmitting a spec finds every
completed job's fingerprint already cached and executes just the
remainder.  Nothing here is service-private magic.

The optional ``chaos`` injector (see :mod:`repro.chaos`) is threaded
through to both: the cache then corrupts or truncates entries at write
time and the store tears appends, exercising exactly the recovery paths
(checksum quarantine, torn-tail repair) that real disk failures need.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..explore.cache import ResultCache
from ..explore.store import ResultStore

__all__ = ["ServiceStorage"]


class ServiceStorage:
    """All durable state of one service instance."""

    def __init__(self, root: str | os.PathLike[str], *,
                 chaos: Any | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.root / "cache", chaos=chaos)
        self.store = ResultStore(self.root / "results.jsonl", chaos=chaos)
        self.runs_path = self.root / "runs.jsonl"
        self.events_dir = self.root / "events"
        self.events_dir.mkdir(exist_ok=True)

    # -- per-run event logs --------------------------------------------

    def event_log_path(self, run_id: str) -> Path:
        return self.events_dir / f"{run_id}.ndjson"

    def append_event(self, run_id: str, envelope: dict[str, Any]) -> None:
        with open(self.event_log_path(run_id), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(envelope, default=str) + "\n")

    def read_events(self, run_id: str) -> list[dict[str, Any]]:
        path = self.event_log_path(run_id)
        if not path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn final line from a killed service
        return out

    # -- the run registry ----------------------------------------------

    def register(self, entry: dict[str, Any]) -> None:
        """Append one registry line (admission or terminal status)."""
        with open(self.runs_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, default=str) + "\n")

    def registry(self) -> list[dict[str, Any]]:
        """Latest registry entry per run id, admission order preserved."""
        if not self.runs_path.exists():
            return []
        latest: dict[str, dict[str, Any]] = {}
        with open(self.runs_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                run_id = entry.get("run")
                if isinstance(run_id, str) and run_id:
                    latest[run_id] = {**latest.get(run_id, {}), **entry}
        return list(latest.values())

    # -- maintenance ---------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Bound long-lived state: drop superseded store records and
        migrate any pre-sharding flat cache entries into their shards."""
        stats = self.store.compact()
        stats["cache_migrated"] = self.cache.migrate_flat_entries()
        return stats
