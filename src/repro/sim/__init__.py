"""Timing-accurate functional simulator and untimed golden executor.

Two interchangeable event loops live here: the optimized hot path
(:mod:`.simulator`) and the frozen seed implementation
(:mod:`.reference`), which the conformance suite proves observably
identical and the benchmark suite measures speedups against.
"""

from .functional import FunctionalResult, run_functional
from .reference import ReferenceSimulator, reference_simulate
from .runtime import Channel, RuntimeKernel, build_runtime
from .simulator import (
    BudgetOverrun,
    SimulationOptions,
    SimulationResult,
    Simulator,
    simulate,
)
from .stats import ProcessorStats, RealTimeVerdict, UtilizationSummary
from .trace import (
    TraceEvent,
    busy_time_by_processor,
    event_as_dict,
    gantt,
    trace_digest,
)

__all__ = [
    "FunctionalResult",
    "run_functional",
    "Channel",
    "RuntimeKernel",
    "build_runtime",
    "BudgetOverrun",
    "SimulationOptions",
    "SimulationResult",
    "Simulator",
    "simulate",
    "ReferenceSimulator",
    "reference_simulate",
    "ProcessorStats",
    "RealTimeVerdict",
    "UtilizationSummary",
    "TraceEvent",
    "busy_time_by_processor",
    "event_as_dict",
    "gantt",
    "trace_digest",
]
