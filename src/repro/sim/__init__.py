"""Timing-accurate functional simulator and untimed golden executor.

Three interchangeable execution engines live here: the optimized hot
path (:mod:`.simulator`), the quasi-static schedule replay engine
(:mod:`.replay`, opt-in via ``SimulationOptions(replay=True)``), and the
frozen seed implementation (:mod:`.reference`).  The conformance and
differential suites prove all three observably identical; the benchmark
suite measures speedups against the reference.
"""

from .functional import FunctionalResult, run_functional
from .reference import ReferenceSimulator, reference_simulate
from .replay import ReplayStats
from .runtime import Channel, RuntimeKernel, build_runtime
from .simulator import (
    BudgetOverrun,
    SimulationOptions,
    SimulationResult,
    Simulator,
    simulate,
)
from .stats import ProcessorStats, RealTimeVerdict, UtilizationSummary
from .trace import (
    TraceEvent,
    busy_time_by_processor,
    event_as_dict,
    gantt,
    trace_digest,
)

__all__ = [
    "FunctionalResult",
    "run_functional",
    "Channel",
    "RuntimeKernel",
    "build_runtime",
    "BudgetOverrun",
    "SimulationOptions",
    "SimulationResult",
    "Simulator",
    "simulate",
    "ReferenceSimulator",
    "reference_simulate",
    "ReplayStats",
    "ProcessorStats",
    "RealTimeVerdict",
    "UtilizationSummary",
    "TraceEvent",
    "busy_time_by_processor",
    "event_as_dict",
    "gantt",
    "trace_digest",
]
