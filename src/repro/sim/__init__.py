"""Timing-accurate functional simulator and untimed golden executor."""

from .functional import FunctionalResult, run_functional
from .runtime import Channel, RuntimeKernel, build_runtime
from .simulator import (
    BudgetOverrun,
    SimulationOptions,
    SimulationResult,
    Simulator,
    simulate,
)
from .stats import ProcessorStats, RealTimeVerdict, UtilizationSummary
from .trace import TraceEvent, busy_time_by_processor, gantt

__all__ = [
    "FunctionalResult",
    "run_functional",
    "Channel",
    "RuntimeKernel",
    "build_runtime",
    "BudgetOverrun",
    "SimulationOptions",
    "SimulationResult",
    "Simulator",
    "simulate",
    "ProcessorStats",
    "RealTimeVerdict",
    "UtilizationSummary",
    "TraceEvent",
    "busy_time_by_processor",
    "gantt",
]
