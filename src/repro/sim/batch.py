"""Batched quasi-static execution of compiled replay periods.

PR 7's replay engine executes a locked period as a static op walk but
still calls every Python kernel body once per firing — by then ~half of
replay wall time.  The period *is* a static firing sequence, which is
exactly the quasi-static shape StreamBlocks exploits when it fuses actor
firings into pipelines: this module compiles each period's data-method
firings into per-kernel groups and, where the kernel opts in
(:meth:`Kernel.batch_accepts` / :meth:`Kernel.batched_apply`), runs the
whole period's worth of a body as one vectorized call.

The contract with the replay walk is strict DES-exactness:

* **Simulated time is untouched.**  Batched ops charge the plan's
  precomputed per-firing costs — the same floats the scalar good path
  charges — so makespans, utilization, and output times are
  byte-identical.  Only wall time drops.
* **Values are byte-identical.**  Every vectorized body is an exact
  axis-parallel transcription of its scalar loop (axis-reduction sums,
  not matmuls; ``np.partition`` along axis 1; vectorized
  ``searchsorted``), verified by the differential harness.
* **State mutations stay per-firing.**  A batch precomputes emissions
  but applies each firing's state mutation through a ``commit(i)``
  callback at that firing's op, in schedule order — so a mid-period
  demotion leaves exactly the state sequential execution would have.
* **Any surprise falls back to the scalar walk.**  The per-period
  :meth:`BatchPlan.prepare` re-validates every gathered input (object
  type, dtype, shape) and every predicted emission (count and ports)
  against the plan; one mismatch discards the whole batch *before
  anything is mutated* and the period executes per-firing — which
  reproduces the scalar engine's own cost-divergence demotions exactly.
  At each batched op the walk additionally checks the channel head *is*
  the predicted object before popping, demoting DES-exactly otherwise.

Compilation performs a symbolic dataflow walk over the execution plan:
per-channel produced-item references in push order (source prefetch
slots, carried-over completions, batched producers' emissions), pop
counters at every consume, then a fixpoint dropping any group that
consumes an unpredictable slot, and a topological order so producers
batch before their consumers inside one period.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FORWARD_OTHER", "BatchResult", "BatchPlan", "compile_batch_plan"]

#: Sentinel passed to :meth:`Kernel.batch_accepts` in ``others`` when the
#: period contains automatic token forwards for the kernel (forwards only
#: touch token bookkeeping, but the kernel gets to veto).
FORWARD_OTHER = "<forward>"

_F8 = np.dtype(np.float64)


class BatchResult:
    """Stand-in for ``FiringResult`` on batched EXEC ops.

    The replay walk's FINISH handler and the demotion path only consult
    ``.emissions``; cost fields are never read because batched ops charge
    the plan's precomputed values (a cost mismatch would have failed
    :meth:`BatchPlan.prepare` and fallen back to scalar execution).
    """

    __slots__ = ("emissions",)

    def __init__(self, emissions) -> None:
        self.emissions = emissions


class _Group:
    """One kernel's batched firings within the period, in schedule order."""

    __slots__ = (
        "kernel", "method", "n", "op_indices", "cports", "ports",
        "chans", "exp_counts", "exp_ports",
    )


#: Sentinel returned by ``_gather`` when a group's needed slot is
#: *structurally* unresolvable (opaque push, non-batched producer) —
#: the same slot recurs every period, so the group is pruned for good.
_DROP = object()


class BatchPlan:
    """Per-kernel firing groups compiled from one execution plan."""

    __slots__ = ("groups", "plan_len", "kernel_names", "dead")

    def _gather(self, g, results):
        """Collect one group's per-firing inputs from current channel state.

        Returns ``{port: [item, ...]}``, ``_DROP`` when a needed slot can
        never resolve (channel occupancy is steady across periods, so the
        same slot would fail every time — prune the group permanently),
        or ``None`` for a transient surprise (carry not in flight, wrong
        dtype/shape) that scalar-executes just this period.
        """
        inputs: dict[str, list] = {}
        for port, ch, ks, shape, refs in g.ports:
            occupancy = len(ch.items)
            entry = list(ch.items) if occupancy else None
            nrefs = len(refs)
            ilist = []
            for k in ks:
                if k < occupancy:
                    it = entry[k]
                else:
                    j = k - occupancy
                    if j >= nrefs:
                        return _DROP
                    ref = refs[j]
                    if ref is None:
                        return _DROP
                    tag = ref[0]
                    if tag == 2:
                        gid = ref[1]
                        ems_list = results[gid] if gid < len(results) else None
                        if ems_list is None:
                            return _DROP
                        it = ems_list[ref[2]][ref[3]][1]
                    elif tag == 0:
                        it = ref[1].buf[ref[2]][1]
                    else:
                        fr = ref[1].finish_result
                        if fr is None:
                            return None
                        ems = fr.emissions
                        if ref[2] >= len(ems):
                            return None
                        it = ems[ref[2]][1]
                if (
                    type(it) is not np.ndarray
                    or it.dtype != _F8
                    or it.shape != shape
                ):
                    return None
                ilist.append(it)
            inputs[port] = ilist
        return inputs

    def prepare(self):
        """Batch-execute every group against the *current* channel state.

        Called once per period, after source prefetch and before the op
        walk.  Returns a list parallel to the execution plan — entry
        ``(result, commit, i, predicted_items)`` at each batched op's
        index, ``None`` elsewhere — or ``None`` to run the whole period
        per-firing.  Nothing observable is mutated here: state changes
        happen via ``commit`` during the walk, so a ``None`` return (or a
        later demotion) leaves the simulation exactly where the scalar
        engine would be.
        """
        dead = self.dead
        if len(dead) == len(self.groups):
            return None
        results: list = []
        prepared: list = [None] * self.plan_len
        for gid, g in enumerate(self.groups):
            if gid in dead:
                results.append(None)
                continue
            inputs = self._gather(g, results)
            if inputs is _DROP:
                dead.add(gid)
                results.append(None)
                continue
            if inputs is None:
                return None
            out = g.kernel.batched_apply(g.method, inputs)
            if out is None:
                return None
            ems_list, commit = out
            if len(ems_list) != g.n:
                return None
            exp_counts = g.exp_counts
            exp_ports = g.exp_ports
            for i in range(g.n):
                ems = ems_list[i]
                if len(ems) != exp_counts[i]:
                    return None
                pexp = exp_ports[i]
                for j, em in enumerate(ems):
                    if em[0] != pexp[j]:
                        return None
            results.append(ems_list)
            # Per-firing walk entries.  The (channel, predicted-item)
            # pairs let the walk peek and pop without port-name lookups;
            # the one- and two-port shapes cover every batchable kernel,
            # so the generic path is a formality.
            chans = g.chans
            brs = [BatchResult(e) for e in ems_list]
            if len(chans) == 1:
                ch0 = chans[0]
                il0 = inputs[g.cports[0]]
                for i, oi in enumerate(g.op_indices):
                    prepared[oi] = (brs[i], commit, i, ((ch0, il0[i]),))
            elif len(chans) == 2:
                ch0, ch1 = chans
                il0 = inputs[g.cports[0]]
                il1 = inputs[g.cports[1]]
                for i, oi in enumerate(g.op_indices):
                    prepared[oi] = (
                        brs[i], commit, i,
                        ((ch0, il0[i]), (ch1, il1[i])),
                    )
            else:
                ils = [inputs[p] for p in g.cports]
                for i, oi in enumerate(g.op_indices):
                    prepared[oi] = (
                        brs[i], commit, i,
                        tuple((c, il[i]) for c, il in zip(chans, ils)),
                    )
        if len(dead) == len(self.groups):
            return None
        return prepared


def _translate(ref, op_to_group):
    if ref is None:
        return None
    tag = ref[0]
    if tag == "s":
        return (0, ref[1], ref[2])
    if tag == "c":
        return (1, ref[1], ref[2])
    gi = op_to_group.get(ref[1])
    if gi is None:
        return None
    return (2, gi[0], gi[1], ref[2])


def compile_batch_plan(xplan) -> BatchPlan | None:
    """Symbolically execute ``xplan`` and group its batchable firings.

    Returns ``None`` when nothing in the period batches.  Op layouts are
    the replay engine's: EXEC ``(5, st, ps, firing, rebuild, ...costs...,
    esig, nemit)``, FIN ``(1, st, rel)``, SRC ``(0, source, count, rel)``,
    IO ``(6, st, entries)``.
    """
    # The completion carried across the period boundary is always the
    # kernel's *last* EXEC of the (periodic) plan, so its emission
    # signature names what a leading FINISH-without-EXEC delivers.
    last_esig: dict = {}
    for op in xplan:
        if op[0] == 5:
            last_esig[op[1]] = op[12]

    produced: dict[int, list] = {}   # channel id -> refs, in push order
    chan: dict[int, object] = {}
    poisoned: set[int] = set()       # channels with unknowable push counts
    pops: dict[int, int] = {}
    cand: dict = {}                  # st -> [(op_idx, firing, esig, slots)]
    others: dict = {}                # st -> non-candidate method names
    pending: dict = {}               # st -> (origin op index | None, esig)
    src_count: dict = {}

    def record_pops(st, cports):
        slots = []
        rin = st.rk.inputs
        for port in cports:
            ch = rin.get(port)
            if ch is None:
                return None
            cid = id(ch)
            chan[cid] = ch
            k = pops.get(cid, 0)
            pops[cid] = k + 1
            slots.append((cid, k))
        return slots

    def push(st, port, ref):
        for ch, _dst, _chk in st.out.get(port, ()):
            cid = id(ch)
            chan[cid] = ch
            produced.setdefault(cid, []).append(ref)

    for oi, op in enumerate(xplan):
        code = op[0]
        if code == 5:
            st = op[1]
            firing = op[3]
            if firing is not None:
                slots = record_pops(st, firing.consume_ports)
                if slots is None:
                    cand.pop(st, None)
                    others.setdefault(st, set()).add("<unwired>")
                else:
                    cand.setdefault(st, []).append((oi, firing, op[12], slots))
                pending[st] = (oi, op[12])
            else:
                rebuild = op[4]
                record_pops(st, rebuild[2])
                if rebuild[0] == "token" and rebuild[1] is not None:
                    others.setdefault(st, set()).add(rebuild[1].name)
                else:
                    others.setdefault(st, set()).add(FORWARD_OTHER)
                pending[st] = (None, op[12])
        elif code == 1:
            st = op[1]
            if st in pending:
                origin, esig = pending.pop(st)
            else:
                origin = -1
                esig = last_esig.get(st)
                if esig is None:
                    for chans in st.out.values():
                        for ch, _d, _c in chans:
                            poisoned.add(id(ch))
                    continue
            for e in range(0, len(esig), 2):
                if origin is None:
                    ref = None  # token/forward values exist only mid-walk
                elif origin == -1:
                    ref = ("c", st, e >> 1)
                else:
                    ref = ("x", origin, e >> 1)
                push(st, esig[e], ref)
        elif code == 0:
            src = op[1]
            base_k = src_count.get(src, 0)
            st = src.st
            for j in range(op[2]):
                push(st, "out", ("s", src, base_k + j))
            src_count[src] = base_k + op[2]
        elif code == 6:
            st = op[1]
            for firing, rebuild, esig, _nemit, _nout in op[2]:
                cports = (
                    firing.consume_ports if firing is not None else rebuild[2]
                )
                record_pops(st, cports)
                for e in range(0, len(esig), 2):
                    push(st, esig[e], None)

    # ------------------------------------------------------------------
    # Candidate groups: one frozen data firing per kernel, data-only
    # emissions, and the kernel accepting its in-period company.
    # ------------------------------------------------------------------
    groups: dict = {}
    for st, ops_list in cand.items():
        f0 = ops_list[0][1]
        if f0.method is None or any(o[1] is not f0 for o in ops_list):
            continue
        bad = False
        for _oi, _f, esig, _slots in ops_list:
            for e in range(1, len(esig), 2):
                if esig[e]:
                    bad = True
                    break
            if bad:
                break
        if bad:
            continue
        oset = frozenset(others.get(st, ()))
        try:
            accepted = st.rk.kernel.batch_accepts(f0.method.name, oset)
        except Exception:
            accepted = False
        if accepted:
            groups[st] = ops_list

    # ------------------------------------------------------------------
    # Ordering: drop groups reading poisoned channels, then topologically
    # sort the rest by which *surviving* group pushed into each consumed
    # channel's prefix (period-start occupancy shifts which push lands in
    # which slot, so the whole prefix is a conservative dependency set).
    # Unresolvable prefix entries — opaque token pushes, non-batched
    # producers — do NOT drop the group here: prepare() sees the real
    # occupancy and prunes only groups whose *needed* slot is opaque.
    # A dependency cycle drops its members and retries the sort.
    # ------------------------------------------------------------------
    for st in list(groups):
        if any(
            cid in poisoned
            for _oi, _f, _esig, slots in groups[st]
            for cid, _k in slots
        ):
            del groups[st]
    order: list = []
    while True:
        if not groups:
            return None
        deps_map: dict = {}
        for st in groups:
            deps = set()
            for _oi, _f, _esig, slots in groups[st]:
                for cid, k in slots:
                    for ref in produced.get(cid, ())[: k + 1]:
                        if ref is not None and ref[0] == "x":
                            pst = xplan[ref[1]][1]
                            if pst is not st and pst in groups:
                                deps.add(pst)
            deps_map[st] = deps
        indeg = {st: len(deps_map[st]) for st in groups}
        rdeps: dict = {st: [] for st in groups}
        for st, deps in deps_map.items():
            for d in deps:
                rdeps[d].append(st)
        queue = [st for st in groups if indeg[st] == 0]
        order = []
        while queue:
            st = queue.pop()
            order.append(st)
            for c in rdeps[st]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    queue.append(c)
        if len(order) == len(groups):
            break
        for st in [s for s in groups if indeg[s] > 0]:
            del groups[st]

    # ------------------------------------------------------------------
    # Finalize: producers before consumers, refs translated to direct
    # (source buffer | carried completion | group result) indices.
    # ------------------------------------------------------------------
    op_to_group: dict[int, tuple[int, int]] = {}
    for gid, st in enumerate(order):
        for i, (oi, _f, _esig, _slots) in enumerate(groups[st]):
            op_to_group[oi] = (gid, i)

    plan_groups = []
    kernel_names = []
    for st in order:
        ops_list = groups[st]
        f0 = ops_list[0][1]
        kernel = st.rk.kernel
        cports = f0.consume_ports
        ports = []
        for j, port in enumerate(cports):
            cid = ops_list[0][3][j][0]
            ks = [o[3][j][1] for o in ops_list]
            spec = kernel.input_spec(port)
            refs = tuple(
                _translate(r, op_to_group)
                for r in produced.get(cid, ())[: max(ks) + 1]
            )
            ports.append(
                (port, chan[cid], ks, (spec.window.h, spec.window.w), refs)
            )
        g = _Group()
        g.kernel = kernel
        g.method = f0.method.name
        g.n = len(ops_list)
        g.op_indices = [o[0] for o in ops_list]
        g.cports = cports
        g.ports = tuple(ports)
        g.chans = tuple(p[1] for p in ports)
        g.exp_counts = [len(o[2]) // 2 for o in ops_list]
        g.exp_ports = [o[2][0::2] for o in ops_list]
        plan_groups.append(g)
        kernel_names.append(st.name)

    plan = BatchPlan()
    plan.groups = tuple(plan_groups)
    plan.plan_len = len(xplan)
    plan.kernel_names = tuple(kernel_names)
    plan.dead = set()
    return plan
