"""Untimed functional execution — the golden-model half of the simulator.

Runs a compiled application to quiescence with no notion of time: sources
inject all their traffic up front and kernels fire until no one can.  The
outputs must be identical to the timed simulation (scheduling changes
*when* firings happen, never *what* they compute), which the test suite
checks; it is also how functional correctness is asserted against numpy
references (median, convolution, histogram).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import SimulationError
from ..graph.app import ApplicationGraph
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..tokens import EndOfFrame, EndOfLine
from .runtime import Channel, RuntimeKernel, build_runtime

__all__ = ["FunctionalResult", "run_functional", "source_items"]

#: Hard stop for runaway kernels (a kernel emitting to itself, say).
_MAX_FIRINGS_FACTOR = 1000


def source_items(source: ApplicationInput, frames: int):
    """Yield the items an application input produces for ``frames`` frames.

    One element at a time in scan-line order, with end-of-line after each
    row and end-of-frame after the last row (Section II-C).
    """
    for f in range(frames):
        frame = source.frame(f)
        for y in range(source.height):
            for x in range(source.width):
                yield np.array([[frame[y, x]]])
            yield EndOfLine(frame=f, line=y)
        yield EndOfFrame(frame=f)


@dataclass(slots=True)
class FunctionalResult:
    """Outcome of a functional run."""

    app: ApplicationGraph
    frames: int
    #: Application output name -> everything it received, in order.
    outputs: Mapping[str, list[np.ndarray]]
    #: Kernel name -> firings executed.
    firings: Mapping[str, int]
    channels: list[Channel] = field(default_factory=list)
    #: Channels left non-empty at quiescence (excluding sinks) — normal for
    #: windowed pipelines mid-frame, useful when debugging deadlocks.
    unconsumed: list[str] = field(default_factory=list)

    def output(self, name: str) -> list[np.ndarray]:
        try:
            return list(self.outputs[name])
        except KeyError:
            raise SimulationError(f"no application output named {name!r}") from None

    def output_frame(
        self, name: str, frame: int, width: int, height: int
    ) -> np.ndarray:
        """Reassemble scan-line 1x1 chunks of one frame into an array."""
        chunks = self.output(name)
        per_frame = width * height
        start = frame * per_frame
        flat = [float(c[0, 0]) for c in chunks[start : start + per_frame]]
        if len(flat) != per_frame:
            raise SimulationError(
                f"output {name!r} holds {len(chunks) - start} chunks of "
                f"frame {frame}; expected {per_frame}"
            )
        return np.array(flat).reshape(height, width)


def _apply_emissions(rk: RuntimeKernel, emissions) -> None:
    for port, item in emissions:
        for channel in rk.outputs.get(port, ()):
            channel.push(item)


def run_functional(app: ApplicationGraph, frames: int = 1) -> FunctionalResult:
    """Execute ``app`` on ``frames`` input frames until quiescent."""
    if frames < 1:
        raise SimulationError("frames must be >= 1")
    runtimes, channels = build_runtime(app)

    # Startup: init methods fire first (histogram bin clears, feedback
    # primers), then constant sources (coefficients must precede data),
    # then the real-time inputs.
    for rk in runtimes.values():
        for result in rk.run_init():
            _apply_emissions(rk, result.emissions)
    for rk in runtimes.values():
        if isinstance(rk.kernel, ConstantSource):
            _apply_emissions(rk, [("out", rk.kernel.values.copy())])
    for rk in runtimes.values():
        if isinstance(rk.kernel, ApplicationInput):
            for item in source_items(rk.kernel, frames):
                _apply_emissions(rk, [("out", item)])

    order = app.topological_order()
    budget = _MAX_FIRINGS_FACTOR * frames * sum(
        max(len(ch.items), 1) for ch in channels
    ) + 10_000
    executed = 1
    total = 0
    while executed:
        executed = 0
        for name in order:
            rk = runtimes[name]
            while True:
                firing = rk.ready_firing()
                if firing is None:
                    break
                result = rk.execute(firing)
                _apply_emissions(rk, result.emissions)
                executed += 1
                total += 1
                if total > budget:
                    raise SimulationError(
                        f"functional run exceeded {budget} firings; likely "
                        "a livelock in a structural kernel FSM"
                    )

    leftovers = [
        f"{ch.src}.{ch.src_port}->{ch.dst}.{ch.dst_port} ({len(ch.items)})"
        for ch in channels
        if ch.items and not isinstance(
            runtimes[ch.dst].kernel, (ApplicationOutput,)
        )
    ]
    outputs = {
        name: list(rk.kernel.received)
        for name, rk in runtimes.items()
        if isinstance(rk.kernel, ApplicationOutput)
    }
    return FunctionalResult(
        app=app,
        frames=frames,
        outputs=outputs,
        firings={name: rk.firings for name, rk in runtimes.items()},
        channels=channels,
        unconsumed=leftovers,
    )
