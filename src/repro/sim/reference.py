"""The seed (pre-optimization) simulator event loop, kept verbatim.

This module preserves the original ``Simulator.run`` exactly as it
shipped before the hot-path overhaul: application inputs pre-push one
``_DELIVER`` heap event per element (``frames x H x W`` tuples up
front), every event pays dict lookups against the runtime tables, and
per-processor statistics accumulate through ``ProcessorStats`` objects.

It exists for two reasons:

* **differential conformance** — ``tests/test_sim_conformance.py`` runs
  both simulators on the Figure 13 applications and asserts the
  optimized loop is observably identical (stats, output times,
  violations, trace sequence, event counts);
* **benchmark baseline** — ``benchmarks/test_sim_hotpath.py`` measures
  the optimized loop's speedup against this one on the same machine and
  records both sides in ``BENCH_sim.json``.

Do not optimize this file; it is the fixed point the fast path is
measured and verified against.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

import numpy as np

from ..errors import FiringError, SimulationError
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..tokens import ControlToken
from ..transform.compile import CompiledApp
from .functional import source_items
from .runtime import (
    FORWARD_CYCLES,
    Firing,
    FiringResult,
    RuntimeKernel,
    build_runtime,
)
from .simulator import (
    _DELIVER,
    _FINISH,
    _POLL,
    BudgetOverrun,
    SimulationOptions,
    SimulationResult,
    _Violation,
)
from .stats import ProcessorStats, UtilizationSummary
from .trace import TraceEvent

__all__ = ["ReferenceSimulator", "reference_simulate"]


# ---------------------------------------------------------------------------
# Seed firing rules, copied verbatim from the pre-optimization
# RuntimeKernel.ready_firing/execute so the baseline does not inherit the
# runtime-table caches added by the hot-path overhaul.  Operating on the
# same RuntimeKernel instances keeps the two loops bit-comparable while
# exercising fully independent dispatch code.


def _seed_ready_firing(rk: RuntimeKernel) -> Firing | None:
    best: Firing | None = None
    best_seq = -1
    for port in rk._ports:
        channel = rk.inputs.get(port)
        if channel is None or not channel.items:
            continue
        head = channel.head()
        if isinstance(head, ControlToken):
            firing = _seed_token_firing(rk, port, head)
        else:
            firing = _seed_data_firing(rk, port)
        if firing is None:
            continue
        seq = min(
            rk.inputs[p].head_seq()
            for p in firing.consume_ports
            if p in rk.inputs and rk.inputs[p].items
        )
        if best is None or seq < best_seq:
            best, best_seq = firing, seq
    return best


def _seed_token_firing(rk: RuntimeKernel, port: str, token) -> Firing | None:
    if port in rk._transparent:
        return Firing(kind="forward", method=None, consume_ports=(port,),
                      token=token)
    handler = rk.kernel.token_method_for(port, type(token))
    if handler is not None:
        return Firing(
            kind="token", method=handler, consume_ports=(port,), token=token
        )
    method = rk._data_method[port]
    if method is None:
        return Firing(kind="forward", method=None, consume_ports=(port,),
                      token=token)
    for other in method.data_inputs:
        if other in rk._transparent:
            continue
        head = rk.inputs[other].head() if other in rk.inputs else None
        if not (
            isinstance(head, ControlToken)
            and type(head) is type(token)
            and head.frame == token.frame
        ):
            return None
    opaque = tuple(
        p for p in method.data_inputs if p not in rk._transparent
    )
    return Firing(
        kind="forward",
        method=method,
        consume_ports=opaque,
        token=token,
    )


def _seed_data_firing(rk: RuntimeKernel, port: str) -> Firing | None:
    method = rk._data_method[port]
    if method is None:
        raise FiringError(
            f"{rk.name}: data arrived on {port!r} which triggers no "
            "data method"
        )
    if method.selector is not None:
        selected = getattr(rk.kernel, method.selector)()
        if selected != port:
            return None
        return Firing(kind="method", method=method, consume_ports=(port,))
    for other in method.data_inputs:
        head = rk.inputs[other].head() if other in rk.inputs else None
        if head is None or isinstance(head, ControlToken):
            return None
    return Firing(kind="method", method=method,
                  consume_ports=method.data_inputs)


def _seed_execute(rk: RuntimeKernel, firing: Firing) -> FiringResult:
    from ..graph.kernel import FiringContext

    rk.firings += 1
    if firing.kind == "forward":
        return _seed_execute_forward(rk, firing)

    method = firing.method
    assert method is not None
    consumed: dict[str, np.ndarray] = {}
    token = None
    for port in firing.consume_ports:
        item = rk.inputs[port].pop()
        if isinstance(item, ControlToken):
            token = item
        else:
            consumed[port] = item
    ctx = FiringContext(method=method, inputs=consumed, token=token)
    rk.kernel.bind_context(ctx)
    try:
        getattr(rk.kernel, method.name)()
    finally:
        ctx = rk.kernel.release_context()

    emissions = list(ctx.writes)
    emissions.extend(ctx.token_writes)
    if (
        firing.kind == "token"
        and token is not None
        and rk.kernel.forwards_token(method)
    ):
        for out in method.outputs:
            emissions.append((out, token))
    if rk.kernel.charges_element_io:
        elements_read = ctx.elements_read
        elements_written = ctx.elements_written
        if (
            rk.kernel.sequential_input_reuse
            and firing.kind == "method"
            and len(consumed) == 1
        ):
            port = next(iter(consumed))
            spec = rk.kernel.input_spec(port)
            fresh = spec.step.x * spec.window.h
            elements_read = min(elements_read, fresh)
    else:
        elements_read = len(consumed)
        elements_written = len(ctx.writes)
    if ctx.dynamic_cycles is not None:
        cycles = ctx.dynamic_cycles
        dynamic = True
    else:
        cycles = method.cost.cycles
        dynamic = False
    return FiringResult(
        kernel=rk.name,
        label=method.name,
        cycles=cycles,
        elements_read=elements_read,
        elements_written=elements_written,
        emissions=emissions,
        declared_cycles=method.cost.cycles,
        dynamic=dynamic,
    )


def _seed_execute_forward(rk: RuntimeKernel, firing: Firing) -> FiringResult:
    token = firing.token
    assert token is not None
    for port in firing.consume_ports:
        popped = rk.inputs[port].pop()
        assert isinstance(popped, ControlToken)
    emissions: list = []
    if firing.method is not None:
        if rk.kernel.should_forward_token(firing.method, token):
            for out in firing.method.outputs:
                emissions.append((out, token))
        rk.kernel.on_token_forwarded(firing.method, token)
    return FiringResult(
        kernel=rk.name,
        label="<forward>",
        cycles=FORWARD_CYCLES,
        elements_read=0,
        elements_written=0,
        emissions=emissions,
    )


class ReferenceSimulator:
    """The seed discrete-event loop, preserved for differential testing."""

    def __init__(self, graph, mapping, processor, options=None) -> None:
        self.graph = graph
        self.mapping = mapping
        self.processor = processor
        self.options = options if options is not None else SimulationOptions()

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        runtimes, channels = build_runtime(self.graph)
        opts = self.options
        events: list = []
        seq = itertools.count()
        peak_heap = 0

        proc_of: dict[str, int | None] = {
            name: self.mapping.processor_of(name) for name in self.graph.kernels
        }
        proc_stats: dict[int, ProcessorStats] = {}
        proc_free_at: dict[int, float] = {}
        proc_pending: dict[int, deque] = {}
        for name, proc in proc_of.items():
            if proc is None:
                continue
            proc_stats.setdefault(proc, ProcessorStats(index=proc))
            proc_stats[proc].kernels.add(name)
            proc_free_at.setdefault(proc, 0.0)
            proc_pending.setdefault(proc, deque())
        kernel_running: dict[str, bool] = {name: False for name in runtimes}

        input_channels = {
            id(ch)
            for ch in channels
            if isinstance(runtimes[ch.src].kernel, ApplicationInput)
        }
        overrides = opts.channel_capacity_overrides or {}
        for ch in channels:
            key = (ch.src, ch.src_port, ch.dst, ch.dst_port)
            if key in overrides:
                ch.capacity = overrides[key]
            elif (opts.channel_capacity is not None
                  and id(ch) not in input_channels):
                ch.capacity = opts.channel_capacity
        violations: list[_Violation] = []
        trace: list[TraceEvent] = []
        budget_overruns: list[BudgetOverrun] = []
        output_times: dict[str, list[float]] = {
            name: []
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }

        queued_polls: dict[str, float] = {}

        def push(time: float, kind: int, payload) -> None:
            nonlocal peak_heap
            if kind == _POLL:
                if queued_polls.get(payload) == time:
                    return
                queued_polls[payload] = time
            heapq.heappush(events, (time, kind, next(seq), payload))
            if len(events) > peak_heap:
                peak_heap = len(events)

        def deliver(time: float, rk_src: RuntimeKernel, port: str, item) -> None:
            for ch in rk_src.outputs.get(port, ()):
                ch.push(item)
                if (
                    id(ch) in input_channels
                    and len(ch.items) > opts.input_channel_capacity
                ):
                    violations.append(
                        _Violation(
                            time=time,
                            where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                            detail="input overran its consumer",
                        )
                    )
                push(time, _POLL, ch.dst)

        # --- startup: init methods, then source schedules ---------------
        for name, rk in runtimes.items():
            for result in rk.run_init():
                for port, item in result.emissions:
                    deliver(0.0, rk, port, item)

        horizon = 0.0
        for name, rk in runtimes.items():
            if isinstance(rk.kernel, ConstantSource):
                push(0.0, _DELIVER, (name, "out", rk.kernel.values.copy()))
        for name, rk in runtimes.items():
            kernel = rk.kernel
            if isinstance(kernel, ApplicationInput):
                period = kernel.element_period
                t = 0.0
                for item in source_items(kernel, opts.frames):
                    push(t, _DELIVER, (name, "out", item))
                    if isinstance(item, np.ndarray):
                        t += period
                horizon = max(horizon, opts.frames / kernel.rate_hz)

        # --- main loop ---------------------------------------------------
        makespan = 0.0
        processed = 0
        while events:
            time, kind, _, payload = heapq.heappop(events)
            makespan = max(makespan, time)
            processed += 1
            if processed > opts.max_events:
                raise SimulationError(
                    f"simulation exceeded {opts.max_events} events; "
                    "the application is likely livelocked"
                )
            if kind == _DELIVER:
                src_name, port, item = payload
                deliver(time, runtimes[src_name], port, item)
            elif kind == _POLL:
                if queued_polls.get(payload) == time:
                    del queued_polls[payload]
                self._try_fire(
                    time, runtimes[payload], runtimes, proc_of, proc_stats,
                    proc_free_at, proc_pending, kernel_running, push,
                    output_times, trace, budget_overruns,
                )
            else:  # _FINISH
                kernel_name, result = payload
                rk = runtimes[kernel_name]
                kernel_running[kernel_name] = False
                for port, item in result.emissions:
                    deliver(time, rk, port, item)
                proc = proc_of[kernel_name]
                if proc is not None:
                    pending = proc_pending[proc]
                    pending.append(kernel_name)
                    while pending:
                        nxt = pending.popleft()
                        push(time, _POLL, nxt)
                        break
                    for other in list(pending):
                        push(time, _POLL, other)
                    pending.clear()

        duration = max(makespan, horizon)
        utilization = UtilizationSummary(
            duration_s=duration, processors=dict(proc_stats)
        )
        outputs = {
            name: list(rk.kernel.received)
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }
        return SimulationResult(
            app=self.graph,
            options=opts,
            makespan_s=makespan,
            utilization=utilization,
            output_times=output_times,
            outputs=outputs,
            violations=violations,
            channels=channels,
            firings={name: rk.firings for name, rk in runtimes.items()},
            trace=trace,
            budget_overruns=budget_overruns,
            events_processed=processed,
            peak_heap=peak_heap,
        )

    # ------------------------------------------------------------------
    def _try_fire(
        self,
        time: float,
        rk: RuntimeKernel,
        runtimes: dict[str, RuntimeKernel],
        proc_of: dict[str, int | None],
        proc_stats: dict[int, ProcessorStats],
        proc_free_at: dict[int, float],
        proc_pending: dict[int, deque],
        kernel_running: dict[str, bool],
        push,
        output_times: dict[str, list[float]],
        trace: list[TraceEvent],
        budget_overruns: list[BudgetOverrun],
    ) -> None:
        name = rk.name
        if kernel_running[name]:
            return
        proc = proc_of[name]

        bounded = (
            self.options.channel_capacity is not None
            or bool(self.options.channel_capacity_overrides)
        )

        def wake_producers(firing) -> None:
            if not bounded:
                return
            for port in firing.consume_ports:
                ch = rk.inputs.get(port)
                if ch is not None and ch.capacity is not None:
                    push(time, _POLL, ch.src)

        if proc is None:
            while True:
                firing = _seed_ready_firing(rk)
                if firing is None:
                    return
                result = _seed_execute(rk, firing)
                wake_producers(firing)
                if isinstance(rk.kernel, ApplicationOutput):
                    arrivals = [
                        1 for p in firing.consume_ports
                    ] if firing.kind == "method" else []
                    for _ in arrivals:
                        output_times[name].append(time)
                for port, item in result.emissions:
                    for ch in rk.outputs.get(port, ()):
                        ch.push(item)
                        push(time, _POLL, ch.dst)

        else:
            if proc_free_at[proc] > time:
                if name not in proc_pending[proc]:
                    proc_pending[proc].append(name)
                return
            firing = _seed_ready_firing(rk)
            if firing is None:
                return
            if bounded and not all(
                ch.space_for(rk.kernel.max_emissions_per_firing)
                for chans in rk.outputs.values()
                for ch in chans
            ):
                return
            result = _seed_execute(rk, firing)
            wake_producers(firing)
            if result.dynamic and result.cycles > result.declared_cycles:
                budget_overruns.append(BudgetOverrun(
                    time=time, kernel=name, method=result.label,
                    declared_cycles=result.declared_cycles,
                    actual_cycles=result.cycles,
                ))
            read_s, run_s, write_s = self.processor.firing_time(
                result.cycles, result.elements_read, result.elements_written
            )
            duration = read_s + run_s + write_s
            stats = proc_stats[proc]
            stats.read_s += read_s
            stats.run_s += run_s
            stats.write_s += write_s
            stats.firings += 1
            proc_free_at[proc] = time + duration
            kernel_running[name] = True
            if self.options.trace:
                trace.append(TraceEvent(
                    start_s=time, processor=proc, kernel=name,
                    method=result.label, read_s=read_s, run_s=run_s,
                    write_s=write_s,
                ))
            push(time + duration, _FINISH, (name, result))


def reference_simulate(
    compiled: CompiledApp, options: SimulationOptions | None = None
) -> SimulationResult:
    """Simulate a compiled application with the preserved seed loop."""
    sim = ReferenceSimulator(
        compiled.graph, compiled.mapping, compiled.processor, options
    )
    return sim.run()
