"""Quasi-static schedule replay: execute whole steady-state periods per step.

The paper's applications are steady-state streaming graphs: after a
warm-up prefix the firing pattern repeats every line/frame period.  The
discrete-event loop in :mod:`.simulator` still pays one heap pop, one
readiness scan, and one poll-dedup per event.  This module removes that
cost for the periodic phase while staying **bit-identical** to the
reference loop — the conformance and differential suites are the proof.

How it works
------------
1. **Detect** (online, while interpreting): every event is recorded as a
   small structural op — source batch, poll outcome, firing signature,
   completion — in a bounded ring.  A sliding scan over the firing
   records looks for three consecutive structurally-equal blocks; the
   candidate period is then re-anchored to a time-advancing op (so a
   period boundary never splits a same-timestamp event group) and the
   two most recent complete periods are compared op-for-op.
2. **Compile**: the verified period becomes a replayable static schedule
   — precompiled firing order (frozen :class:`~.runtime.Firing` objects
   where the dispatch plan caches them, head-token rebuilds otherwise),
   precomputed read/run/write durations, per-source item demand and
   token-pattern, and per-op expected cost/emission signatures.  The
   period's ``(kernel, method)`` sequence is fingerprinted via
   :func:`repro.obs.firing_pattern_digest`.
3. **Replay**: whole periods execute without the heap.  Kernel bodies
   still run for real (data correctness is never assumed), but event
   times come from the recorded derivation chain (finish = poll time +
   duration; source stamps from the same running-sum iterators), and
   per-processor statistics accumulate with the same per-op float adds
   in the same order, so every float is the one the event loop would
   have produced.
4. **Verify every op**: recorded time relations (same-timestamp vs
   strictly-later) are re-checked, as are processor-busy predicates,
   firing costs (cycles, elements read/written), and emission
   port/token signatures.  Because firing *selection* in this codebase
   is value-independent (selector FSMs and token-forward counters, never
   pixel data), a fully verified op stream implies the heap would have
   made identical choices.
5. **Demote**: when a source prefetch does not match at a period
   boundary (end of input, an end-of-frame token where the period
   expects a line pattern), or any op's verification fails mid-period
   (the detector locked onto a transient sub-period, e.g. a buffer row
   interior whose costs shift at the line edge), the engine
   reconstructs exact DES state — source cursors, unpopped polls at the
   current timestamp (the dedup dict is maintained op-for-op precisely
   so this is possible), in-flight completions in creation order,
   parked-kernel queues — and hands back to the interpreter, keeping
   the compiled plan armed for cheap re-locking.  Every op verifies its
   premise before (or atomically with) its DES-exact mutation, so the
   state at the first mismatch *is* the event loop's state.  Only a
   structural surprise inside a kernel body (an exception mid-execute)
   is a *hard divergence*: the entire simulation restarts with replay
   disabled, so the last-resort safety net is the unmodified event
   loop itself.

Ineligible configurations (trace recording, active faults, telemetry,
NoC timing, bounded channels) never engage the engine: they run the
plain loop with :class:`ReplayStats` explaining why.  Replay accounting
lives on :attr:`SimulationResult.replay` only — never in ``as_dict()`` —
so replay-on and replay-off runs share one conformance surface.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..faults import FaultStats
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..obs.spans import firing_pattern_digest
from ..tokens import ControlToken
from .batch import compile_batch_plan
from .runtime import Firing, build_runtime
from .simulator import (
    _DELIVER,
    _FINISH,
    _POLL,
    BudgetOverrun,
    SimulationOptions,
    SimulationResult,
    _KernelState,
    _ProcState,
    _timed_source_items,
    _Violation,
)
from .stats import UtilizationSummary

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["ReplayStats", "run_with_replay"]


# --- detector tuning ---------------------------------------------------
#: Scan for a period every this many recorded firings.
_SCAN_EVERY = 128
#: Longest candidate period, in firing records.
_MAX_PERIOD = 4096
#: Structural-op ring bounds (trimmed back to keep amortized O(1)).
_OPS_RING = 150_000
_OPS_KEEP = 100_000
#: Interpreted events without any replay payoff before the recorder
#: shuts off for good.  Bounds the worst case — an application whose
#: true period exceeds ``_MAX_PERIOD`` (e.g. parallel pipelines whose
#: beat period is a whole frame) pays recording overhead only this long,
#: then interprets at full speed.
_GIVE_UP_EVENTS = 30_000

# Recorded-op codes (first element of every raw op tuple; the second is
# always the time relation to the previous event: 0 same, 1 later).
_OP_SRC, _OP_FIN, _OP_RUN, _OP_EMPTY, _OP_PARK, _OP_EXEC, _OP_IO = range(7)


class _HardDivergence(Exception):
    """Mid-period mismatch: restart the whole run with replay disabled."""


@dataclass(slots=True)
class ReplayStats:
    """Execution-strategy accounting for one replay-requested run.

    Attached as :attr:`SimulationResult.replay`; deliberately excluded
    from ``as_dict()`` (it describes *how* the schedule was computed,
    not the schedule itself).
    """

    #: Whether the configuration allowed the engine at all.
    eligible: bool = False
    #: Whether at least one compiled period actually replayed.
    engaged: bool = False
    #: Why the engine stayed off / restarted (None when it ran clean).
    reason: str | None = None
    #: Times a period was compiled (re-detections after demotion count).
    periods_compiled: int = 0
    #: Whole periods executed by the replay executor.
    periods_replayed: int = 0
    #: Firings per compiled period (last compilation).
    period_firings: int = 0
    #: Events per compiled period (last compilation).
    period_events: int = 0
    #: ``repro.obs.firing_pattern_digest`` of the compiled period.
    period_fingerprint: str | None = None
    #: Events executed by the replay executor vs the event loop.
    events_replayed: int = 0
    events_interpreted: int = 0
    #: Firings executed by the replay executor, split by strategy
    #: (interpreted-loop firings are counted by neither).
    firings_batched: int = 0
    firings_scalar: int = 0
    #: Kernels the batch compiler vectorized (cumulative over compiles).
    batched_kernels: list[str] = field(default_factory=list)
    #: Clean hand-backs to the interpreter, by cause.
    demotions: dict[str, int] = field(default_factory=dict)
    #: Hard divergences that restarted the run with replay disabled.
    restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "eligible": self.eligible,
            "engaged": self.engaged,
            "reason": self.reason,
            "periods_compiled": self.periods_compiled,
            "periods_replayed": self.periods_replayed,
            "period_firings": self.period_firings,
            "period_events": self.period_events,
            "period_fingerprint": self.period_fingerprint,
            "events_replayed": self.events_replayed,
            "events_interpreted": self.events_interpreted,
            "firings_batched": self.firings_batched,
            "firings_scalar": self.firings_scalar,
            "batched_kernels": list(self.batched_kernels),
            "demotions": dict(sorted(self.demotions.items())),
            "restarts": self.restarts,
        }

    def describe(self) -> str:
        if not self.eligible:
            return f"replay: ineligible ({self.reason}); interpreted run"
        total = self.events_replayed + self.events_interpreted
        share = self.events_replayed / total if total else 0.0
        if not self.engaged:
            return "replay: eligible but no period locked; interpreted run"
        demoted = sum(self.demotions.values())
        fired = self.firings_batched + self.firings_scalar
        batched = (
            f"{self.firings_batched}/{fired} firings batched, "
            if self.firings_batched
            else ""
        )
        return (
            f"replay: {self.periods_replayed} periods of "
            f"{self.period_firings} firings replayed "
            f"({share:.0%} of {total} events), "
            f"{batched}"
            f"{demoted} demotions, {self.restarts} restarts"
        )


def _ineligible_reason(opts: SimulationOptions) -> str | None:
    """Why this configuration must run the plain event loop, or None.

    These are the demotion triggers the tentpole names: trace recording
    observes per-event order directly, faults/telemetry/NoC hook the
    loop through their own seams, and bounded channels make readiness
    depend on backpressure wake-ups the replay plan does not model.
    """
    if opts.trace:
        return "trace"
    if opts.faults is not None and opts.faults.active():
        return "faults"
    if opts.telemetry is not None:
        return "telemetry"
    if opts.noc is not None:
        return "noc"
    if opts.channel_capacity is not None or opts.channel_capacity_overrides:
        return "bounded-channels"
    return None


def run_with_replay(sim: "Simulator") -> SimulationResult:
    """Entry point used by :meth:`Simulator.run` when ``options.replay``.

    Ineligible configurations fall back to the plain loop; a hard
    divergence restarts the whole simulation with replay disabled, so
    the returned result is always exactly what the event loop produces.
    """
    opts = sim.options
    reason = _ineligible_reason(opts)
    if reason is not None:
        result = sim._run_des()
        result.replay = ReplayStats(
            eligible=False,
            reason=reason,
            events_interpreted=result.events_processed,
        )
        return result
    engine = _ReplayEngine(sim.graph, sim.mapping, sim.processor, opts)
    try:
        return engine.run()
    except _HardDivergence as exc:
        stats = engine.stats
        stats.restarts += 1
        stats.reason = f"hard divergence: {exc}"
        stats.events_replayed = 0
        result = sim._run_des()
        stats.events_interpreted = result.events_processed
        result.replay = stats
        return result


# ----------------------------------------------------------------------
class _Source:
    """One application input (or constant source) with pushback buffering.

    ``head`` is the next undelivered ``(time, item)`` pair — exactly the
    event loop's lazy cursor — while ``buf``/``pos`` hold a prefetched
    period during replay and ``pending`` restores unconsumed prefetch on
    demotion.
    """

    __slots__ = ("idx", "st", "it", "head", "pending", "buf", "pos")

    def __init__(self, idx: int, st: "_RKernelState", it) -> None:
        self.idx = idx
        self.st = st
        self.it = it
        self.head: tuple | None = None
        self.pending: list = []
        self.buf: list | tuple = ()
        self.pos = 0

    def next_item(self):
        p = self.pending
        if p:
            return p.pop(0)
        return next(self.it, None)


class _RKernelState(_KernelState):
    """Kernel state plus the replay executor's in-flight completion slot.

    One firing is in flight per kernel at most (``st.running`` gates the
    next), so a pair of attributes replaces the event heap's pending
    ``_FINISH`` entry during replay.
    """

    __slots__ = ("finish_time", "finish_result")

    def __init__(self, rk, proc) -> None:
        super().__init__(rk, proc)
        self.finish_time: float | None = None
        self.finish_result = None


def _firing_key(firing: Firing):
    """Structural identity of a firing, stable across periods.

    Method firings reuse the dispatch plan's frozen ``Firing`` objects,
    so the object itself is the key.  Token/forward firings are rebuilt
    per event with the live token, so the key keeps the token *type*
    (frame numbers differ every period) plus the port whose head token
    the replayed firing must pick up.
    """
    if firing.kind == "method":
        return firing
    return (
        "tok",
        firing.kind,
        firing.method,
        firing.consume_ports,
        type(firing.token),
        firing.consume_ports[0],
    )


def _emit_sig(emissions) -> tuple:
    """Flat (port, is_token, port, is_token, ...) emission signature."""
    sig: list = []
    ap = sig.append
    for port, item in emissions:
        ap(port)
        ap(isinstance(item, ControlToken))
    return tuple(sig)


def _fkey_label(fkey) -> str:
    method = fkey.method if type(fkey) is Firing else fkey[2]
    return method.name if method is not None else "<forward>"


# ----------------------------------------------------------------------
class _ReplayEngine:
    """The forked pure-path event loop with detect/compile/replay modes.

    Only ever constructed for eligible configurations (no faults,
    telemetry, NoC, trace, or bounded channels), so the interpreter here
    is the seed-conformant pure path plus structural recording.
    """

    def __init__(self, graph, mapping, processor, options) -> None:
        self.graph = graph
        self.mapping = mapping
        self.processor = processor
        self.options = options
        self.stats = ReplayStats(eligible=True)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:  # noqa: C901 - forked event loop
        runtimes, channels = build_runtime(self.graph)
        opts = self.options
        stats = self.stats

        input_channels = {
            id(ch)
            for ch in channels
            if isinstance(runtimes[ch.src].kernel, ApplicationInput)
        }

        proc_states: dict[int, _ProcState] = {}
        states: dict[str, _RKernelState] = {}
        for name, rk in runtimes.items():
            proc = self.mapping.processor_of(name)
            pstate = None
            if proc is not None:
                pstate = proc_states.get(proc)
                if pstate is None:
                    pstate = proc_states[proc] = _ProcState(proc)
                pstate.kernels.add(name)
            states[name] = _RKernelState(rk, pstate)
        for name, rk in runtimes.items():
            st = states[name]
            out: dict[str, tuple] = {}
            flat: list = []
            for port, chans in rk.outputs.items():
                out[port] = tuple(
                    (ch, states[ch.dst], id(ch) in input_channels)
                    for ch in chans
                )
                flat.extend(chans)
            st.out = out
            st.out_channels = tuple(flat)

        violations: list[_Violation] = []
        budget_overruns: list[BudgetOverrun] = []

        events: list = []
        seq = itertools.count()
        next_seq = seq.__next__
        heappush = heapq.heappush
        heappop = heapq.heappop
        peak_heap = 0
        queued_polls: dict[_RKernelState, float] = {}
        input_cap = opts.input_channel_capacity

        def deliver(time: float, st_src: _RKernelState, port: str, item) -> None:
            # Byte-for-byte the pure-path deliver of the event loop (the
            # fault/telemetry/NoC variants cannot occur here).
            nonlocal peak_heap
            is_token = isinstance(item, ControlToken)
            for ch, dst, checked in st_src.out.get(port, ()):
                items = ch.items
                items.append(item)
                counter = ch.seq
                counter.value = stamp = counter.value + 1
                ch.seqs.append(stamp)
                if is_token:
                    ch.total_tokens += 1
                else:
                    ch.total_data += 1
                occupancy = len(items)
                if occupancy > ch.max_occupancy:
                    ch.max_occupancy = occupancy
                if checked and occupancy > input_cap:
                    violations.append(
                        _Violation(
                            time=time,
                            where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                            detail="input overran its consumer",
                        )
                    )
                if queued_polls.get(dst) != time:
                    queued_polls[dst] = time
                    heappush(events, (time, _POLL, next_seq(), dst))
                    if len(events) > peak_heap:
                        peak_heap = len(events)

        def rdeliver(time: float, st_src: _RKernelState, port: str, item) -> None:
            # Replay-mode deliver: identical channel accounting, no heap
            # push — polls are ops of the compiled period.  The dedup
            # dict is still maintained exactly (set here, popped at each
            # poll op) so a mid-period demotion can requeue precisely
            # the polls the event loop would still have pending.
            is_token = isinstance(item, ControlToken)
            for ch, dst, checked in st_src.out.get(port, ()):
                items = ch.items
                items.append(item)
                counter = ch.seq
                counter.value = stamp = counter.value + 1
                ch.seqs.append(stamp)
                if is_token:
                    ch.total_tokens += 1
                else:
                    ch.total_data += 1
                occupancy = len(items)
                if occupancy > ch.max_occupancy:
                    ch.max_occupancy = occupancy
                if checked and occupancy > input_cap:
                    violations.append(
                        _Violation(
                            time=time,
                            where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                            detail="input overran its consumer",
                        )
                    )
                if queued_polls.get(dst) != time:
                    queued_polls[dst] = time

        # --- startup: init methods, then lazy source cursors ------------
        for name, rk in runtimes.items():
            for result in rk.run_init():
                st = states[name]
                for port, item in result.emissions:
                    deliver(0.0, st, port, item)

        horizon = 0.0
        sources: list[_Source] = []
        for name, rk in runtimes.items():
            if isinstance(rk.kernel, ConstantSource):
                sources.append(_Source(
                    len(sources), states[name],
                    iter(((0.0, rk.kernel.values.copy()),)),
                ))
        for name, rk in runtimes.items():
            kernel = rk.kernel
            if isinstance(kernel, ApplicationInput):
                sources.append(_Source(
                    len(sources), states[name],
                    _timed_source_items(kernel, opts.frames),
                ))
                horizon = max(horizon, opts.frames / kernel.rate_hz)
        for src in sources:
            src.head = src.next_item()
            if src.head is not None:
                heappush(events, (src.head[0], _DELIVER, src.idx, src.idx))
        if len(events) > peak_heap:
            peak_heap = len(events)

        makespan = 0.0
        processed = 0
        max_events = opts.max_events
        clock = self.processor.clock_hz
        rcpe = self.processor.read_cycles_per_element
        wcpe = self.processor.write_cycles_per_element

        # --- detector / plan state --------------------------------------
        ops: list = []          # structural op ring (raw tuples)
        base = 0                # absolute index of ops[0]
        fir: list = []          # firing records (st, signature)
        fir_op: list = []       # absolute op index of each firing record
        next_scan = _SCAN_EVERY
        raw_plan: list = []     # compiled period, raw-op form
        xplan: list = []        # compiled period, execution form
        xev: list = []          # cumulative event count through xplan[i]
        bplan = None            # batched-execution groups over xplan
        batch_on = opts.batch
        src_plan: tuple = ()    # ((source, items-needed, token-pattern), ...)
        plan_len = 0
        plan_fir_len = 0        # firing records per compiled period
        period_events = 0
        min_fir_L = 1           # alias-escalation floor for the detector
        last_payoff = 0         # processed count at the last replayed period
        plan_cyc_start = 0      # processed count when the plan compiled
        plan_cyc_replayed = 0   # events_replayed when the plan compiled
        detect_off = False      # escalated past _MAX_PERIOD: stop recording
        armed = False           # verifying the live stream against raw_plan
        phase = 0               # next raw_plan index while armed
        seeking = False         # re-locking a kept plan after demotion
        match_pos = 0
        enter_next = False      # the next heap pop starts a period
        inflight: dict = {}     # replay-mode pending completions, in order

        def resolve_fkey(fkey):
            """(prebuilt Firing | None, rebuild descriptor | None)."""
            if type(fkey) is Firing:
                return fkey, None
            _tag, kind, method, cports, ttype, tport = fkey
            return None, (kind, method, cports, ttype, tport)

        def build_xplan(raw):
            """Compile raw ops to the execution plan, or None if refused."""
            plan: list = []
            cum: list = []  # cumulative event count through each op
            need: dict[int, int] = {}
            kinds_acc: dict[int, list] = {}
            ev_count = 0
            firings = 0
            pattern: list = []
            # Consecutive no-op polls and parks collapse into one plan op
            # (code 7): each sub-entry keeps its own state check and its
            # cumulative event count, so a mid-run mismatch demotes with
            # exactly the granularity the uncollapsed ops had — only the
            # per-op dispatch overhead is shed.
            poll_acc: list = []

            def flush_polls():
                if not poll_acc:
                    return
                if len(poll_acc) == 1:
                    c, s, e, _p = poll_acc[0]
                    plan.append((c, s) if e is None else (c, s, e))
                else:
                    plan.append((7, tuple(poll_acc)))
                cum.append(poll_acc[-1][3] + 1)
                poll_acc.clear()

            for op in raw:
                code = op[0]
                rel = op[1]
                if code == _OP_SRC:
                    flush_polls()
                    idx = op[2]
                    need[idx] = need.get(idx, 0) + op[3]
                    kinds_acc.setdefault(idx, []).extend(op[4])
                    ev_count += op[3]
                    plan.append((0, sources[idx], op[3], rel))
                    cum.append(ev_count)
                    continue
                ev_count += 1
                if rel and code != _OP_FIN:
                    # Polls pop at their queueing time; a time-advancing
                    # poll means the window is not a real period.
                    return None
                st = op[2]
                if code == _OP_RUN:
                    poll_acc.append((2, st, None, ev_count - 1))
                    continue
                if code == _OP_EMPTY:
                    poll_acc.append((3, st, None, ev_count - 1))
                    continue
                if code == _OP_PARK:
                    poll_acc.append((4, st, st.proc, ev_count - 1))
                    continue
                flush_polls()
                cum.append(ev_count)
                if code == _OP_FIN:
                    plan.append((1, st, rel))
                elif code == _OP_EXEC:
                    if op[7]:
                        # Data-dependent cycle charge observed while
                        # learning: the period is not static.
                        return None
                    firing, rebuild = resolve_fkey(op[3])
                    cycles, eread, ewrit, esig = op[4], op[5], op[6], op[8]
                    read_s = eread * rcpe / clock
                    run_s = cycles / clock
                    write_s = ewrit * wcpe / clock
                    duration = read_s + run_s + write_s
                    plan.append((
                        5, st, st.proc, firing, rebuild, read_s, run_s,
                        write_s, duration, cycles, eread, ewrit, esig,
                        len(esig) // 2,
                    ))
                    firings += 1
                    pattern.append((st.name, _fkey_label(op[3])))
                else:  # _OP_IO
                    entries = []
                    for fkey, esig, nout in op[3]:
                        firing, rebuild = resolve_fkey(fkey)
                        entries.append(
                            (firing, rebuild, esig, len(esig) // 2, nout)
                        )
                        pattern.append((st.name, _fkey_label(fkey)))
                        firings += 1
                    plan.append((6, st, tuple(entries)))
            flush_polls()
            splan = tuple(
                (sources[idx], n, tuple(kinds_acc[idx]))
                for idx, n in need.items()
            )
            return (plan, cum, splan, ev_count, firings,
                    firing_pattern_digest(pattern))

        def compile_plan(n: int, L: int) -> bool:
            nonlocal raw_plan, xplan, xev, src_plan, plan_len, period_events
            nonlocal armed, phase, seeking, match_pos, plan_fir_len
            nonlocal plan_cyc_start, plan_cyc_replayed, bplan
            s0 = fir_op[n - 3 * L] - base
            s1 = fir_op[n - 2 * L] - base
            s2 = fir_op[n - L] - base
            if s0 <= 0:
                return False
            # Re-anchor each block start to its time-group leader so the
            # period boundary strictly advances time (then every poll
            # queued inside period k also pops inside period k, and the
            # demotion state is sources + in-flight completions only).
            while s0 > 0 and ops[s0][1] == 0:
                s0 -= 1
            while ops[s1][1] == 0:
                s1 -= 1
            while ops[s2][1] == 0:
                s2 -= 1
            if ops[s0][1] != 1:
                return False
            P = s2 - s1
            if P < 2 or s1 - s0 != P:
                return False
            if ops[s1:s2] != ops[s0:s1]:
                return False
            raw = ops[s1:s2]
            first = raw[0]
            if first[1] != 1 or first[0] not in (_OP_SRC, _OP_FIN):
                return False
            # The partially-recorded third period must match the plan's
            # prefix — that is the arming phase we resume from.
            tail = ops[s2:]
            npre = len(tail)
            if npre == 0 or npre >= P or raw[:npre] != tail:
                return False
            built = build_xplan(raw)
            if built is None:
                return False
            xplan, xev, src_plan, period_events_, firings, digest = built
            raw_plan = raw
            plan_len = P
            plan_fir_len = L
            period_events = period_events_
            plan_cyc_start = processed
            plan_cyc_replayed = stats.events_replayed
            armed = True
            phase = npre
            seeking = False
            match_pos = 0
            stats.periods_compiled += 1
            stats.period_events = period_events_
            stats.period_firings = firings
            stats.period_fingerprint = digest
            bplan = None
            if batch_on:
                try:
                    bplan = compile_batch_plan(xplan)
                except Exception:
                    # A compiler surprise must never cost correctness:
                    # the period simply replays per-firing.
                    bplan = None
                if bplan is not None:
                    stats.batched_kernels = sorted(
                        set(stats.batched_kernels) | set(bplan.kernel_names)
                    )
            return True

        def try_detect() -> None:
            n = len(fir)
            if n < 6:
                return
            f = fir
            last = f[-1]
            max_l = min(_MAX_PERIOD, n // 3)
            for L in range(min_fir_L, max_l + 1):
                if f[n - 1 - L] != last or f[n - 1 - 2 * L] != last:
                    continue
                if f[n - 3 * L:n - 2 * L] == f[n - 2 * L:n - L] == f[n - L:n]:
                    if compile_plan(n, L):
                        return

        def record(op) -> None:
            nonlocal armed, phase, seeking, match_pos, enter_next
            nonlocal next_scan, base, detect_off
            if detect_off:
                return
            ops.append(op)
            code = op[0]
            if armed:
                if op == raw_plan[phase]:
                    phase += 1
                    if phase == plan_len:
                        phase = 0
                        enter_next = True
                else:
                    armed = False
                    seeking = True
                    match_pos = 0
            elif seeking:
                if op == raw_plan[match_pos]:
                    match_pos += 1
                    if match_pos == plan_len:
                        # A full period re-matched: the next pop is a
                        # boundary, enter without re-recording 3 blocks.
                        match_pos = 0
                        enter_next = True
                elif match_pos and op == raw_plan[0]:
                    match_pos = 1
                else:
                    match_pos = 0
            if code == _OP_EXEC or code == _OP_IO:
                fir.append((op[2], op[3]))
                fir_op.append(base + len(ops) - 1)
                if not armed and len(fir) >= next_scan:
                    next_scan = len(fir) + _SCAN_EVERY
                    if processed - last_payoff > _GIVE_UP_EVENTS:
                        # No replay payoff for a long stretch: the true
                        # period (if any) is out of the detector's reach.
                        # Stop recording so interpretation runs clean.
                        detect_off = True
                        armed = seeking = False
                        ops.clear()
                        fir.clear()
                        fir_op.clear()
                        return
                    try_detect()
            if len(ops) > _OPS_RING:
                drop = len(ops) - _OPS_KEEP
                del ops[:drop]
                base += drop
                k = 0
                fo = fir_op
                nf = len(fo)
                while k < nf and fo[k] < base:
                    k += 1
                if k:
                    del fir[:k]
                    del fir_op[:k]

        def reset_rings() -> None:
            nonlocal base, next_scan
            base += len(ops)
            ops.clear()
            fir.clear()
            fir_op.clear()
            next_scan = _SCAN_EVERY

        def rebuild_firing(st: _RKernelState, rebuild) -> Firing | None:
            """Recreate a token/forward firing from the live channel head.

            Returns None when the live head does not match the plan's
            expectation — nothing is mutated, so the caller can demote
            cleanly instead of restarting.
            """
            kind, method, cports, ttype, tport = rebuild
            items = st.rk.inputs[tport].items
            if not items or type(items[0]) is not ttype:
                return None
            if kind == "forward":
                for p in cports:
                    h = st.rk.inputs[p].items
                    if not h or not isinstance(h[0], ControlToken):
                        return None
            return Firing(
                kind=kind, method=method, consume_ports=cports, token=items[0]
            )

        def try_enter(time: float, kind: int, payload) -> bool:
            """Reconcile heap state and hand the popped event to replay."""
            p0 = xplan[0]
            c0 = p0[0]
            if kind == _DELIVER:
                if c0 != 0 or p0[1] is not sources[payload]:
                    return False
            elif kind == _FINISH:
                if c0 != 1 or p0[1] is not payload[0] or payload[1] is None:
                    return False
            else:
                return False
            for ev in events:
                k = ev[1]
                if k == _POLL:
                    # A queued poll at entry means the boundary does not
                    # actually advance time; refuse and keep interpreting.
                    return False
                if k == _FINISH and ev[3][1] is None:
                    return False
            fins = sorted(
                (ev for ev in events if ev[1] == _FINISH),
                key=lambda ev: ev[2],
            )
            inflight.clear()
            for t, _k, _s, (fst, fres) in fins:
                fst.finish_time = t
                fst.finish_result = fres
                inflight[fst] = None
            events.clear()
            queued_polls.clear()
            if kind == _FINISH:
                st0, res0 = payload
                st0.finish_time = time
                st0.finish_result = res0
                inflight[st0] = None
            return True

        def demote(reason: str) -> None:
            """Reconstruct exact DES state and hand back to the interpreter.

            Valid at a period boundary *and* mid-period: every replay op
            verifies its premise before (or atomically with) its
            DES-exact mutation, so at the first mismatch the simulation
            state equals the event loop's state mid-timestamp.  The heap
            is rebuilt from the three kinds of pending work — unpopped
            polls at the current timestamp (the dedup dict, in queueing
            order), in-flight completions (in creation order), and
            source cursors — with fresh sequence numbers; within-kind
            order is what the heap tie-breaking actually consumes, and
            the event-kind ordering handles the rest.
            """
            nonlocal seeking, match_pos, armed, enter_next, min_fir_L
            nonlocal detect_off
            stats.demotions[reason] = stats.demotions.get(reason, 0) + 1
            for src in sources:
                if src.pos < len(src.buf):
                    rest = list(src.buf[src.pos:])
                    if src.head is not None:
                        rest.append(src.head)
                    rest.extend(src.pending)
                    src.head = rest[0]
                    src.pending = rest[1:]
                src.buf = ()
                src.pos = 0
                if src.head is not None:
                    heappush(events, (src.head[0], _DELIVER, src.idx, src.idx))
            for st, t_q in queued_polls.items():
                heappush(events, (t_q, _POLL, next_seq(), st))
            for st in inflight:
                heappush(
                    events,
                    (st.finish_time, _FINISH, next_seq(),
                     (st, st.finish_result)),
                )
                st.finish_time = None
                st.finish_result = None
            inflight.clear()
            reset_rings()
            armed = False
            enter_next = False
            # Keep or escalate?  The arbiter is *productivity*, not the
            # demotion reason: a line-level plan that demotes once per
            # frame at a trim border replays nearly everything and must
            # be kept, while a row-interior alias that re-locks cheaply
            # but replays little should be traded for a coarser period.
            # Judge the plan on its replay duty-cycle since it compiled,
            # once it has had a fair chance (a few periods of wall-clock).
            lifetime = processed - plan_cyc_start
            duty = (stats.events_replayed - plan_cyc_replayed) / max(
                1, lifetime
            )
            if lifetime >= 4 * period_events and duty < 0.35:
                # Low-value plan: drop it and require the next candidate
                # period to be at least twice as coarse, so repeated
                # failures climb to the true period in O(log) locks.
                seeking = False
                if plan_fir_len:
                    min_fir_L = max(min_fir_L, 2 * plan_fir_len)
                if min_fir_L > _MAX_PERIOD:
                    # Nothing coarser can lock; stop paying for the
                    # recorder and interpret at full speed from here on.
                    detect_off = True
            else:
                # Productive plan: keep it armed for cheap re-locking.
                seeking = True
            match_pos = 0

        # --- main loop ---------------------------------------------------
        while events:
            time, kind, _, payload = heappop(events)

            if enter_next:
                enter_next = False
                if time > makespan and try_enter(time, kind, payload):
                    # ---- replay mode: whole periods per iteration ----
                    stats.engaged = True
                    reset_rings()
                    armed = False
                    seeking = False
                    now = makespan
                    reason = None
                    partial = 0  # events of an incomplete final period
                    while reason is None:
                        # Period boundary: prefetch each source's demand
                        # and check its token pattern.  A mismatch (end
                        # of input, end-of-frame) demotes cleanly before
                        # anything is mutated.
                        for src, need_n, kpat in src_plan:
                            buf = []
                            head = src.head
                            i = 0
                            while i < need_n:
                                if head is None or isinstance(
                                    head[1], ControlToken
                                ) is not kpat[i]:
                                    reason = "input-pattern"
                                    break
                                buf.append(head)
                                head = src.next_item()
                                i += 1
                            src.buf = buf
                            src.pos = 0
                            src.head = head
                            if reason is not None:
                                break
                        if reason is not None:
                            break
                        # Batch the period's vectorizable firings against
                        # the freshly prefetched inputs.  A None result
                        # (or any internal surprise) runs the whole
                        # period per-firing — nothing was mutated.
                        prepared = None
                        if bplan is not None:
                            try:
                                prepared = bplan.prepare()
                            except Exception:
                                prepared = None
                        try:
                            for oi, op in enumerate(xplan):
                                code = op[0]
                                if code == 5:  # EXEC on a processing element
                                    st = op[1]
                                    ps = op[2]
                                    queued_polls.pop(st, None)
                                    if st.running or ps.free_at > now:
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                    b = (prepared[oi]
                                         if prepared is not None else None)
                                    if b is not None:
                                        result, commit, bi, pairs = b
                                        okb = True
                                        for ch, pred in pairs:
                                            # Peek before popping: a head
                                            # that is not the predicted
                                            # object demotes DES-exactly,
                                            # nothing consumed.
                                            if ch.items[0] is not pred:
                                                okb = False
                                                break
                                        if not okb:
                                            reason = "batch"
                                            partial = (xev[oi - 1]
                                                       if oi else 0)
                                            break
                                        for ch, _pred in pairs:
                                            ch.seqs.popleft()
                                            ch.items.popleft()
                                        st.rk.firings += 1
                                        stats.firings_batched += 1
                                        ps.read_s += op[5]
                                        ps.run_s += op[6]
                                        ps.write_s += op[7]
                                        ps.firings += 1
                                        ps.free_at = ft = now + op[8]
                                        st.running = True
                                        st.finish_time = ft
                                        st.finish_result = result
                                        inflight[st] = None
                                        if commit is not None:
                                            commit(bi)
                                        continue
                                    firing = op[3]
                                    if firing is None:
                                        firing = rebuild_firing(st, op[4])
                                        if firing is None:
                                            reason = "rebuild"
                                            partial = (xev[oi - 1]
                                                       if oi else 0)
                                            break
                                    result = st.execute(firing)
                                    stats.firings_scalar += 1
                                    ems = result.emissions
                                    esig = op[12]
                                    good = (not result.dynamic
                                            and result.cycles == op[9]
                                            and result.elements_read == op[10]
                                            and result.elements_written
                                            == op[11]
                                            and len(ems) == op[13])
                                    if good:
                                        i = 0
                                        for port, item in ems:
                                            if port != esig[i] or isinstance(
                                                item, ControlToken
                                            ) is not esig[i + 1]:
                                                good = False
                                                break
                                            i += 2
                                    if good:
                                        ps.read_s += op[5]
                                        ps.run_s += op[6]
                                        ps.write_s += op[7]
                                        ps.firings += 1
                                        ps.free_at = ft = now + op[8]
                                    else:
                                        # The firing itself is what the
                                        # event loop would have run
                                        # (selection is state-determined
                                        # and the history verified); only
                                        # its cost or emissions drifted
                                        # from the plan.  Charge the
                                        # actual values with the event
                                        # loop's exact expressions, then
                                        # demote after this op.
                                        if (result.dynamic and result.cycles
                                                > result.declared_cycles):
                                            budget_overruns.append(
                                                BudgetOverrun(
                                                    time=now,
                                                    kernel=st.name,
                                                    method=result.label,
                                                    declared_cycles=(
                                                        result
                                                        .declared_cycles),
                                                    actual_cycles=(
                                                        result.cycles),
                                                ))
                                        read_s = (result.elements_read
                                                  * rcpe / clock)
                                        run_s = result.cycles / clock
                                        write_s = (result.elements_written
                                                   * wcpe / clock)
                                        dur = read_s + run_s + write_s
                                        ps.read_s += read_s
                                        ps.run_s += run_s
                                        ps.write_s += write_s
                                        ps.firings += 1
                                        ps.free_at = ft = now + dur
                                    st.running = True
                                    st.finish_time = ft
                                    st.finish_result = result
                                    inflight[st] = None
                                    if not good:
                                        reason = "cost"
                                        partial = xev[oi]
                                        break
                                elif code == 1:  # FINISH
                                    st = op[1]
                                    t = st.finish_time
                                    if t is None or (
                                        (t <= now) if op[2] else (t != now)
                                    ):
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                    now = t
                                    st.running = False
                                    result = st.finish_result
                                    st.finish_time = None
                                    st.finish_result = None
                                    del inflight[st]
                                    for port, item in result.emissions:
                                        rdeliver(t, st, port, item)
                                    # Mirror the event loop's re-poll of
                                    # everything sharing the freed
                                    # element: the polls themselves are
                                    # plan ops, but the dedup dict must
                                    # carry them for mid-period demotion.
                                    pending = st.proc.pending
                                    pending.append(st)
                                    for other in pending:
                                        if queued_polls.get(other) != t:
                                            queued_polls[other] = t
                                    pending.clear()
                                elif code == 0:  # source batch
                                    src = op[1]
                                    buf = src.buf
                                    pos = src.pos
                                    t = buf[pos][0]
                                    if (t <= now) if op[3] else (t != now):
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                    now = t
                                    st_src = src.st
                                    end = pos + op[2]
                                    n = 0
                                    split = False
                                    while pos < end:
                                        tt, item = buf[pos]
                                        if tt != t:
                                            # Batch ends earlier than the
                                            # plan recorded.
                                            split = True
                                            break
                                        pos += 1
                                        n += 1
                                        rdeliver(t, st_src, "out", item)
                                    if not split:
                                        # The recorded batch must also
                                        # *end* here: the event loop
                                        # drains every same-timestamp
                                        # item in one event.
                                        if pos < len(buf):
                                            split = buf[pos][0] <= t
                                        else:
                                            h = src.head
                                            split = (h is not None
                                                     and h[0] <= t)
                                        if split:
                                            # Drain the rest live, then
                                            # demote with the true count.
                                            while True:
                                                if pos < len(buf):
                                                    tt, item = buf[pos]
                                                    if tt != t:
                                                        break
                                                    pos += 1
                                                else:
                                                    h = src.head
                                                    if h is None or h[0] != t:
                                                        break
                                                    item = h[1]
                                                    src.head = src.next_item()
                                                n += 1
                                                rdeliver(t, st_src, "out",
                                                         item)
                                    src.pos = pos
                                    if split:
                                        reason = "order"
                                        partial = ((xev[oi - 1] if oi else 0)
                                                   + n)
                                        break
                                elif code == 7:  # collapsed poll/park run
                                    for scode, st, extra, sp in op[1]:
                                        queued_polls.pop(st, None)
                                        if scode == 2:
                                            if not st.running:
                                                reason = "order"
                                                partial = sp
                                                break
                                        elif scode == 3:
                                            if (st.running
                                                    or st.proc.free_at > now):
                                                reason = "order"
                                                partial = sp
                                                break
                                        else:  # 4: busy park
                                            if (st.running
                                                    or extra.free_at <= now):
                                                reason = "order"
                                                partial = sp
                                                break
                                            pending = extra.pending
                                            if st not in pending:
                                                pending.append(st)
                                    if reason is not None:
                                        break
                                elif code == 4:  # busy park
                                    st = op[1]
                                    ps = op[2]
                                    queued_polls.pop(st, None)
                                    if st.running or ps.free_at <= now:
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                    pending = ps.pending
                                    if st not in pending:
                                        pending.append(st)
                                elif code == 2:  # running no-op poll
                                    st = op[1]
                                    queued_polls.pop(st, None)
                                    if not st.running:
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                elif code == 3:  # not-ready no-op poll
                                    st = op[1]
                                    queued_polls.pop(st, None)
                                    if st.running or st.proc.free_at > now:
                                        reason = "order"
                                        partial = xev[oi - 1] if oi else 0
                                        break
                                else:  # code == 6: off-chip boundary burst
                                    st = op[1]
                                    queued_polls.pop(st, None)
                                    good = not st.running
                                    if good:
                                        for (firing, rebuild, esig, nemit,
                                             nout) in op[2]:
                                            if firing is None:
                                                firing = rebuild_firing(
                                                    st, rebuild
                                                )
                                                if firing is None:
                                                    good = False
                                                    break
                                            result = st.execute(firing)
                                            stats.firings_scalar += 1
                                            ems = result.emissions
                                            aout = 0
                                            if (st.is_output
                                                    and firing.kind
                                                    == "method"):
                                                times_out = st.output_times
                                                for _p in (
                                                        firing.consume_ports):
                                                    times_out.append(now)
                                                    aout += 1
                                            for port, item in ems:
                                                rdeliver(now, st, port, item)
                                            if (len(ems) != nemit
                                                    or aout != nout):
                                                good = False
                                                break
                                            i = 0
                                            for port, item in ems:
                                                if (port != esig[i]
                                                        or isinstance(
                                                            item,
                                                            ControlToken)
                                                        is not esig[i + 1]):
                                                    good = False
                                                    break
                                                i += 2
                                            if not good:
                                                break
                                    if not good:
                                        # Finish the drain exactly as the
                                        # event loop would, then demote.
                                        st_ready = st.ready
                                        st_execute = st.execute
                                        while not st.running:
                                            firing = st_ready()
                                            if firing is None:
                                                break
                                            result = st_execute(firing)
                                            stats.firings_scalar += 1
                                            if (st.is_output
                                                    and firing.kind
                                                    == "method"):
                                                times_out = st.output_times
                                                for _p in (
                                                        firing.consume_ports):
                                                    times_out.append(now)
                                            for port, item in (
                                                    result.emissions):
                                                rdeliver(now, st, port, item)
                                        reason = "io"
                                        partial = xev[oi]
                                        break
                        except _HardDivergence:
                            raise
                        except Exception as exc:
                            # Any structural surprise (a kernel body
                            # raising, a channel underflow) restarts the
                            # run on the plain loop, which reproduces
                            # the behavior — including the exception —
                            # exactly.
                            raise _HardDivergence(
                                f"executor error: {exc!r}"
                            ) from exc
                        if reason is not None:
                            # Partial period: account the events that
                            # actually executed, then demote mid-stream.
                            processed += partial
                            stats.events_replayed += partial
                            if partial:
                                last_payoff = processed
                            break
                        processed += period_events
                        stats.events_replayed += period_events
                        stats.periods_replayed += 1
                        last_payoff = processed
                        if processed > max_events:
                            raise SimulationError(
                                f"simulation exceeded {max_events} events; "
                                "the application is likely livelocked"
                            )
                    demote(reason)
                    makespan = now
                    continue

            rel = 1 if time > makespan else 0
            makespan = time

            if kind == _POLL:
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )
                st = payload
                queued_polls.pop(st, None)
                if st.running:
                    record((_OP_RUN, rel, st))
                    continue
                ps = st.proc
                if ps is None:
                    st_ready = st.ready
                    st_execute = st.execute
                    iosig: list = []
                    while True:
                        firing = st_ready()
                        if firing is None:
                            break
                        result = st_execute(firing)
                        nout = 0
                        if st.is_output and firing.kind == "method":
                            times_out = st.output_times
                            for _port in firing.consume_ports:
                                times_out.append(time)
                                nout += 1
                        ems = result.emissions
                        for port, item in ems:
                            deliver(time, st, port, item)
                        iosig.append(
                            (_firing_key(firing), _emit_sig(ems), nout)
                        )
                    record((_OP_IO, rel, st, tuple(iosig)))
                else:
                    if ps.free_at > time:
                        pending = ps.pending
                        if st not in pending:
                            pending.append(st)
                        record((_OP_PARK, rel, st))
                        continue
                    firing = st.ready()
                    if firing is None:
                        record((_OP_EMPTY, rel, st))
                        continue
                    result = st.execute(firing)
                    if result.dynamic and result.cycles > result.declared_cycles:
                        budget_overruns.append(BudgetOverrun(
                            time=time, kernel=st.name, method=result.label,
                            declared_cycles=result.declared_cycles,
                            actual_cycles=result.cycles,
                        ))
                    read_s = result.elements_read * rcpe / clock
                    run_s = result.cycles / clock
                    write_s = result.elements_written * wcpe / clock
                    duration = read_s + run_s + write_s
                    ps.read_s += read_s
                    ps.run_s += run_s
                    ps.write_s += write_s
                    ps.firings += 1
                    ps.free_at = time + duration
                    st.running = True
                    heappush(events,
                             (time + duration, _FINISH, next_seq(),
                              (st, result)))
                    if len(events) > peak_heap:
                        peak_heap = len(events)
                    record((_OP_EXEC, rel, st, _firing_key(firing),
                            result.cycles, result.elements_read,
                            result.elements_written, result.dynamic,
                            _emit_sig(result.emissions)))

            elif kind == _FINISH:
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )
                st, result = payload
                st.running = False
                if result is not None:
                    for port, item in result.emissions:
                        deliver(time, st, port, item)
                ps = st.proc
                if ps is not None:
                    pending = ps.pending
                    pending.append(st)
                    for other in pending:
                        if queued_polls.get(other) != time:
                            queued_polls[other] = time
                            heappush(events, (time, _POLL, next_seq(), other))
                    pending.clear()
                    if len(events) > peak_heap:
                        peak_heap = len(events)
                record((_OP_FIN, rel, st))

            else:  # _DELIVER: one source cursor; drain its timestamp batch
                idx = payload
                src = sources[idx]
                st = src.st
                head = src.head
                count = 0
                kinds: list = []
                ka = kinds.append
                while head is not None and head[0] == time:
                    processed += 1
                    count += 1
                    item = head[1]
                    ka(isinstance(item, ControlToken))
                    deliver(time, st, "out", item)
                    head = src.next_item()
                src.head = head
                if head is not None:
                    heappush(events, (head[0], _DELIVER, idx, idx))
                    if len(events) > peak_heap:
                        peak_heap = len(events)
                record((_OP_SRC, rel, idx, count, tuple(kinds)))
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )

        duration = max(makespan, horizon)
        utilization = UtilizationSummary(
            duration_s=duration,
            processors={
                proc: ps.to_stats() for proc, ps in proc_states.items()
            },
        )
        output_times = {
            name: states[name].output_times
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }
        outputs = {
            name: list(rk.kernel.received)
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }
        stats.events_interpreted = processed - stats.events_replayed
        result = SimulationResult(
            app=self.graph,
            options=opts,
            makespan_s=makespan,
            utilization=utilization,
            output_times=output_times,
            outputs=outputs,
            violations=violations,
            channels=channels,
            firings={name: rk.firings for name, rk in runtimes.items()},
            budget_overruns=budget_overruns,
            events_processed=processed,
            peak_heap=peak_heap,
            fault_stats=FaultStats(),
        )
        result.replay = stats
        return result
