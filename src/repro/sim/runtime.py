"""Runtime kernel semantics shared by the timed and functional executors.

After compilation every channel is unit-rate: one producer chunk per
consumer firing.  The runtime implements the firing rules of Sections II-B
and II-C:

* a *data method* fires when every one of its trigger inputs has a data
  chunk at the head of its channel (selector methods — round-robin joins —
  fire on the single input their FSM currently expects);
* a *token method* fires when its registered token class reaches the head
  of its input channel;
* unhandled tokens auto-forward: once the same token sits at the head of
  every input of a data method, one copy is forwarded to that method's
  outputs (the subtract kernel's two-input rule generalizes the one-input
  case) and the kernel's ``on_token_forwarded`` hook runs.

Channel items stay strictly ordered; control tokens travel in order with
the data, which is what makes end-of-frame processing deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..errors import FiringError
from ..graph.app import ApplicationGraph
from ..graph.kernel import FiringContext, Kernel
from ..graph.methods import MethodSpec
from ..tokens import ControlToken

__all__ = [
    "Item",
    "Channel",
    "Firing",
    "FiringResult",
    "RuntimeKernel",
    "build_runtime",
]

#: A channel item: a data chunk or a control token.
Item = Union[np.ndarray, ControlToken]


class SeqCounter:
    """A shared monotonic counter stamping channel items in arrival order."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        self.value += 1
        return self.value


@dataclass(slots=True)
class Channel:
    """A FIFO stream channel bound to one consumer input.

    Items are stamped with a globally increasing sequence number at push
    time; a kernel with several ready methods fires the one whose trigger
    arrived first, which keeps execution deterministic and means control
    reload channels (coefficients, bin ranges) win ties against data
    injected after them.
    """

    src: str
    src_port: str
    dst: str
    dst_port: str
    seq: SeqCounter = field(default_factory=SeqCounter)
    items: deque = field(default_factory=deque)
    seqs: deque = field(default_factory=deque)
    #: Maximum items the channel may hold, or None for unbounded.  Bounded
    #: channels model the implicit single-iteration port buffers (Figure 5
    #: caption) and make producers stall — the Figure 9(b) effect.
    capacity: int | None = None
    #: High-water mark, for buffer-sizing diagnostics.
    max_occupancy: int = 0
    total_data: int = 0
    total_tokens: int = 0

    def space_for(self, count: int) -> bool:
        return self.capacity is None or len(self.items) + count <= self.capacity

    def push(self, item: Item) -> None:
        self.items.append(item)
        self.seqs.append(self.seq.next())
        if isinstance(item, ControlToken):
            self.total_tokens += 1
        else:
            self.total_data += 1
        if len(self.items) > self.max_occupancy:
            self.max_occupancy = len(self.items)

    def head(self) -> Item | None:
        return self.items[0] if self.items else None

    def head_seq(self) -> int:
        return self.seqs[0]

    def pop(self) -> Item:
        self.seqs.popleft()
        return self.items.popleft()

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True, slots=True)
class Firing:
    """A ready-to-run unit of work on a kernel.

    ``forward`` firings are automatic token forwards (no method body);
    ``init`` firings run once at startup.
    """

    kind: str  # "method" | "token" | "forward" | "init"
    method: MethodSpec | None
    consume_ports: tuple[str, ...]
    token: ControlToken | None = None


@dataclass(slots=True)
class FiringResult:
    """What a firing did: cost inputs for the machine model plus emissions."""

    kernel: str
    label: str
    cycles: float
    elements_read: int
    elements_written: int
    emissions: list[tuple[str, Item]]
    #: The statically declared cycle bound; differs from ``cycles`` only
    #: for variable-work firings that called ``charge_cycles``.
    declared_cycles: float = 0.0
    #: True when the body charged a data-dependent cost.
    dynamic: bool = False


#: Cycles charged for auto-forwarding one token (pure plumbing).
FORWARD_CYCLES = 1


class RuntimeKernel:
    """A kernel instance wired to its runtime channels."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.name = kernel.name
        self.inputs: dict[str, Channel] = {}
        self.outputs: dict[str, list[Channel]] = {
            port: [] for port in kernel.outputs
        }
        self.firings = 0
        # Hot-path caches: port order, per-port data methods, and
        # token-transparency flags are static for the kernel's lifetime.
        self._ports: tuple[str, ...] = tuple(kernel.inputs)
        self._data_method = {
            port: kernel.data_method_for_input(port) for port in self._ports
        }
        self._transparent = {
            port for port, spec in kernel.inputs.items()
            if spec.token_transparent
        }
        # Wiring-dependent caches, built lazily on the first firing probe
        # (channels are attached after construction): per-port dispatch
        # plans with pre-built Firing instances, and bound method objects.
        self._wired: tuple | None = None
        self._bound: dict[str, object] = {}

    def _prime(self) -> tuple:
        """Snapshot the wired inputs into a per-port dispatch plan.

        For each wired input port the plan holds the channel plus how a
        data chunk at its head fires: a single-input method (fire
        immediately, reusing one frozen :class:`Firing`), a multi-input
        method (check the peer channels' heads), or a selector join (ask
        the FSM).  Ports whose data triggers nothing keep ``None`` so the
        seed's :class:`FiringError` still fires on arrival.
        """
        plan = []
        for port in self._ports:
            channel = self.inputs.get(port)
            if channel is None:
                continue
            method = self._data_method[port]
            if method is None:
                entry = None
            elif method.selector is not None:
                entry = (
                    "sel",
                    Firing(kind="method", method=method,
                           consume_ports=(port,)),
                    getattr(self.kernel, method.selector),
                )
            else:
                firing = Firing(kind="method", method=method,
                                consume_ports=method.data_inputs)
                if len(method.data_inputs) == 1:
                    entry = ("single", firing, None)
                else:
                    entry = (
                        "multi",
                        firing,
                        tuple(self.inputs.get(p)
                              for p in method.data_inputs),
                    )
            plan.append((port, channel, entry))
        self._wired = wired = tuple(plan)
        return wired

    # ------------------------------------------------------------------
    def run_init(self) -> list[FiringResult]:
        """Execute all init methods (e.g. the histogram clearing its bins)."""
        results = []
        for name, cost in self.kernel.init_methods.items():
            synthetic = MethodSpec(
                name=name,
                outputs=tuple(self.kernel.outputs),
                cost=cost,
                is_source=True,
            )
            ctx = FiringContext(method=synthetic)
            self.kernel.bind_context(ctx)
            getattr(self.kernel, name)()
            ctx = self.kernel.release_context()
            emissions: list[tuple[str, Item]] = list(ctx.writes)
            emissions.extend(ctx.token_writes)
            results.append(
                FiringResult(
                    kernel=self.name,
                    label=f"init:{name}",
                    cycles=cost.cycles,
                    elements_read=0,
                    elements_written=ctx.elements_written,
                    emissions=emissions,
                )
            )
        return results

    # ------------------------------------------------------------------
    def ready_firing(self) -> Firing | None:
        """The next firing this kernel can perform, or None.

        All complete triggers are collected and the one whose head item
        arrived earliest fires, so cross-input ordering follows arrival
        order (a coefficient load injected before the first data element
        runs before the first convolution).
        """
        wired = self._wired
        if wired is None:
            wired = self._prime()
        if len(wired) == 1:
            # Single wired input — no cross-port tie-break needed.
            port, channel, entry = wired[0]
            items = channel.items
            if not items:
                return None
            head = items[0]
            if isinstance(head, ControlToken):
                return self._token_firing(port, head)
            if entry is None:
                raise FiringError(
                    f"{self.name}: data arrived on {port!r} which triggers "
                    "no data method"
                )
            tag = entry[0]
            if tag == "single":
                return entry[1]
            if tag == "multi":
                for ch in entry[2]:
                    if ch is None or not ch.items or isinstance(
                        ch.items[0], ControlToken
                    ):
                        return None
                return entry[1]
            return entry[1] if entry[2]() == port else None
        best: Firing | None = None
        best_seq = -1
        for port, channel, entry in wired:
            items = channel.items
            if not items:
                continue
            head = items[0]
            if isinstance(head, ControlToken):
                firing = self._token_firing(port, head)
                if firing is None:
                    continue
                seq = min(
                    self.inputs[p].head_seq()
                    for p in firing.consume_ports
                    if p in self.inputs and self.inputs[p].items
                )
            elif entry is None:
                raise FiringError(
                    f"{self.name}: data arrived on {port!r} which triggers "
                    "no data method"
                )
            else:
                tag = entry[0]
                if tag == "single":
                    firing = entry[1]
                    seq = channel.seqs[0]
                elif tag == "multi":
                    peers = entry[2]
                    ready = True
                    seq = None
                    for ch in peers:
                        if ch is None or not ch.items or isinstance(
                            ch.items[0], ControlToken
                        ):
                            ready = False
                            break
                        s = ch.seqs[0]
                        if seq is None or s < seq:
                            seq = s
                    if not ready:
                        continue
                    firing = entry[1]
                else:  # selector join: fire only on the expected input
                    if entry[2]() != port:
                        continue
                    firing = entry[1]
                    seq = channel.seqs[0]
            if best is None or seq < best_seq:
                best, best_seq = firing, seq
        return best

    def _token_firing(self, port: str, token: ControlToken) -> Firing | None:
        if port in self._transparent:
            # Feedback-loop input: drop the token (Section III-D).
            return Firing(kind="forward", method=None, consume_ports=(port,),
                          token=token)
        handler = self.kernel.token_method_for(port, type(token))
        if handler is not None:
            return Firing(
                kind="token", method=handler, consume_ports=(port,), token=token
            )
        method = self._data_method[port]
        if method is None:
            # Tokens on control-only inputs (e.g. "coeff") are dropped.
            return Firing(kind="forward", method=None, consume_ports=(port,),
                          token=token)
        # Forward once the same token heads every (token-opaque) input of
        # the method; transparent feedback inputs never carry tokens.
        for other in method.data_inputs:
            if other in self._transparent:
                continue
            head = self.inputs[other].head() if other in self.inputs else None
            if not (
                isinstance(head, ControlToken)
                and type(head) is type(token)
                and head.frame == token.frame
            ):
                return None
        opaque = tuple(
            p for p in method.data_inputs if p not in self._transparent
        )
        return Firing(
            kind="forward",
            method=method,
            consume_ports=opaque,
            token=token,
        )

    def _data_firing(self, port: str) -> Firing | None:
        method = self._data_method[port]
        if method is None:
            raise FiringError(
                f"{self.name}: data arrived on {port!r} which triggers no "
                "data method"
            )
        if method.selector is not None:
            selected = getattr(self.kernel, method.selector)()
            if selected != port:
                return None
            return Firing(kind="method", method=method, consume_ports=(port,))
        for other in method.data_inputs:
            head = self.inputs[other].head() if other in self.inputs else None
            if head is None or isinstance(head, ControlToken):
                return None
        return Firing(kind="method", method=method,
                      consume_ports=method.data_inputs)

    # ------------------------------------------------------------------
    def execute(self, firing: Firing) -> FiringResult:
        """Consume the firing's inputs, run the body, collect emissions."""
        self.firings += 1
        if firing.kind == "forward":
            return self._execute_forward(firing)

        method = firing.method
        assert method is not None
        kernel = self.kernel
        inputs = self.inputs
        consumed: dict[str, np.ndarray] = {}
        token: ControlToken | None = None
        for port in firing.consume_ports:
            channel = inputs[port]
            channel.seqs.popleft()
            item = channel.items.popleft()
            if isinstance(item, ControlToken):
                token = item
            else:
                consumed[port] = item
        ctx = FiringContext(method, consumed, token)
        # bind_context/release_context, inlined (two calls per firing).
        kernel._ctx = ctx
        try:
            body = self._bound.get(method.name)
            if body is None:
                body = getattr(kernel, method.name)
                self._bound[method.name] = body
            body()
        finally:
            kernel._ctx = None

        # The context is dead after this call, so its writes list can be
        # handed out as the emissions list without copying.
        emissions: list[tuple[str, Item]] = ctx.writes
        if ctx.token_writes:
            emissions = emissions + ctx.token_writes
        if (
            firing.kind == "token"
            and token is not None
            and kernel.forwards_token(method)
        ):
            if emissions is ctx.writes:
                emissions = list(emissions)
            for out in method.outputs:
                emissions.append((out, token))
        if kernel.charges_element_io:
            elements_read = 0
            for arr in consumed.values():
                elements_read += arr.size
            elements_written = 0
            for _, arr in ctx.writes:
                elements_written += arr.size
            if (
                kernel.sequential_input_reuse
                and firing.kind == "method"
                and len(consumed) == 1
            ):
                # Figure 9: consecutive windows from a dedicated buffer —
                # only the fresh columns of each window are new reads.
                port = next(iter(consumed))
                spec = kernel.input_spec(port)
                fresh = spec.step.x * spec.window.h
                elements_read = min(elements_read, fresh)
        else:
            # Routers move chunk descriptors: one access per chunk.
            elements_read = len(consumed)
            elements_written = len(ctx.writes)
        declared = method.cost.cycles
        if ctx.dynamic_cycles is not None:
            cycles = ctx.dynamic_cycles
            dynamic = True
        else:
            cycles = declared
            dynamic = False
        return FiringResult(
            self.name, method.name, cycles, elements_read,
            elements_written, emissions, declared, dynamic,
        )

    def _execute_forward(self, firing: Firing) -> FiringResult:
        token = firing.token
        assert token is not None
        for port in firing.consume_ports:
            popped = self.inputs[port].pop()
            assert isinstance(popped, ControlToken)
        emissions: list[tuple[str, Item]] = []
        if firing.method is not None:
            if self.kernel.should_forward_token(firing.method, token):
                for out in firing.method.outputs:
                    emissions.append((out, token))
            self.kernel.on_token_forwarded(firing.method, token)
        return FiringResult(
            kernel=self.name,
            label="<forward>",
            cycles=FORWARD_CYCLES,
            elements_read=0,
            elements_written=0,
            emissions=emissions,
        )


def build_runtime(
    app: ApplicationGraph,
) -> tuple[dict[str, RuntimeKernel], list[Channel]]:
    """Instantiate runtime kernels and channels for a compiled graph.

    Kernels are reset so repeated simulations of one graph start clean.
    """
    runtimes = {name: RuntimeKernel(k) for name, k in app.kernels.items()}
    for rk in runtimes.values():
        rk.kernel.reset()
    channels: list[Channel] = []
    seq = SeqCounter()  # shared so cross-channel arrival order is total
    for edge in app.edges:
        channel = Channel(edge.src, edge.src_port, edge.dst, edge.dst_port, seq)
        channels.append(channel)
        runtimes[edge.dst].inputs[edge.dst_port] = channel
        runtimes[edge.src].outputs[edge.src_port].append(channel)
    return runtimes, channels
