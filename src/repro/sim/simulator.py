"""Timing-accurate functional simulator (Section IV-D).

A discrete-event simulation of a compiled application on its
kernel-to-processor mapping.  Exactly like the paper's simulator it
accounts for kernel execution time, data access time, buffer transfer
time, and scheduling — and deliberately ignores placement and
communication delay, which for a throughput-constrained application only
adds first-output latency.

Model
-----
* Application inputs inject one element every ``1 / (W*H*rate)`` seconds
  in scan-line order, with end-of-line/end-of-frame tokens in-stream; the
  input cannot be stalled, so its immediate channels have finite capacity
  and an overrun is a real-time violation.
* Each firing occupies its kernel's processing element for
  ``read + run + write`` time: per-element port access costs around the
  declared method cycles.
* Kernels mapped to one element are serviced in arrival order with
  round-robin fairness — time multiplexing (Section V).
* Boundary kernels (inputs, constant sources, outputs) model off-chip I/O
  and execute without occupying a processing element.

Hot path
--------
The event loop is engineered to be observably identical to the seed
implementation preserved in :mod:`repro.sim.reference` while doing far
less interpreter work per event:

* source traffic is injected **lazily** — each input keeps one cursor
  event on the heap instead of pre-pushing ``frames x H x W`` delivery
  tuples, and all of a source's same-timestamp items drain in one
  dispatch (they are contiguous in the seed's ordering, so batching
  cannot reorder anything);
* per-kernel state (processor, output channel fan-out, overrun checks,
  backpressure wake lists) is resolved **once** into slotted records
  before the loop, eliminating the per-event dict lookups;
* per-processor statistics accumulate in plain slotted attributes and
  only become :class:`~repro.sim.stats.ProcessorStats` after the loop;
* trace recording is a branch on a precomputed local when disabled.

``tests/test_sim_conformance.py`` holds this equivalence to golden
fixtures recorded from the reference loop; see ``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from ..errors import SimulationError
from ..faults import FaultInjector, FaultSpec, FaultStats
from ..graph.app import ApplicationGraph
from ..obs.collect import Telemetry, TelemetryCollector, TelemetryConfig
from ..kernels.sources import ApplicationInput, ApplicationOutput, ConstantSource
from ..machine.noc import NocModel, NocStats, link_name, route_path
from ..machine.processor import ProcessorSpec
from ..tokens import ControlToken
from ..transform.compile import CompiledApp
from ..transform.multiplex import Mapping as KernelMapping
from .functional import source_items
from .runtime import (
    FORWARD_CYCLES,
    Channel,
    Item,
    RuntimeKernel,
    build_runtime,
)
from .stats import ProcessorStats, RealTimeVerdict, UtilizationSummary
from .trace import TraceEvent, trace_digest

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from .replay import ReplayStats

__all__ = ["BudgetOverrun", "SimulationOptions", "SimulationResult",
           "Simulator", "simulate"]


@dataclass(frozen=True, slots=True)
class SimulationOptions:
    """Simulation knobs."""

    #: Input frames to inject.
    frames: int = 4
    #: Capacity (items) of channels fed directly by an application input;
    #: exceeding it means the unstallable input overran its consumer.
    input_channel_capacity: int = 64
    #: Capacity of every other channel, or None for unbounded (the
    #: default, matching the paper's throughput-only model).  Setting a
    #: small value models the implicit single-iteration port buffers and
    #: makes producers stall when consumers lag — the Figure 9(b) effect.
    channel_capacity: int | None = None
    #: Per-channel capacity overrides keyed ``(src, src_port, dst,
    #: dst_port)``; takes precedence over ``channel_capacity``.  A buffer
    #: kernel's storage effectively extends its output channel, so the
    #: Figure 9(c) experiment gives buffer-fed channels their declared
    #: storage as capacity.
    channel_capacity_overrides: Mapping[tuple[str, str, str, str], int] | None = None
    #: Record a TraceEvent per firing (see repro.sim.trace).
    trace: bool = False
    #: Tolerance on the steady-state frame interval for the verdict.
    throughput_tolerance: float = 0.05
    #: Safety valve on total events.
    max_events: int = 20_000_000
    #: Fault scenario to inject (see :mod:`repro.faults`), or None for the
    #: perfect substrate.  A plain dict is accepted and validated through
    #: :meth:`repro.faults.FaultSpec.from_dict`.  A spec that cannot
    #: inject anything (`spec.active()` false) leaves the simulator on its
    #: zero-fault path, observably identical to passing None.
    faults: FaultSpec | None = None
    #: Telemetry collection (see :mod:`repro.obs`): None/False for off
    #: (the default — the hot path carries a single precomputed None
    #: local, observably identical to the seed), True for defaults, or a
    #: :class:`~repro.obs.TelemetryConfig` / mapping for tuned limits.
    telemetry: TelemetryConfig | None = None
    #: Network-on-chip timing model (see :mod:`repro.machine.noc`), or
    #: None for the paper's free-communication substrate.  Rides the same
    #: ``is not None`` hook seam as ``faults``/``telemetry``: off means
    #: the hot path is observably identical to the seed loop.
    noc: NocModel | None = None
    #: Quasi-static schedule replay (see :mod:`repro.sim.replay`): detect
    #: the steady-state firing period online and execute whole periods
    #: per step instead of one event at a time.  Off (the default) leaves
    #: :meth:`Simulator.run` on the exact event loop below; on, the
    #: replay engine runs whenever the configuration is eligible (no
    #: trace/faults/telemetry/NoC/bounded channels) and falls back to
    #: this loop otherwise.  Either way the observable result is
    #: bit-identical — only :attr:`SimulationResult.replay` differs.
    replay: bool = False
    #: Batched quasi-static kernel execution inside replayed periods
    #: (``repro.sim.batch``).  Inert without :attr:`replay`.  On by
    #: default because it is observation-free: batched and per-firing
    #: execution produce byte-identical results; only wall time differs.
    batch: bool = True

    def __post_init__(self) -> None:
        # Validate up front: a bad knob should name itself here, not
        # surface as a baffling stall or index error deep in the event
        # loop thousands of events later.
        if self.frames < 0:
            raise SimulationError(
                "SimulationOptions.frames must be non-negative, "
                f"got {self.frames!r}"
            )
        if self.input_channel_capacity <= 0:
            raise SimulationError(
                "SimulationOptions.input_channel_capacity must be "
                f"positive, got {self.input_channel_capacity!r}"
            )
        if self.channel_capacity is not None and self.channel_capacity <= 0:
            raise SimulationError(
                "SimulationOptions.channel_capacity must be positive or "
                f"None, got {self.channel_capacity!r}"
            )
        for key, cap in (self.channel_capacity_overrides or {}).items():
            if cap <= 0:
                raise SimulationError(
                    f"SimulationOptions.channel_capacity_overrides[{key!r}] "
                    f"must be positive, got {cap!r}"
                )
        if self.throughput_tolerance < 0:
            raise SimulationError(
                "SimulationOptions.throughput_tolerance must be "
                f"non-negative, got {self.throughput_tolerance!r}"
            )
        if self.max_events <= 0:
            raise SimulationError(
                "SimulationOptions.max_events must be positive, "
                f"got {self.max_events!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            if isinstance(self.faults, Mapping):
                object.__setattr__(
                    self, "faults", FaultSpec.from_dict(self.faults)
                )
            else:
                raise SimulationError(
                    "SimulationOptions.faults must be a FaultSpec, a "
                    f"mapping, or None, got {type(self.faults).__name__}"
                )
        if self.telemetry is not None and not isinstance(
            self.telemetry, TelemetryConfig
        ):
            object.__setattr__(
                self, "telemetry", TelemetryConfig.coerce(self.telemetry)
            )
        if self.noc is not None and not isinstance(self.noc, NocModel):
            raise SimulationError(
                "SimulationOptions.noc must be a NocModel or None, "
                f"got {type(self.noc).__name__}"
            )
        if not isinstance(self.replay, bool):
            raise SimulationError(
                "SimulationOptions.replay must be a bool, "
                f"got {type(self.replay).__name__}"
            )
        if not isinstance(self.batch, bool):
            raise SimulationError(
                "SimulationOptions.batch must be a bool, "
                f"got {type(self.batch).__name__}"
            )


@dataclass(slots=True)
class _Violation:
    time: float
    where: str
    detail: str


@dataclass(slots=True)
class BudgetOverrun:
    """A runtime exception record: a firing exceeded its declared cycles.

    Section VII's future-work extension — "runtime exceptions to indicate
    when a kernel has exceeded its allocated resources".  Overruns do not
    abort the simulation (the data still flows); they surface in the
    result so a supervisor could react, and the throughput verdict shows
    their real-time consequences.
    """

    time: float
    kernel: str
    method: str
    declared_cycles: float
    actual_cycles: float

    @property
    def factor(self) -> float:
        return (self.actual_cycles / self.declared_cycles
                if self.declared_cycles > 0 else float("inf"))


def _digest_arrays(arrays) -> str:
    """A stable content hash over a sequence of ndarrays (shape + bytes)."""
    h = hashlib.sha256()
    for arr in arrays:
        a = np.ascontiguousarray(arr, dtype=np.float64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


@dataclass(slots=True)
class SimulationResult:
    """Everything a benchmark harness needs from one simulation."""

    app: ApplicationGraph
    options: SimulationOptions
    makespan_s: float
    utilization: UtilizationSummary
    #: Output kernel name -> arrival time of each received chunk.
    output_times: Mapping[str, list[float]]
    #: Output kernel name -> received chunks (same order).
    outputs: Mapping[str, list[np.ndarray]]
    violations: list[_Violation]
    channels: list[Channel]
    firings: Mapping[str, int]
    #: Per-firing schedule records (empty unless options.trace).
    trace: list[TraceEvent] = field(default_factory=list)
    #: Runtime budget exceptions from variable-work kernels (Sec VII).
    budget_overruns: list[BudgetOverrun] = field(default_factory=list)
    #: Logical events processed: one per delivered item, poll, and firing
    #: completion.  Identical between the fast and reference loops, which
    #: the conformance suite asserts; the benchmark suite divides it by
    #: wall time for the events/sec trajectory.
    events_processed: int = 0
    #: High-water mark of the event heap (perf counter, not an observable
    #: of the simulated schedule; excluded from :meth:`as_dict`).
    peak_heap: int = 0
    #: Degradation accounting (all zeros unless a fault spec was active).
    fault_stats: FaultStats = field(default_factory=FaultStats)
    #: Full-fidelity telemetry (None unless options.telemetry enabled).
    telemetry: Telemetry | None = None
    #: Interconnect accounting (None unless options.noc was set).
    noc_stats: NocStats | None = None
    #: Replay-engine accounting (None unless options.replay was set).
    #: Like ``peak_heap`` this is an execution-strategy counter, not an
    #: observable of the simulated schedule, so it is excluded from
    #: :meth:`as_dict` — replay-on and replay-off runs must produce the
    #: same conformance surface.
    replay: "ReplayStats | None" = None

    def frame_completions(self, output: str, chunks_per_frame: int) -> list[float]:
        """Completion time of each full frame at ``output``."""
        times = self.output_times.get(output, [])
        return [
            times[i]
            for i in range(chunks_per_frame - 1, len(times), chunks_per_frame)
        ]

    def as_dict(self) -> dict:
        """Canonical, JSON-safe view of everything the simulation observed.

        This is the conformance surface: two simulator implementations
        are considered identical when their ``as_dict()`` match exactly.
        Bulk payloads (received chunks, the trace) appear as counts plus
        content digests so golden fixtures stay reviewable; wall-clock
        perf counters (``peak_heap``) are deliberately excluded.  The
        ``faults`` section appears only when a fault spec was active, so
        fault-free runs keep the exact key set the golden conformance
        fixtures were recorded with.
        """
        d = {
            "makespan_s": self.makespan_s,
            "events": self.events_processed,
            "utilization": self.utilization.as_dict(),
            "output_times": {
                name: list(times) for name, times in self.output_times.items()
            },
            "outputs": {
                name: {"count": len(chunks), "sha256": _digest_arrays(chunks)}
                for name, chunks in self.outputs.items()
            },
            "violations": [
                {"time": v.time, "where": v.where, "detail": v.detail}
                for v in self.violations
            ],
            "channels": [
                {
                    "src": ch.src, "src_port": ch.src_port,
                    "dst": ch.dst, "dst_port": ch.dst_port,
                    "capacity": ch.capacity,
                    "max_occupancy": ch.max_occupancy,
                    "total_data": ch.total_data,
                    "total_tokens": ch.total_tokens,
                }
                for ch in self.channels
            ],
            "firings": dict(self.firings),
            "budget_overruns": [
                {
                    "time": b.time, "kernel": b.kernel, "method": b.method,
                    "declared_cycles": b.declared_cycles,
                    "actual_cycles": b.actual_cycles,
                }
                for b in self.budget_overruns
            ],
            "trace": {
                "events": len(self.trace),
                "sha256": trace_digest(self.trace),
            },
        }
        spec = self.options.faults
        if spec is not None and spec.active():
            d["faults"] = self.fault_stats.as_dict()
        # Like faults: the key exists only when the feature was on, so
        # telemetry-off runs keep the recorded fixtures' exact key set.
        if self.telemetry is not None:
            d["telemetry"] = self.telemetry.as_dict()
        # Same contract again: link-utilization and worst-link stats
        # appear only when a NoC model was active.
        if self.noc_stats is not None:
            d["noc"] = self.noc_stats.as_dict(self.makespan_s)
        return d

    def verdict(
        self,
        output: str,
        *,
        rate_hz: float,
        chunks_per_frame: int,
        frames: int | None = None,
        allow_shedding: bool = False,
    ) -> RealTimeVerdict:
        """Real-time verdict at one application output.

        Meets real-time when every expected frame completed, steady-state
        completion intervals stay within tolerance of the frame period,
        and the input never overran.  The first frame's fill latency is
        excluded — the paper's model likewise treats initial latency as
        irrelevant to throughput.

        With ``allow_shedding=True`` a run that shed data under faults is
        judged on resynchronization instead of completeness: the frames
        that did complete must land on the frame-period grid (each
        completion interval within tolerance of an integer number of
        periods), and the missing ones are reported as ``frames_shed``
        rather than as a failure.  Without it, shed frames fail the
        verdict exactly like any other missing frame — shedding is an
        explicitly accepted degradation, never a silent one.
        """
        frames = frames if frames is not None else self.options.frames
        period = 1.0 / rate_hz
        completions = self.frame_completions(output, chunks_per_frame)
        overruns = len(self.violations)
        fs = self.fault_stats
        shed_activity = (fs.data_shed + fs.transfers_dropped) > 0
        missing = max(0, frames - len(completions))
        frames_shed = missing if shed_activity else 0
        if len(completions) < frames:
            if allow_shedding and shed_activity and len(completions) >= 1:
                intervals = [
                    b - a for a, b in zip(completions, completions[1:])
                ]
                worst = max(intervals) if intervals else 0.0
                tol = period * self.options.throughput_tolerance
                # Resync criterion: a gap of k shed frames shows up as an
                # interval of ~k+1 periods; any drift off the period grid
                # means the stream never resynchronized after shedding.
                ok = all(
                    abs(iv - max(1, round(iv / period)) * period) <= tol
                    for iv in intervals
                )
                reason = ("" if ok
                          else "shed stream did not resync to frame period")
                if overruns:
                    ok = False
                    reason = "input overran its consumer"
                return RealTimeVerdict(
                    meets=ok,
                    frames_expected=frames,
                    frames_completed=len(completions),
                    worst_interval_s=worst,
                    frame_period_s=period,
                    input_overruns=overruns,
                    reason=reason,
                    frames_shed=frames_shed,
                )
            return RealTimeVerdict(
                meets=False,
                frames_expected=frames,
                frames_completed=len(completions),
                worst_interval_s=float("inf"),
                frame_period_s=period,
                input_overruns=overruns,
                reason="not all frames completed",
                frames_shed=frames_shed,
            )
        intervals = [
            b - a for a, b in zip(completions, completions[1:frames])
        ]
        worst = max(intervals) if intervals else 0.0
        ok = worst <= period * (1.0 + self.options.throughput_tolerance)
        reason = "" if ok else "frame interval exceeds period"
        if overruns:
            ok = False
            reason = "input overran its consumer"
        return RealTimeVerdict(
            meets=ok,
            frames_expected=frames,
            frames_completed=len(completions),
            worst_interval_s=worst,
            frame_period_s=period,
            input_overruns=overruns,
            reason=reason,
        )


# Event kinds, ordered so same-time events process deterministically:
# source deliveries before completions before NoC arrivals before polls.
# (_ARRIVE events exist only when a NoC model is active; the relative
# order of the other three is exactly the seed's.)
_DELIVER, _FINISH, _ARRIVE, _POLL = 0, 1, 2, 3


class _ProcState:
    """Mutable per-processor record resolved once before the event loop."""

    __slots__ = ("index", "free_at", "pending", "read_s", "run_s", "write_s",
                 "firings", "kernels", "dead_at", "dead", "slow", "moved_to")

    def __init__(self, index: int) -> None:
        self.index = index
        self.free_at = 0.0
        self.pending: deque = deque()
        self.read_s = 0.0
        self.run_s = 0.0
        self.write_s = 0.0
        self.firings = 0
        self.kernels: set[str] = set()
        # Fault-model state; inert (and never consulted) on the
        # zero-fault path.
        self.dead_at: float | None = None
        self.dead = False
        self.slow = 1.0
        self.moved_to: "_ProcState | None" = None

    def to_stats(self) -> ProcessorStats:
        return ProcessorStats(
            index=self.index, read_s=self.read_s, run_s=self.run_s,
            write_s=self.write_s, firings=self.firings, kernels=self.kernels,
        )


class _KernelState:
    """Per-kernel hot-loop record: everything the event loop needs without
    touching the runtime tables again."""

    __slots__ = ("rk", "name", "proc", "running", "out", "wake",
                 "out_channels", "max_emissions", "is_output", "output_times",
                 "ready", "execute", "attempts", "fault_since")

    def __init__(self, rk: RuntimeKernel, proc: _ProcState | None) -> None:
        self.rk = rk
        self.name = rk.name
        self.ready = rk.ready_firing
        self.execute = rk.execute
        self.proc = proc
        self.running = False
        #: Consecutive faulted attempts of the current firing (retry state).
        self.attempts = 0
        #: Time the current fault burst started, for recovery latency.
        self.fault_since = 0.0
        #: port -> tuple of (channel, consumer state, overrun-checked?).
        self.out: dict[str, tuple] = {}
        #: port -> producer state, for backpressure wake-ups (bounded runs).
        self.wake: dict[str, "_KernelState"] = {}
        self.out_channels: tuple[Channel, ...] = ()
        self.max_emissions = rk.kernel.max_emissions_per_firing
        self.is_output = isinstance(rk.kernel, ApplicationOutput)
        self.output_times: list[float] = []


def _resync_shed(
    st: _KernelState,
    fstats: FaultStats,
    tele: TelemetryCollector | None = None,
    time: float = 0.0,
) -> bool:
    """Frame-level resynchronization at a multi-input join (shed mode).

    After data has been lost (a shed firing upstream, a dropped
    transfer), a join can starve: one input presents its end-of-frame
    token while a sibling still presents unmatched data that will never
    get its partner.  Left alone the join deadlocks and the stream never
    recovers.  The shedding policy instead drains the unmatched data up
    to each input's own token — abandoning the rest of the degraded
    frame — so the tokens align, the frame boundary forwards, and the
    next frame starts clean.  Returns True when anything was dropped.

    Only triggers on a genuine mismatch (token head on one input of a
    multi-input method, data head on another), which on a fault-free run
    is impossible: the unit-rate invariant keeps sibling inputs in
    lock-step.
    """
    rk = st.rk
    dropped = False
    seen: list = []
    for port in rk._ports:
        method = rk._data_method.get(port)
        if method is None or len(method.data_inputs) <= 1 or method in seen:
            continue
        seen.append(method)
        chans = [rk.inputs.get(p) for p in method.data_inputs]
        if any(ch is None for ch in chans):
            continue
        heads = [ch.items[0] if ch.items else None for ch in chans]
        has_token = any(isinstance(h, ControlToken) for h in heads)
        has_data = any(
            h is not None and not isinstance(h, ControlToken) for h in heads
        )
        if not (has_token and has_data):
            continue
        for ch in chans:
            items = ch.items
            shed = 0
            while items and not isinstance(items[0], ControlToken):
                ch.seqs.popleft()
                items.popleft()
                shed += 1
            if shed:
                fstats.data_shed += shed
                dropped = True
                if tele is not None:
                    tele.shed_channel(time, ch, shed)
    return dropped


def _timed_source_items(
    kernel: ApplicationInput, frames: int
) -> Iterator[tuple[float, Item]]:
    """(time, item) schedule of one application input.

    Reproduces the seed's accumulation exactly: tokens share the
    timestamp of the element that follows them, and element times are the
    running float sum of the period (not ``i * period``).
    """
    period = kernel.element_period
    t = 0.0
    for item in source_items(kernel, frames):
        yield t, item
        if isinstance(item, np.ndarray):
            t += period


class Simulator:
    """Discrete-event simulator for a compiled application."""

    def __init__(
        self,
        graph: ApplicationGraph,
        mapping: KernelMapping,
        processor: ProcessorSpec,
        options: SimulationOptions | None = None,
    ) -> None:
        self.graph = graph
        self.mapping = mapping
        self.processor = processor
        # A fresh instance per simulator: a shared module-level default
        # would be one unfreeze away from cross-run option bleed.
        self.options = options if options is not None else SimulationOptions()

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        # The replay seam mirrors the faults/telemetry/NoC hook
        # discipline: one precomputed check, and replay-off runs the
        # byte-for-byte identical event loop below (the engine lives in
        # its own module and is never imported on this path).
        if self.options.replay:
            from .replay import run_with_replay

            return run_with_replay(self)
        return self._run_des()

    def _run_des(self) -> SimulationResult:
        """The discrete-event loop proper (one heap pop per event)."""
        runtimes, channels = build_runtime(self.graph)
        opts = self.options

        # --- channel capacities (overrides beat the blanket setting) ----
        input_channels = {
            id(ch)
            for ch in channels
            if isinstance(runtimes[ch.src].kernel, ApplicationInput)
        }
        overrides = opts.channel_capacity_overrides or {}
        for ch in channels:
            key = (ch.src, ch.src_port, ch.dst, ch.dst_port)
            if key in overrides:
                ch.capacity = overrides[key]
            elif (opts.channel_capacity is not None
                  and id(ch) not in input_channels):
                # Input-fed channels stay unbounded: the input cannot be
                # stalled, overrun detection covers them instead.
                ch.capacity = opts.channel_capacity

        # --- per-kernel / per-processor state, resolved once ------------
        proc_states: dict[int, _ProcState] = {}
        states: dict[str, _KernelState] = {}
        for name, rk in runtimes.items():
            proc = self.mapping.processor_of(name)
            pstate = None
            if proc is not None:
                pstate = proc_states.get(proc)
                if pstate is None:
                    pstate = proc_states[proc] = _ProcState(proc)
                pstate.kernels.add(name)
            states[name] = _KernelState(rk, pstate)
        for name, rk in runtimes.items():
            st = states[name]
            out: dict[str, tuple] = {}
            flat: list[Channel] = []
            for port, chans in rk.outputs.items():
                out[port] = tuple(
                    (ch, states[ch.dst], id(ch) in input_channels)
                    for ch in chans
                )
                flat.extend(chans)
            st.out = out
            st.out_channels = tuple(flat)
            st.wake = {
                port: states[ch.src]
                for port, ch in rk.inputs.items()
                if ch.capacity is not None
            }

        # --- fault machinery (fully inert when no spec is active) --------
        fault_spec = opts.faults
        if fault_spec is not None and not fault_spec.active():
            fault_spec = None
        injector: FaultInjector | None = None
        recovery = None
        fstats = FaultStats()
        spare_pool: list[int] = []
        dead_map: dict[int, float] = {}
        slow_map: dict[int, float] = {}
        ch_faulted: set[int] | None = None
        if fault_spec is not None:
            injector = FaultInjector(fault_spec)
            fstats = injector.stats
            recovery = fault_spec.recovery
            dead_map = {f.processor: f.time_s for f in fault_spec.pe_failures}
            slow_map = dict(fault_spec.slow_pes)
            for proc, ps in proc_states.items():
                ps.dead_at = dead_map.get(proc)
                ps.slow = slow_map.get(proc, 1.0)
            spare_pool = [
                p for p in getattr(self.mapping, "spares", ())
                if p not in proc_states
            ]
            chf = fault_spec.channel
            if chf.drop_probability > 0.0 or chf.duplicate_probability > 0.0:
                edges = set(chf.edges)
                ch_faulted = {
                    id(ch) for ch in channels
                    if not edges
                    or (ch.src, ch.src_port, ch.dst, ch.dst_port) in edges
                }

        violations: list[_Violation] = []
        trace: list[TraceEvent] = []
        trace_on = opts.trace
        budget_overruns: list[BudgetOverrun] = []

        # Telemetry rides the same seam as the fault injector: one
        # precomputed local, `is not None` checks only — off means the
        # hot path is byte-for-byte the seed-conformant loop.
        tele: TelemetryCollector | None = (
            TelemetryCollector(opts.telemetry)
            if opts.telemetry is not None else None
        )

        events: list = []
        seq = itertools.count()
        next_seq = seq.__next__
        heappush = heapq.heappush
        heappop = heapq.heappop
        peak_heap = 0

        # Deliveries at a timestamp always process before polls at that
        # timestamp (event-kind ordering), so one queued poll per kernel
        # per timestamp observes everything — duplicates are pure waste.
        queued_polls: dict[_KernelState, float] = {}

        input_cap = opts.input_channel_capacity

        def deliver(time: float, st_src: _KernelState, port: str, item) -> None:
            nonlocal peak_heap
            is_token = isinstance(item, ControlToken)
            dup = False
            for ch, dst, checked in st_src.out.get(port, ()):
                if (ch_faulted is not None and not is_token
                        and id(ch) in ch_faulted):
                    # Interconnect faults strike per data transfer; control
                    # tokens ride the reliable control plane.
                    if injector.transfer_dropped():
                        continue
                    dup = injector.transfer_duplicated()
                # Channel.push, inlined: stamp, count, track occupancy.
                items = ch.items
                items.append(item)
                counter = ch.seq
                counter.value = stamp = counter.value + 1
                ch.seqs.append(stamp)
                if is_token:
                    ch.total_tokens += 1
                else:
                    ch.total_data += 1
                occupancy = len(items)
                if occupancy > ch.max_occupancy:
                    ch.max_occupancy = occupancy
                if checked and occupancy > input_cap:
                    violations.append(
                        _Violation(
                            time=time,
                            where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                            detail="input overran its consumer",
                        )
                    )
                if dup:
                    # Replayed transfer: the consumer sees the item twice,
                    # with full stamp/occupancy/overrun accounting.
                    dup = False
                    items.append(item)
                    counter.value = stamp = counter.value + 1
                    ch.seqs.append(stamp)
                    ch.total_data += 1
                    occupancy = len(items)
                    if occupancy > ch.max_occupancy:
                        ch.max_occupancy = occupancy
                    if checked and occupancy > input_cap:
                        violations.append(
                            _Violation(
                                time=time,
                                where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                                detail="input overran its consumer",
                            )
                        )
                if queued_polls.get(dst) != time:
                    queued_polls[dst] = time
                    heappush(events, (time, _POLL, next_seq(), dst))
                    if len(events) > peak_heap:
                        peak_heap = len(events)

        if tele is not None:
            # Telemetry-on variant: identical observable behavior plus a
            # span hook after every push.  A separate closure (rather
            # than per-push `tele is not None` branches) keeps the
            # telemetry-off deliver — the hottest code in the loop —
            # byte-for-byte the seed-conformant version above; any edit
            # there must be mirrored here.
            def deliver(time: float, st_src: _KernelState, port: str,
                        item) -> None:
                nonlocal peak_heap
                is_token = isinstance(item, ControlToken)
                dup = False
                for ch, dst, checked in st_src.out.get(port, ()):
                    if (ch_faulted is not None and not is_token
                            and id(ch) in ch_faulted):
                        if injector.transfer_dropped():
                            tele.transfer_dropped(time, ch)
                            continue
                        dup = injector.transfer_duplicated()
                    items = ch.items
                    items.append(item)
                    counter = ch.seq
                    counter.value = stamp = counter.value + 1
                    ch.seqs.append(stamp)
                    if is_token:
                        ch.total_tokens += 1
                    else:
                        ch.total_data += 1
                    occupancy = len(items)
                    if occupancy > ch.max_occupancy:
                        ch.max_occupancy = occupancy
                    if checked and occupancy > input_cap:
                        violations.append(
                            _Violation(
                                time=time,
                                where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                                detail="input overran its consumer",
                            )
                        )
                    tele.transfer(time, ch, item, is_token)
                    if dup:
                        dup = False
                        items.append(item)
                        counter.value = stamp = counter.value + 1
                        ch.seqs.append(stamp)
                        ch.total_data += 1
                        occupancy = len(items)
                        if occupancy > ch.max_occupancy:
                            ch.max_occupancy = occupancy
                        if checked and occupancy > input_cap:
                            violations.append(
                                _Violation(
                                    time=time,
                                    where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                                    detail="input overran its consumer",
                                )
                            )
                        tele.transfer(time, ch, item, is_token)
                    if queued_polls.get(dst) != time:
                        queued_polls[dst] = time
                        heappush(events, (time, _POLL, next_seq(), dst))
                        if len(events) > peak_heap:
                            peak_heap = len(events)

        # --- NoC timing model (inert and absent when opts.noc is None) ---
        # The third deliver variant: inter-element data transfers are
        # routed XY over the mesh with per-link contention and land as
        # _ARRIVE events; local/off-chip transfers and control tokens
        # keep the seed's instant-push semantics (tokens additionally
        # never overtake data in flight on their channel).  A separate
        # closure again keeps the NoC-off deliver byte-identical.
        noc = opts.noc
        nstats = NocStats()
        noc_push = None
        if noc is not None:
            placed_tiles = noc.placement.tiles
            need = set(proc_states) | set(getattr(self.mapping, "spares", ()))
            unplaced = sorted(p for p in need if p not in placed_tiles)
            if unplaced:
                raise SimulationError(
                    "NoC placement has no tiles for processors "
                    f"{unplaced}; it covers {sorted(placed_tiles)}"
                )
            nstats.cols = noc.chip.cols
            clock_for_noc = self.processor.clock_hz
            hop_s = noc.per_hop_cycles / clock_for_noc
            ser_cpe = noc.serialization_cycles_per_element
            link_busy: dict[int, float] = {}
            link_busy_s = nstats.link_busy_s
            route_cache: dict[tuple[int, int], tuple[int, ...]] = {}
            route_strs: dict[tuple[int, int], str] = {}
            link_labels: dict[int, str] = {}
            #: id(channel) -> latest scheduled arrival (FIFO fence).
            ch_last: dict[int, float] = {}

            def noc_push(time: float, ch, dst, checked: bool, item,
                         is_token: bool, meta) -> None:
                """Land one item on its channel (shared by the local path
                and the _ARRIVE handler); mirrors the seed's inlined
                Channel.push exactly."""
                nonlocal peak_heap
                items = ch.items
                items.append(item)
                counter = ch.seq
                counter.value = stamp = counter.value + 1
                ch.seqs.append(stamp)
                if is_token:
                    ch.total_tokens += 1
                else:
                    ch.total_data += 1
                occupancy = len(items)
                if occupancy > ch.max_occupancy:
                    ch.max_occupancy = occupancy
                if checked and occupancy > input_cap:
                    violations.append(
                        _Violation(
                            time=time,
                            where=f"{ch.src}->{ch.dst}.{ch.dst_port}",
                            detail="input overran its consumer",
                        )
                    )
                if tele is not None:
                    if meta is None:
                        tele.transfer(time, ch, item, is_token)
                    else:
                        hops, wait, rstr, links = meta
                        tele.transfer(time, ch, item, is_token, hops=hops,
                                      link_wait_s=wait, route=rstr,
                                      links=links)
                if queued_polls.get(dst) != time:
                    queued_polls[dst] = time
                    heappush(events, (time, _POLL, next_seq(), dst))
                    if len(events) > peak_heap:
                        peak_heap = len(events)

            def deliver(time: float, st_src: _KernelState, port: str,
                        item) -> None:
                nonlocal peak_heap
                is_token = isinstance(item, ControlToken)
                ser_s = 0.0 if is_token else item.size * ser_cpe / clock_for_noc
                dup = False
                for ch, dst, checked in st_src.out.get(port, ()):
                    if (ch_faulted is not None and not is_token
                            and id(ch) in ch_faulted):
                        # Interconnect faults strike at injection, before
                        # the transfer occupies any link.
                        if injector.transfer_dropped():
                            if tele is not None:
                                tele.transfer_dropped(time, ch)
                            continue
                        dup = injector.transfer_duplicated()
                    sp = st_src.proc
                    dp = dst.proc
                    if sp is None or dp is None or sp is dp:
                        route = ()
                    else:
                        key = (sp.index, dp.index)
                        route = route_cache.get(key)
                        if route is None:
                            route = route_cache[key] = noc.route(*key)
                    copies = 2 if dup else 1
                    dup = False
                    for _ in range(copies):
                        if not route:
                            if not is_token:
                                nstats.transfers_local += 1
                            noc_push(time, ch, dst, checked, item,
                                     is_token, None)
                            continue
                        chid = id(ch)
                        last = ch_last.get(chid, 0.0)
                        links_meta = ()
                        if is_token:
                            # Control plane: free, but FIFO per channel.
                            arrival = time if time > last else last
                            wait = 0.0
                            nstats.control_transfers += 1
                        else:
                            t = time
                            wait = 0.0
                            track = tele is not None
                            if track:
                                links_meta = []
                            for link in route:
                                busy = link_busy.get(link, 0.0)
                                start = busy if busy > t else t
                                wait += start - t
                                end = start + ser_s
                                link_busy[link] = end
                                link_busy_s[link] = (
                                    link_busy_s.get(link, 0.0) + ser_s
                                )
                                if track:
                                    label = link_labels.get(link)
                                    if label is None:
                                        label = link_labels[link] = \
                                            link_name(link, nstats.cols)
                                    links_meta.append((label, start, end))
                                t = start + hop_s
                            arrival = t + ser_s
                            if arrival < last:
                                arrival = last
                            nstats.transfers_routed += 1
                            nstats.total_hops += len(route)
                            nstats.link_wait_s += wait
                        ch_last[chid] = arrival
                        meta = None
                        if tele is not None and not is_token:
                            rstr = route_strs.get(key)
                            if rstr is None:
                                rstr = route_strs[key] = \
                                    route_path(route, nstats.cols)
                            meta = (len(route), wait, rstr,
                                    tuple(links_meta))
                        heappush(events, (arrival, _ARRIVE, next_seq(),
                                          (ch, dst, checked, item,
                                           is_token, meta)))
                        if len(events) > peak_heap:
                            peak_heap = len(events)

        # --- startup: init methods, then lazy source cursors -------------
        for name, rk in runtimes.items():
            for result in rk.run_init():
                st = states[name]
                for port, item in result.emissions:
                    deliver(0.0, st, port, item)

        # One cursor per source, ordered constant-sources-then-inputs so
        # t=0 coefficient/bin loads beat the first data element (the same
        # ordering the functional executor and the seed loop guarantee).
        # The cursor's heap tie-breaker is its source index, which equals
        # the seed's pre-push sequence ordering at every shared timestamp.
        horizon = 0.0
        source_states: list[_KernelState] = []
        source_iters: list[Iterator[tuple[float, Item]]] = []
        for name, rk in runtimes.items():
            if isinstance(rk.kernel, ConstantSource):
                source_states.append(states[name])
                source_iters.append(
                    iter(((0.0, rk.kernel.values.copy()),))
                )
        for name, rk in runtimes.items():
            kernel = rk.kernel
            if isinstance(kernel, ApplicationInput):
                source_states.append(states[name])
                source_iters.append(_timed_source_items(kernel, opts.frames))
                horizon = max(horizon, opts.frames / kernel.rate_hz)
        source_heads: list[tuple[float, Item] | None] = []
        for idx, it in enumerate(source_iters):
            head = next(it, None)
            source_heads.append(head)
            if head is not None:
                heappush(events, (head[0], _DELIVER, idx, idx))
        if len(events) > peak_heap:
            peak_heap = len(events)

        # --- main loop ---------------------------------------------------
        makespan = 0.0
        processed = 0
        max_events = opts.max_events
        bounded = (
            opts.channel_capacity is not None
            or bool(opts.channel_capacity_overrides)
        )
        clock = self.processor.clock_hz
        rcpe = self.processor.read_cycles_per_element
        wcpe = self.processor.write_cycles_per_element

        def on_dead(ps: _ProcState, time: float) -> None:
            """Observe (lazily, at a poll) that ``ps`` is past its death time.

            Fail-stop at firing boundaries: an in-flight firing completes,
            then the element never starts another.  The first observation
            marks it dead and — policy and spares permitting — migrates
            its whole kernel group to a spare element, which only accepts
            work after ``migration_cycles`` of state transfer.  Spares
            inherit the scenario's slow/death schedule, so a doomed spare
            chains into the next migration.
            """
            nonlocal peak_heap
            if ps.dead:
                return
            ps.dead = True
            fstats.pe_deaths += 1
            if tele is not None:
                tele.pe_death(time, ps.index)
            if recovery.migrate and spare_pool:
                new_idx = spare_pool.pop(0)
                new = proc_states.get(new_idx)
                if new is None:
                    new = proc_states[new_idx] = _ProcState(new_idx)
                    new.dead_at = dead_map.get(new_idx)
                    new.slow = slow_map.get(new_idx, 1.0)
                ready_at = time + recovery.migration_cycles / clock
                if new.free_at < ready_at:
                    new.free_at = ready_at
                fstats.migrations += 1
                fstats.recovery_latency_s += ready_at - ps.dead_at
                if tele is not None:
                    tele.migration(time, ps.index, new.index, ready_at,
                                   sorted(ps.kernels))
                new.kernels |= ps.kernels
                for kst in ps.pending:
                    if kst not in new.pending:
                        new.pending.append(kst)
                ps.pending.clear()
                # Sorted for determinism: set order varies across
                # processes (hash randomization), replays must not.
                for name in sorted(ps.kernels):
                    kst = states[name]
                    kst.proc = new
                    if queued_polls.get(kst) != ready_at:
                        queued_polls[kst] = ready_at
                        heappush(events, (ready_at, _POLL, next_seq(), kst))
                if len(events) > peak_heap:
                    peak_heap = len(events)
                ps.moved_to = new
            else:
                # No spare (or no migration policy): the group stalls
                # forever — a permanent, unrecovered service loss.
                fstats.unrecovered += 1
                ps.moved_to = None

        while events:
            time, kind, _, payload = heappop(events)
            makespan = time  # heap pops are time-ordered: last pop wins

            if kind == _POLL:
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )
                st = payload
                # The entry (when present) always equals this poll's time:
                # polls are deduped per timestamp and future deliveries
                # cannot precede this pop in heap order.
                queued_polls.pop(st, None)
                if st.running:
                    continue
                ps = st.proc
                if ps is None:
                    # Off-chip boundary kernel: executes instantly.
                    st_ready = st.ready
                    st_execute = st.execute
                    while True:
                        firing = st_ready()
                        if firing is None:
                            break
                        result = st_execute(firing)
                        if tele is not None:
                            tele.io_firing(time, st, firing, result)
                        if bounded:
                            for port in firing.consume_ports:
                                src = st.wake.get(port)
                                if src is not None and \
                                        queued_polls.get(src) != time:
                                    queued_polls[src] = time
                                    heappush(events,
                                             (time, _POLL, next_seq(), src))
                        if st.is_output and firing.kind == "method":
                            times_out = st.output_times
                            for _port in firing.consume_ports:
                                times_out.append(time)
                        for port, item in result.emissions:
                            deliver(time, st, port, item)
                else:
                    if (injector is not None and ps.dead_at is not None
                            and time >= ps.dead_at):
                        # Dead element: migrate its kernels (or stall them
                        # forever); either way this poll is over.
                        on_dead(ps, time)
                        continue
                    if ps.free_at > time:
                        pending = ps.pending
                        if st not in pending:
                            pending.append(st)
                        continue
                    firing = st.ready()
                    if firing is None:
                        if (injector is not None and recovery.shed
                                and (fstats.data_shed
                                     or fstats.transfers_dropped)
                                and _resync_shed(st, fstats, tele, time)):
                            firing = st.ready()
                        if firing is None:
                            continue
                    if bounded:
                        me = st.max_emissions
                        blocked = False
                        for ch in st.out_channels:
                            cap = ch.capacity
                            if cap is not None and len(ch.items) + me > cap:
                                blocked = True
                                break
                        if blocked:
                            # Backpressure stall: re-polled when a
                            # consumer frees space.
                            if tele is not None:
                                tele.stall(time, st.name, ps.index)
                            continue
                    if injector is not None:
                        # The firing index counts *executed* firings, so a
                        # retried attempt consults the same schedule slot.
                        if injector.firing_faulted(st.name, st.rk.firings):
                            if st.attempts < recovery.max_retries:
                                # Retry with backoff: the element burns the
                                # attempt's declared cycles detecting the
                                # fault, then idles through the backoff.
                                if st.attempts == 0:
                                    st.fault_since = time
                                st.attempts += 1
                                fstats.retries += 1
                                method = firing.method
                                declared = (method.cost.cycles
                                            if method is not None
                                            else FORWARD_CYCLES)
                                detect_s = declared / clock * ps.slow
                                backoff_s = (recovery.backoff_cycles
                                             * st.attempts / clock)
                                ps.run_s += detect_s
                                ps.free_at = time + detect_s + backoff_s
                                st.running = True
                                if trace_on or tele is not None:
                                    label = (method.name
                                             if method is not None
                                             else "<forward>")
                                    if trace_on:
                                        trace.append(TraceEvent(
                                            start_s=time, processor=ps.index,
                                            kernel=st.name,
                                            method=f"fault:{label}",
                                            read_s=0.0, run_s=detect_s,
                                            write_s=0.0,
                                        ))
                                    if tele is not None:
                                        tele.fault_retry(
                                            time, ps.index, st.name, label,
                                            detect_s, backoff_s,
                                        )
                                heappush(events,
                                         (ps.free_at, _FINISH, next_seq(),
                                          (st, None)))
                                if len(events) > peak_heap:
                                    peak_heap = len(events)
                                continue
                            # Retries exhausted: the firing still runs (its
                            # inputs must drain for the stream to advance)
                            # but its data is sacrificed below.
                            faulted_final = True
                            fstats.unrecovered += 1
                            st.attempts = 0
                        else:
                            if st.attempts:
                                fstats.recovered += 1
                                fstats.recovery_latency_s += \
                                    time - st.fault_since
                                st.attempts = 0
                            faulted_final = False
                    result = st.execute(firing)
                    if injector is not None and faulted_final:
                        if recovery.shed:
                            # Shed: drop the data, keep the control tokens
                            # so the frame structure resynchronizes.
                            kept = [
                                (p, it) for p, it in result.emissions
                                if isinstance(it, ControlToken)
                            ]
                            shed = len(result.emissions) - len(kept)
                            fstats.data_shed += shed
                            result.emissions = kept
                            if tele is not None:
                                tele.fault_outcome(
                                    time, st.name, ps.index, "shed", shed
                                )
                        else:
                            # No shedding: corrupted (zeroed) data flows
                            # on — the silent-divergence baseline.
                            fstats.corrupted += 1
                            result.emissions = [
                                (p, np.zeros_like(it)
                                 if isinstance(it, np.ndarray) else it)
                                for p, it in result.emissions
                            ]
                            if tele is not None:
                                tele.fault_outcome(
                                    time, st.name, ps.index, "corrupt", 1
                                )
                    if bounded:
                        for port in firing.consume_ports:
                            src = st.wake.get(port)
                            if src is not None and \
                                    queued_polls.get(src) != time:
                                queued_polls[src] = time
                                heappush(events,
                                         (time, _POLL, next_seq(), src))
                    if result.dynamic and result.cycles > result.declared_cycles:
                        budget_overruns.append(BudgetOverrun(
                            time=time, kernel=st.name, method=result.label,
                            declared_cycles=result.declared_cycles,
                            actual_cycles=result.cycles,
                        ))
                    read_s = result.elements_read * rcpe / clock
                    run_s = result.cycles / clock
                    write_s = result.elements_written * wcpe / clock
                    if injector is not None and ps.slow != 1.0:
                        slow = ps.slow
                        read_s *= slow
                        run_s *= slow
                        write_s *= slow
                    duration = read_s + run_s + write_s
                    ps.read_s += read_s
                    ps.run_s += run_s
                    ps.write_s += write_s
                    ps.firings += 1
                    ps.free_at = time + duration
                    st.running = True
                    if trace_on:
                        trace.append(TraceEvent(
                            start_s=time, processor=ps.index, kernel=st.name,
                            method=result.label, read_s=read_s, run_s=run_s,
                            write_s=write_s,
                        ))
                    if tele is not None:
                        tele.firing(time, ps.index, st, firing, result,
                                    read_s, run_s, write_s)
                    heappush(events,
                             (time + duration, _FINISH, next_seq(),
                              (st, result)))
                    if len(events) > peak_heap:
                        peak_heap = len(events)

            elif kind == _FINISH:
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )
                st, result = payload
                st.running = False
                if result is not None:
                    for port, item in result.emissions:
                        deliver(time, st, port, item)
                # A None result is a retry sentinel: the faulted attempt's
                # detect+backoff window just ended, so the kernel re-polls
                # (below) and attempts the same firing again.
                ps = st.proc
                if ps is not None:
                    pending = ps.pending
                    pending.append(st)
                    # Poll everything sharing the (now free) element, in
                    # arrival order; only one will win the processor.
                    for other in pending:
                        if queued_polls.get(other) != time:
                            queued_polls[other] = time
                            heappush(events, (time, _POLL, next_seq(), other))
                    pending.clear()
                    if len(events) > peak_heap:
                        peak_heap = len(events)

            elif kind == _ARRIVE:
                # NoC arrival: a routed transfer reaches its consumer.
                # Exists only when a NoC model is active, so the three
                # seed event kinds above dispatch exactly as before.
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )
                ch, dst, checked, item, is_token, meta = payload
                noc_push(time, ch, dst, checked, item, is_token, meta)

            else:  # _DELIVER: one source cursor; drain its timestamp batch
                idx = payload
                st = source_states[idx]
                it = source_iters[idx]
                head = source_heads[idx]
                while head is not None and head[0] == time:
                    processed += 1
                    deliver(time, st, "out", head[1])
                    head = next(it, None)
                source_heads[idx] = head
                if head is not None:
                    heappush(events, (head[0], _DELIVER, idx, idx))
                    if len(events) > peak_heap:
                        peak_heap = len(events)
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "the application is likely livelocked"
                    )

        duration = max(makespan, horizon)
        utilization = UtilizationSummary(
            duration_s=duration,
            processors={
                proc: ps.to_stats() for proc, ps in proc_states.items()
            },
        )
        output_times = {
            name: states[name].output_times
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }
        outputs = {
            name: list(rk.kernel.received)
            for name, rk in runtimes.items()
            if isinstance(rk.kernel, ApplicationOutput)
        }
        return SimulationResult(
            app=self.graph,
            options=opts,
            makespan_s=makespan,
            utilization=utilization,
            output_times=output_times,
            outputs=outputs,
            violations=violations,
            channels=channels,
            firings={name: rk.firings for name, rk in runtimes.items()},
            trace=trace,
            budget_overruns=budget_overruns,
            events_processed=processed,
            peak_heap=peak_heap,
            fault_stats=fstats,
            telemetry=tele.finalize(makespan) if tele is not None else None,
            noc_stats=nstats if noc is not None else None,
        )


def simulate(
    compiled: CompiledApp, options: SimulationOptions | None = None
) -> SimulationResult:
    """Simulate a compiled application on its mapping."""
    sim = Simulator(compiled.graph, compiled.mapping, compiled.processor, options)
    return sim.run()
